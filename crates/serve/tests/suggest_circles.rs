//! `suggest_circles` through the serve layer: served suggestions are
//! bit-identical to local discovery over the same graph, whole-suggestion
//! caching works, and — the staleness contract — a committed mutation
//! batch is *never* followed by a stale cached suggestion: touched egos
//! recompute against the live overlay, untouched egos keep their cache
//! entry across the version bump.

use circlekit_discover::{discover, DiscoverConfig, EgoView};
use circlekit_graph::NodeId;
use circlekit_live::{LiveSnapshot, Mutation};
use circlekit_serve::protocol::wire;
use circlekit_serve::{Client, ServeConfig, Server, SnapshotRegistry};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::Value;

fn fixture() -> circlekit_synth::SynthDataset {
    presets::google_plus().scaled(0.004).generate(&mut SmallRng::seed_from_u64(2014))
}

fn start_server() -> (Server, circlekit_synth::SynthDataset) {
    let data = fixture();
    let mut registry = SnapshotRegistry::new();
    registry.insert("gplus", data.graph.clone(), data.groups.clone()).unwrap();
    let server = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
    (server, data)
}

fn get_u64(value: &Value, key: &str) -> u64 {
    match wire::get(value, key) {
        Some(Value::UInt(u)) => *u,
        other => panic!("field {key:?}: {other:?}"),
    }
}

fn get_bool(value: &Value, key: &str) -> bool {
    match wire::get(value, key) {
        Some(Value::Bool(b)) => *b,
        other => panic!("field {key:?}: {other:?}"),
    }
}

/// Flattens a response's candidates to `(members, conductance bits,
/// average-degree bits)` so comparisons are bit-exact.
fn candidates_of(response: &Value) -> Vec<(Vec<u32>, u64, u64)> {
    let Some(Value::Seq(items)) = wire::get(response, "candidates") else {
        panic!("missing candidates in {response:?}");
    };
    items
        .iter()
        .map(|item| {
            let Some(Value::Seq(members)) = wire::get(item, "members") else {
                panic!("missing members in {item:?}");
            };
            let members: Vec<u32> = members
                .iter()
                .map(|m| match m {
                    Value::UInt(u) => *u as u32,
                    other => panic!("member {other:?}"),
                })
                .collect();
            let cond = wire::as_f64(wire::get(item, "conductance").unwrap()).unwrap();
            let avg = wire::as_f64(wire::get(item, "average_degree").unwrap()).unwrap();
            (members, cond.to_bits(), avg.to_bits())
        })
        .collect()
}

fn local_candidates(
    graph: &circlekit_graph::Graph,
    ego: NodeId,
    seed: u64,
) -> Vec<(Vec<u32>, u64, u64)> {
    let config = DiscoverConfig { seed, ..DiscoverConfig::default() };
    let suggestion = discover(&EgoView::from_graph(graph, ego), &config);
    suggestion
        .candidates
        .iter()
        .map(|c| {
            (
                c.members.as_slice().to_vec(),
                c.conductance.to_bits(),
                c.average_degree.to_bits(),
            )
        })
        .collect()
}

fn busiest_ego(graph: &circlekit_graph::Graph) -> NodeId {
    (0..graph.node_count() as NodeId)
        .max_by_key(|&v| graph.out_neighbors(v).len())
        .unwrap()
}

#[test]
fn served_suggestions_match_local_discovery_and_cache() {
    let (server, data) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let ego = busiest_ego(&data.graph);

    let first = client.suggest_circles("gplus", ego, 2014, 3, 10).unwrap();
    assert!(!get_bool(&first, "cached"));
    assert_eq!(get_u64(&first, "version"), 0);
    assert_eq!(candidates_of(&first), local_candidates(&data.graph, ego, 2014));

    // Replay: whole suggestion served from cache, bit-identical.
    let second = client.suggest_circles("gplus", ego, 2014, 3, 10).unwrap();
    assert!(get_bool(&second, "cached"));
    assert_eq!(candidates_of(&first), candidates_of(&second));

    // A different seed is a different cache key and may rank differently.
    let reseeded = client.suggest_circles("gplus", ego, 7, 3, 10).unwrap();
    assert!(!get_bool(&reseeded, "cached"));
    assert_eq!(candidates_of(&reseeded), local_candidates(&data.graph, ego, 7));

    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn mutations_never_serve_a_stale_suggestion() {
    let (server, data) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let ego = busiest_ego(&data.graph);
    let alters = data.graph.out_neighbors(ego).to_vec();
    assert!(alters.len() >= 2, "fixture ego too small");

    // Warm the cache for the target ego and for a bystander whose
    // neighbourhood the mutation does not touch.
    let warm = client.suggest_circles("gplus", ego, 2014, 3, 10).unwrap();
    assert!(!get_bool(&warm, "cached"));
    let bystander = (0..data.graph.node_count() as u32)
        .find(|&v| {
            v != ego
                && !alters.contains(&v)
                && data.graph.out_neighbors(v).iter().all(|w| *w != ego)
                && !data.graph.out_neighbors(v).iter().any(|w| alters.contains(w))
        })
        .expect("no isolated bystander in fixture");
    client.suggest_circles("gplus", bystander, 2014, 3, 10).unwrap();

    // Toggle an edge between two of the ego's alters: the ego's induced
    // subgraph changes while its alter list stays put.
    let (a, b) = (alters[0], alters[1]);
    let mut batch = vec![Mutation::AddEdge { u: a, v: b }];
    let mut response = client.apply_mutations("gplus", &batch).unwrap();
    if get_u64(&response, "applied") == 0 {
        batch = vec![Mutation::RemoveEdge { u: a, v: b }];
        response = client.apply_mutations("gplus", &batch).unwrap();
    }
    assert_eq!(get_u64(&response, "applied"), 1, "{response}");

    // Mirror the commit offline: the expected answer is from-scratch
    // discovery over the materialized mutated graph.
    let mut mirror = LiveSnapshot::in_memory(data.graph.clone(), data.groups.clone());
    mirror.apply(&batch).unwrap();
    let materialized = mirror.materialize();

    let after = client.suggest_circles("gplus", ego, 2014, 3, 10).unwrap();
    assert!(!get_bool(&after, "cached"), "touched ego must recompute");
    assert_eq!(get_u64(&after, "version"), 1);
    assert_eq!(candidates_of(&after), local_candidates(&materialized, ego, 2014));

    // The bystander's entry survives the commit (revalidated, not
    // evicted) — and still matches from-scratch discovery.
    let bystander_after = client.suggest_circles("gplus", bystander, 2014, 3, 10).unwrap();
    assert!(get_bool(&bystander_after, "cached"), "untouched ego must keep its entry");
    assert_eq!(get_u64(&bystander_after, "version"), 1);
    assert_eq!(
        candidates_of(&bystander_after),
        local_candidates(&materialized, bystander, 2014)
    );

    // A pure vertex addition touches no ego view: everything stays cached.
    let grow = client.apply_mutations("gplus", &[Mutation::AddVertex]).unwrap();
    assert_eq!(get_u64(&grow, "applied"), 1);
    let still = client.suggest_circles("gplus", ego, 2014, 3, 10).unwrap();
    assert!(get_bool(&still, "cached"), "vertex add must not evict suggestions");
    assert_eq!(get_u64(&still, "version"), 2);
    assert_eq!(candidates_of(&still), candidates_of(&after));

    server.shutdown_handle().trigger();
    server.join();
}
