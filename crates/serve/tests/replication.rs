//! End-to-end replication: a replica daemon tails its primary's WAL
//! over the wire and serves byte-identical scores at every acked
//! offset; writes on the replica are refused typed; subscriptions from
//! a different history are refused typed; clients time out against
//! dead peers and fail over across endpoints; and a SIGTERM drains the
//! daemon exactly like SIGINT.

use circlekit_live::{wal_path_for, Mutation};
use circlekit_serve::protocol::wire;
use circlekit_serve::{
    Client, ClientError, ClientOptions, ErrorKind, FailoverClient, FailoverOptions, ServeConfig,
    Server, SnapshotRegistry,
};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn fixture() -> circlekit_synth::SynthDataset {
    presets::google_plus().scaled(0.004).generate(&mut SmallRng::seed_from_u64(2014))
}

/// Packs the fixture under a test-unique name and returns the primary
/// and replica snapshot paths (byte-identical copies).
fn pack_pair(name: &str) -> (PathBuf, PathBuf, circlekit_synth::SynthDataset) {
    let dir = std::env::temp_dir().join("circlekit-serve-repl-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let primary = dir.join(format!("{}-{name}.cks", std::process::id()));
    let replica = dir.join(format!("{}-{name}-replica.cks", std::process::id()));
    let data = fixture();
    circlekit_store::save_snapshot(&primary, &data.graph, &data.groups).unwrap();
    std::fs::copy(&primary, &replica).unwrap();
    let _ = std::fs::remove_file(wal_path_for(&primary));
    let _ = std::fs::remove_file(wal_path_for(&replica));
    (primary, replica, data)
}

fn start_file_server(path: &Path, replica_of: Option<String>) -> Server {
    let mut registry = SnapshotRegistry::new();
    registry.load(&path.to_string_lossy(), Some("gplus")).unwrap();
    let config = ServeConfig { replica_of, ..ServeConfig::default() };
    Server::start(registry, config, ("127.0.0.1", 0)).unwrap()
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    }
}

fn get_u64(value: &Value, key: &str) -> u64 {
    match wire::get(value, key) {
        Some(Value::UInt(u)) => *u,
        other => panic!("field {key:?}: {other:?}"),
    }
}

/// The primary's committed WAL offset for `gplus`, per `repl_status`.
fn primary_offset(client: &mut Client) -> u64 {
    let status = client.repl_status().unwrap();
    let Some(Value::Seq(snapshots)) = wire::get(&status, "snapshots") else {
        panic!("repl_status lacks snapshots: {status}");
    };
    get_u64(snapshots.first().expect("one snapshot"), "committed_offset")
}

/// Polls the replica until it reports caught up at or past `want`.
fn wait_caught_up(replica_addr: std::net::SocketAddr, want: u64) {
    let mut client = Client::connect_with_patience(replica_addr, Duration::from_secs(5)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.repl_status().unwrap();
        if let Some(Value::Seq(entries)) = wire::get(&status, "replication") {
            if let Some(entry) = entries.first() {
                let caught_up =
                    matches!(wire::get(entry, "caught_up"), Some(Value::Bool(true)));
                if caught_up && get_u64(entry, "applied_offset") >= want {
                    return;
                }
            }
        }
        assert!(Instant::now() < deadline, "replica never caught up to offset {want}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn watch_bits(client: &mut Client, group: usize) -> Vec<u64> {
    let response = client.watch_scores("gplus", group).unwrap();
    wire::get_scores(&response, "scores").unwrap().iter().map(|s| s.to_bits()).collect()
}

/// A mutation batch that is valid against the fixture regardless of
/// which edges it generated: grow the graph and wire the new vertex in.
fn growth_batch(round: u32, base_nodes: u32) -> Vec<Mutation> {
    vec![
        Mutation::AddVertex,
        Mutation::AddEdge { u: base_nodes + round, v: round % base_nodes },
        Mutation::AddMember { group: 0, node: base_nodes + round },
    ]
}

fn shutdown(server: Server, addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    let _ = client.shutdown();
    server.join();
}

#[test]
fn replica_tails_the_primary_and_serves_byte_identical_scores() {
    let (ppath, rpath, data) = pack_pair("tail");
    let n = data.graph.node_count() as u32;
    let primary = start_file_server(&ppath, None);
    let paddr = primary.local_addr();
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();

    let mut pclient = Client::connect(paddr).unwrap();
    for round in 0..3 {
        let response = pclient.apply_mutations("gplus", &growth_batch(round, n)).unwrap();
        assert_eq!(get_u64(&response, "applied"), 3, "{response}");
    }
    let committed = primary_offset(&mut pclient);
    assert!(committed > 0, "mutations must advance the primary offset");
    wait_caught_up(raddr, committed);

    // Scores served by the replica are byte-identical to the primary's,
    // through both the O(1) watch path and the full scoring path.
    let mut rclient = Client::connect(raddr).unwrap();
    for group in 0..4.min(data.groups.len()) {
        assert_eq!(
            watch_bits(&mut pclient, group),
            watch_bits(&mut rclient, group),
            "group {group} diverged"
        );
        let p = pclient.score_group("gplus", group, Some("paper"), None).unwrap();
        let r = rclient.score_group("gplus", group, Some("paper"), None).unwrap();
        assert_eq!(
            Client::scores_of(&p).unwrap().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            Client::scores_of(&r).unwrap().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "full-path scores diverged for group {group}"
        );
    }
    // And the replica's WAL file is a byte-identical copy.
    assert_eq!(
        std::fs::read(wal_path_for(&ppath)).unwrap(),
        std::fs::read(wal_path_for(&rpath)).unwrap(),
        "replica WAL is not byte-identical"
    );

    shutdown(replica, raddr);
    shutdown(primary, paddr);
    cleanup(&[&ppath, &rpath]);
}

#[test]
fn replica_restart_recovers_its_offset_and_catches_up() {
    let (ppath, rpath, data) = pack_pair("restart");
    let n = data.graph.node_count() as u32;
    let primary = start_file_server(&ppath, None);
    let paddr = primary.local_addr();
    let mut pclient = Client::connect(paddr).unwrap();

    // Round one replicates, then the replica goes away entirely.
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();
    pclient.apply_mutations("gplus", &growth_batch(0, n)).unwrap();
    wait_caught_up(raddr, primary_offset(&mut pclient));
    shutdown(replica, raddr);

    // The primary moves on while the replica is down.
    pclient.apply_mutations("gplus", &growth_batch(1, n)).unwrap();
    pclient.apply_mutations("gplus", &growth_batch(2, n)).unwrap();

    // Restarting replays the replica's own WAL (offset recovery) and
    // resubscribes from there — the primary ships only the missing tail.
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();
    wait_caught_up(raddr, primary_offset(&mut pclient));
    let mut rclient = Client::connect(raddr).unwrap();
    assert_eq!(watch_bits(&mut pclient, 0), watch_bits(&mut rclient, 0));
    assert_eq!(
        std::fs::read(wal_path_for(&ppath)).unwrap(),
        std::fs::read(wal_path_for(&rpath)).unwrap(),
    );

    shutdown(replica, raddr);
    shutdown(primary, paddr);
    cleanup(&[&ppath, &rpath]);
}

#[test]
fn replicas_refuse_writes_and_chained_subscriptions() {
    let (ppath, rpath, _) = pack_pair("refuse");
    let primary = start_file_server(&ppath, None);
    let paddr = primary.local_addr();
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();

    let mut rclient = Client::connect(raddr).unwrap();
    let err = rclient.apply_mutations("gplus", &[Mutation::AddVertex]).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotPrimary), "apply: {err}");
    let err = rclient.compact("gplus").unwrap_err();
    assert!(err.is_kind(ErrorKind::NotPrimary), "compact: {err}");
    // Chained replication (replica-of-replica) is refused the same way.
    let err = rclient
        .call(
            "replicate",
            vec![
                ("snapshot".to_string(), Value::Str("gplus".to_string())),
                ("base_crc".to_string(), Value::UInt(0)),
                ("wal_offset".to_string(), Value::UInt(0)),
            ],
        )
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::NotPrimary), "chain: {err}");
    // A refused subscription closes that connection (it had been handed
    // over to the replication path); fresh connections read fine.
    let mut rclient = Client::connect(raddr).unwrap();
    rclient.health().unwrap();

    shutdown(replica, raddr);
    shutdown(primary, paddr);
    cleanup(&[&ppath, &rpath]);
}

#[test]
fn subscriptions_from_a_different_history_are_refused_typed() {
    let (ppath, rpath, _) = pack_pair("mismatch");
    let primary = start_file_server(&ppath, None);
    let paddr = primary.local_addr();
    let mut client = Client::connect(paddr).unwrap();
    let status = client.repl_status().unwrap();
    let Some(Value::Seq(snapshots)) = wire::get(&status, "snapshots") else {
        panic!("no snapshots in {status}");
    };
    let crc = get_u64(snapshots.first().unwrap(), "file_crc32");

    let subscribe = |crc: u64, offset: u64| {
        vec![
            ("snapshot".to_string(), Value::Str("gplus".to_string())),
            ("base_crc".to_string(), Value::UInt(crc)),
            ("wal_offset".to_string(), Value::UInt(offset)),
        ]
    };
    // Wrong base CRC: a replica seeded from different bytes.
    let err = client.call("replicate", subscribe(crc ^ 1, 0)).unwrap_err();
    assert!(err.is_kind(ErrorKind::ReplicationMismatch), "crc: {err}");
    // An offset the primary never committed.
    let mut client = Client::connect(paddr).unwrap();
    let err = client.call("replicate", subscribe(crc, 1 << 40)).unwrap_err();
    assert!(err.is_kind(ErrorKind::ReplicationMismatch), "offset: {err}");
    // Unknown snapshot id.
    let mut client = Client::connect(paddr).unwrap();
    let err = client
        .call(
            "replicate",
            vec![
                ("snapshot".to_string(), Value::Str("nope".to_string())),
                ("base_crc".to_string(), Value::UInt(crc)),
                ("wal_offset".to_string(), Value::UInt(0)),
            ],
        )
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "unknown: {err}");
    // A stray ack outside any subscription.
    let mut client = Client::connect(paddr).unwrap();
    let err = client
        .call("repl_ack", vec![("offset".to_string(), Value::UInt(0))])
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::BadRequest), "ack: {err}");

    shutdown(primary, paddr);
    cleanup(&[&ppath, &rpath]);
}

#[test]
fn client_timeout_fires_against_a_silent_peer() {
    // A listener that accepts and never answers: without a deadline the
    // old client would block forever here.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let mut client = Client::connect_with_options(
        addr,
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_millis(150)),
            binary: false,
        },
    )
    .unwrap();
    let started = Instant::now();
    match client.health() {
        Err(ClientError::Timeout { after }) => assert_eq!(after, Duration::from_millis(150)),
        other => panic!("expected Timeout, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(150) && elapsed < Duration::from_secs(5),
        "deadline not honored: {elapsed:?}"
    );
    drop(client);
    let _ = hold.join();
}

#[test]
fn failover_reads_survive_primary_loss_but_writes_fail_fast() {
    let (ppath, rpath, data) = pack_pair("failover");
    let n = data.graph.node_count() as u32;
    let primary = start_file_server(&ppath, None);
    let paddr = primary.local_addr();
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();

    let options = FailoverOptions {
        max_attempts: 8,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        ..FailoverOptions::default()
    };
    let mut client = FailoverClient::new([paddr.to_string(), raddr.to_string()], options);

    // Writes route to the primary even when the preferred read endpoint
    // is the replica, and replication carries them over.
    let response = client
        .write(|c| c.apply_mutations("gplus", &growth_batch(0, n)))
        .unwrap();
    assert_eq!(get_u64(&response, "applied"), 3);
    let mut pclient = Client::connect(paddr).unwrap();
    wait_caught_up(raddr, primary_offset(&mut pclient));
    drop(pclient);
    client.read(|c| c.score_group("gplus", 0, None, None)).unwrap();

    // Primary gone: reads fail over to the replica, writes refuse fast.
    shutdown(primary, paddr);
    let scores = client.read(|c| c.watch_scores("gplus", 0)).unwrap();
    wire::get_scores(&scores, "scores").unwrap();
    match client.write(|c| c.apply_mutations("gplus", &growth_batch(1, n))) {
        Err(ClientError::NoPrimary { detail }) => {
            assert!(detail.contains("replica"), "detail: {detail}");
        }
        other => panic!("expected NoPrimary, got {other:?}"),
    }
    // Typed errors that are not availability problems surface without
    // burning the retry budget on other endpoints.
    let err = client.read(|c| c.score_group("nope", 0, None, None)).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "{err}");

    shutdown(replica, raddr);
    cleanup(&[&ppath, &rpath]);
}

#[test]
fn sigterm_drains_the_server_like_sigint() {
    circlekit_serve::signal::install_termination_handlers();
    circlekit_serve::signal::reset_for_test();
    let mut registry = SnapshotRegistry::new();
    let data = fixture();
    registry.insert("gplus", data.graph, data.groups).unwrap();
    let config = ServeConfig { watch_signals: true, ..ServeConfig::default() };
    let server = Server::start(registry, config, ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.health().unwrap();

    #[cfg(unix)]
    circlekit_serve::signal::deliver_sigterm_for_test();
    #[cfg(not(unix))]
    circlekit_serve::signal::raise_for_test();

    // The acceptor notices the flag within a poll interval and drains;
    // join returns instead of blocking forever.
    let stats = server.join();
    assert!(stats.requests >= 1);
    circlekit_serve::signal::reset_for_test();
}

#[cfg(feature = "fault-inject")]
#[test]
fn injected_resets_only_delay_convergence() {
    let (ppath, rpath, data) = pack_pair("fault");
    let n = data.graph.node_count() as u32;
    let mut registry = SnapshotRegistry::new();
    registry.load(&ppath.to_string_lossy(), Some("gplus")).unwrap();
    // The primary hard-drops every subscription after one shipped batch:
    // each batch costs the replica a reconnect.
    let config = ServeConfig {
        fault: circlekit_serve::FaultPlan {
            reset_subscription_after: Some(1),
            stall_before_send_ms: None,
        },
        ..ServeConfig::default()
    };
    let primary = Server::start(registry, config, ("127.0.0.1", 0)).unwrap();
    let paddr = primary.local_addr();
    let replica = start_file_server(&rpath, Some(paddr.to_string()));
    let raddr = replica.local_addr();

    let mut pclient = Client::connect(paddr).unwrap();
    for round in 0..4 {
        pclient.apply_mutations("gplus", &growth_batch(round, n)).unwrap();
        // Space the commits out so they ship as separate batches, each
        // triggering its own injected reset.
        std::thread::sleep(Duration::from_millis(60));
    }
    wait_caught_up(raddr, primary_offset(&mut pclient));
    let mut rclient = Client::connect(raddr).unwrap();
    assert_eq!(watch_bits(&mut pclient, 0), watch_bits(&mut rclient, 0));
    assert_eq!(
        std::fs::read(wal_path_for(&ppath)).unwrap(),
        std::fs::read(wal_path_for(&rpath)).unwrap(),
    );

    shutdown(replica, raddr);
    shutdown(primary, paddr);
    cleanup(&[&ppath, &rpath]);
}
