//! The daemon: acceptor, connection handlers, and the scoring worker
//! pool, glued together by the bounded job queue.
//!
//! ## Threading model
//!
//! * One **acceptor** polls a non-blocking listener so it can observe
//!   shutdown (from the `shutdown` op, [`ShutdownHandle::trigger`], or a
//!   watched SIGINT flag) within one poll interval.
//! * One **handler** thread per connection reads frames, answers cheap
//!   ops (`health`, `stats`, listings, cache hits) inline, and pushes
//!   scoring work onto the bounded queue — refusing with a typed
//!   `overloaded` response the instant the queue is full.
//! * `workers` **scoring workers** pop jobs in micro-batches
//!   ([`BoundedQueue::pop_batch`] coalesces same-snapshot scoring jobs up
//!   to `batch_max`) and evaluate each batch with one
//!   [`ParallelScorer`] pass, so concurrent clients share the fan-out
//!   machinery instead of competing for it.
//!
//! ## Shutdown
//!
//! Triggering shutdown is cooperative and drains: the acceptor stops
//! accepting, handlers finish the request in flight and close, queued
//! jobs are still executed and answered, then the workers exit.
//! [`Server::join`] sequences those steps and returns the final counter
//! snapshot.

use crate::binary;
use crate::cache::{CacheKey, ScoreCache};
use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::protocol::{
    error_payload, ok_payload, read_frame_patiently, set_digest, wire, write_frame, ErrorKind,
    FrameError, Request, RequestError,
};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{LoadedSnapshot, SnapshotRegistry};
use crate::replication::{self, FaultPlan, ReplCrashPoint, ReplRegistry};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::suggest::{SuggestCache, SuggestKey};
use circlekit_discover::{affected_egos, discover, DiscoverConfig, EgoView, Suggestion};
use circlekit_graph::{RunControl, VertexSet};
use circlekit_live::{wal_path_for, LiveSnapshot, Mutation};
use circlekit_sampling::size_matched_random_walk_sets_parallel_with_control;
use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked loops re-check the shutdown flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Mid-frame polls tolerated after shutdown before a stalled connection
/// is dropped (~2 s at [`POLL_INTERVAL`]).
pub(crate) const SHUTDOWN_GRACE_POLLS: u32 = 40;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads inside each [`ParallelScorer`] batch.
    pub threads: usize,
    /// Scoring workers popping from the queue.
    pub workers: usize,
    /// Bounded queue capacity — the backpressure point.
    pub queue_capacity: usize,
    /// Maximum scoring jobs coalesced into one batch.
    pub batch_max: usize,
    /// LRU result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Accept test-only ops (`debug_sleep`). Never enable in production.
    pub debug_ops: bool,
    /// Promote the process-wide termination flag (raised by SIGINT or
    /// SIGTERM, see [`crate::signal`]) to a graceful shutdown.
    pub watch_signals: bool,
    /// Run as a read replica of the primary at this address: refuse
    /// writes with `not-primary` and tail every file-backed snapshot's
    /// WAL from the primary (see [`crate::replication`]).
    pub replica_of: Option<String>,
    /// Deterministic chaos: exit(137) at this replication crash point
    /// (see [`ReplCrashPoint`] for which role each point fires on).
    pub repl_crash_point: Option<ReplCrashPoint>,
    /// Injected network faults; inert unless the `fault-inject` feature
    /// is compiled in.
    pub fault: FaultPlan,
    /// Run as a stateless scatter-gather coordinator over a set of shard
    /// processes instead of serving local snapshots (see
    /// [`crate::coordinator`]). Mutually exclusive with `replica_of`.
    pub coordinator: Option<CoordinatorConfig>,
    /// Serve connections from the epoll event loop
    /// ([`crate::event_loop`]) instead of a thread per connection.
    pub event_loop: bool,
    /// Dispatcher threads bridging the event loop to [`handle_request`]
    /// (0 = auto: `max(8, workers * 4)`). Ignored without `event_loop`.
    pub dispatchers: usize,
}

impl ServeConfig {
    /// The effective dispatcher-pool size for the event loop. The floor
    /// of 8 keeps enough dispatchers idle that a request arriving while
    /// the scoring queue is saturated is still *refused* synchronously
    /// (`overloaded`) rather than parked behind the blocked ones.
    pub fn dispatcher_count(&self) -> usize {
        if self.dispatchers > 0 {
            self.dispatchers
        } else {
            (self.workers * 4).max(8)
        }
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: circlekit_scoring::default_threads(),
            workers: 1,
            queue_capacity: 1024,
            batch_max: 64,
            cache_capacity: 4096,
            debug_ops: false,
            watch_signals: false,
            replica_of: None,
            repl_crash_point: None,
            fault: FaultPlan::default(),
            coordinator: None,
            event_loop: true,
            dispatchers: 0,
        }
    }
}

/// What a worker hands back to the handler that enqueued a job.
enum JobOutput {
    Scores(Vec<f64>),
    Baseline { set_scores: Vec<f64>, baseline_means: Vec<f64> },
    Applied {
        applied: usize,
        rejected: Option<(usize, String)>,
        version: u64,
        wal_records: u64,
        invalidated: u64,
    },
    Compacted { folded: u64 },
    Slept,
}

type JobReply = mpsc::Sender<Result<JobOutput, RequestError>>;

struct ScoreJob {
    snapshot: Arc<LoadedSnapshot>,
    set: VertexSet,
    functions: Vec<ScoringFunction>,
    digest: u64,
    control: RunControl,
    reply: JobReply,
}

enum Job {
    Score(ScoreJob),
    Baseline {
        snapshot: Arc<LoadedSnapshot>,
        set: VertexSet,
        functions: Vec<ScoringFunction>,
        samples: usize,
        seed: u64,
        control: RunControl,
        reply: JobReply,
    },
    Apply {
        snapshot_id: String,
        mutations: Vec<Mutation>,
        reply: JobReply,
    },
    Compact {
        snapshot_id: String,
        reply: JobReply,
    },
    Sleep {
        millis: u64,
        reply: JobReply,
    },
}

/// The mutable side of one snapshot: the authoritative [`LiveSnapshot`]
/// (overlay + aggregates + WAL) plus the version its committed batches
/// have reached. The registry's immutable materialization lags behind
/// and is refreshed lazily — at most once per version — by
/// [`resolve_snapshot`].
pub(crate) struct LiveState {
    pub(crate) live: LiveSnapshot,
    pub(crate) version: u64,
}

pub(crate) struct Shared {
    pub(crate) registry: SnapshotRegistry,
    pub(crate) config: ServeConfig,
    queue: BoundedQueue<Job>,
    pub(crate) cache: Mutex<ScoreCache>,
    pub(crate) suggest: Mutex<SuggestCache>,
    pub(crate) live: Mutex<HashMap<String, LiveState>>,
    pub(crate) stats: ServeStats,
    pub(crate) repl: Mutex<ReplRegistry>,
    /// `Some` when this server is a scatter-gather coordinator.
    pub(crate) coord: Option<Coordinator>,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        let cache = self.cache.lock().expect("cache lock").stats();
        self.stats.snapshot(cache, self.queue.len())
    }
}

/// Clonable handle that requests a graceful drain-then-exit.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests shutdown. Idempotent.
    pub fn trigger(&self) {
        self.shared.trigger_shutdown();
    }
}

/// A running scoring service.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Replica tail threads (empty unless `replica_of` is set).
    tails: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects an empty registry.
    pub fn start<A: ToSocketAddrs>(
        registry: SnapshotRegistry,
        config: ServeConfig,
        addr: A,
    ) -> io::Result<Server> {
        if config.coordinator.is_some() && config.replica_of.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a coordinator cannot also be a replica (drop --replica-of or --coordinator)",
            ));
        }
        if registry.is_empty() && config.coordinator.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "refusing to serve an empty snapshot registry",
            ));
        }
        // Connecting to the shard fleet validates the topology (matching
        // parent CRCs, a complete index cover) before the listener binds:
        // a mis-assembled cluster is a startup refusal, never a serving
        // process that answers wrong.
        let coord = match &config.coordinator {
            Some(cc) => Some(
                Coordinator::connect(cc)
                    .map_err(|why| io::Error::new(io::ErrorKind::InvalidInput, why))?,
            ),
            None => None,
        };
        let live = adopt_write_ahead_logs(&registry)?;
        let listener = TcpListener::bind(addr)?;
        // A deep accept backlog + SO_REUSEADDR: a 10k-connection burst
        // must queue in the kernel, not be refused.
        let _ = circlekit_net::tune_listener(&listener);
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: Mutex::new(ScoreCache::new(config.cache_capacity)),
            suggest: Mutex::new(SuggestCache::new(config.cache_capacity)),
            live: Mutex::new(live),
            stats: ServeStats::default(),
            repl: Mutex::new(ReplRegistry::default()),
            coord,
            shutdown: AtomicBool::new(false),
            registry,
            config,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ck-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            if shared.config.event_loop {
                std::thread::Builder::new()
                    .name("ck-serve-loop".to_string())
                    .spawn(move || crate::event_loop::run(listener, &shared, &handlers))
                    .expect("spawn event-loop thread")
            } else {
                std::thread::Builder::new()
                    .name("ck-serve-acceptor".to_string())
                    .spawn(move || accept_loop(&listener, &shared, &handlers))
                    .expect("spawn acceptor thread")
            }
        };
        let tails = match shared.config.replica_of.clone() {
            Some(primary) => replication::spawn_replica_tails(&shared, &primary),
            None => Vec::new(),
        };
        Ok(Server { shared, addr, acceptor, workers, handlers, tails })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that triggers graceful shutdown from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current counters (live; safe to call while serving).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Blocks until shutdown is triggered, drains, and returns the final
    /// counters: acceptor exit → handler drain → queued jobs executed →
    /// workers exit.
    pub fn join(self) -> StatsSnapshot {
        self.acceptor.join().expect("acceptor thread panicked");
        let handles = std::mem::take(&mut *self.handlers.lock().expect("handler registry lock"));
        for handle in handles {
            handle.join().expect("connection handler panicked");
        }
        self.shared.queue.close();
        for worker in self.workers {
            worker.join().expect("scoring worker panicked");
        }
        for tail in self.tails {
            tail.join().expect("replica tail thread panicked");
        }
        self.shared.stats_snapshot()
    }
}

/// Replays any CKW1 write-ahead log sitting next to a loaded snapshot
/// before the server accepts its first connection: the registry entry is
/// swapped for a materialization that includes every committed mutation
/// (a crash between batches therefore loses nothing), and the opened
/// [`LiveSnapshot`] is kept so later mutation ops continue the same log.
fn adopt_write_ahead_logs(
    registry: &SnapshotRegistry,
) -> io::Result<HashMap<String, LiveState>> {
    let mut live = HashMap::new();
    for snap in registry.snapshots() {
        if snap.path == "<memory>" || !wal_path_for(Path::new(&snap.path)).exists() {
            continue;
        }
        let opened = LiveSnapshot::open(&snap.path)
            .map_err(|e| io::Error::other(format!("{}: {e}", snap.path)))?;
        let version = opened.replayed_records() as u64;
        if version > 0 {
            let graph = opened.materialize();
            let groups = opened.groups().to_vec();
            let median_degree = Scorer::new(&graph).median_degree();
            registry.replace(Arc::new(LoadedSnapshot {
                id: snap.id.clone(),
                path: snap.path.clone(),
                graph,
                groups,
                median_degree,
                shard: snap.shard,
                version,
            }));
        }
        live.insert(snap.id.clone(), LiveState { live: opened, version });
    }
    Ok(live)
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let termination = shared.config.watch_signals.then(crate::signal::termination_flag);
    loop {
        if let Some(flag) = termination {
            if flag.load(Ordering::Relaxed) {
                shared.trigger_shutdown();
            }
        }
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Responses are written as prefix + payload; without
                // NODELAY that write pattern stalls on delayed ACKs.
                let _ = stream.set_nodelay(true);
                ServeStats::bump(&shared.stats.connections);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("ck-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn connection handler");
                handlers.lock().expect("handler registry lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. aborted handshakes) should
            // not kill the service.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads one frame, polling the shutdown flag between read timeouts.
/// `Ok(None)` means "close this connection without an error" (clean EOF,
/// or shutdown while idle / stalled beyond the grace window).
fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> Result<Option<String>, FrameError> {
    let mut shutdown_polls = 0u32;
    let result = read_frame_patiently(stream, |mid_frame| {
        if !shared.shutting_down() {
            return true;
        }
        // Shutdown while idle closes immediately; a started frame gets a
        // grace window to finish arriving before the connection drops.
        if !mid_frame {
            return false;
        }
        shutdown_polls += 1;
        shutdown_polls <= SHUTDOWN_GRACE_POLLS
    });
    match result {
        Err(FrameError::Closed) => Ok(None),
        other => other,
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // The timeout makes every blocking read a shutdown checkpoint.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // The first byte picks the protocol for the connection's lifetime:
    // CKP1 frames open with the magic, JSON length prefixes never do.
    let mut first = [0u8; 1];
    loop {
        if shared.shutting_down() {
            return;
        }
        match stream.peek(&mut first) {
            Ok(0) => return,
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
    if binary::sniff_binary(first[0]) {
        return handle_binary_connection(&mut stream, shared);
    }
    loop {
        // Between requests, shutdown closes idle connections immediately.
        if shared.shutting_down() {
            return;
        }
        let payload = match read_frame_polled(&mut stream, shared) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(FrameError::TooLarge(len)) => {
                // The payload was never read, so the stream is out of
                // sync: answer once, then close.
                ServeStats::bump(&shared.stats.requests);
                let message = format!("frame length {len} exceeds the limit");
                let _ = respond(
                    &mut stream,
                    shared,
                    Err((ErrorKind::FrameTooLarge, message)),
                );
                return;
            }
            // Truncated / non-UTF-8 / hard I/O: nothing sane to answer
            // on a desynchronised stream — close cleanly.
            Err(_) => return,
        };
        ServeStats::bump(&shared.stats.requests);
        let request = Request::parse(&payload);
        let mut close_after = false;
        let outcome = match request {
            Err(err) => Err(err),
            Ok(Request::Shutdown) => {
                close_after = true;
                shared.trigger_shutdown();
                Ok(ok_payload(vec![(
                    "message".to_string(),
                    Value::Str("draining".to_string()),
                )]))
            }
            Ok(Request::Replicate { snapshot, base_crc, wal_offset }) => {
                // A subscription takes over the connection: the loop
                // below streams batches until either side ends it.
                replication::serve_subscription(
                    &mut stream, shared, &snapshot, base_crc, wal_offset,
                );
                return;
            }
            Ok(request) => handle_request(request, shared),
        };
        if respond(&mut stream, shared, outcome).is_err() || close_after {
            return;
        }
    }
}

/// Like [`read_frame_polled`], for CKP1 frames: `Ok(None)` means "close
/// without an error", a `Malformed` error means the peer's framing is
/// broken (answer once, then close).
fn read_binary_frame_polled(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<Option<binary::Frame>, binary::ReadError> {
    let mut shutdown_polls = 0u32;
    let result = binary::read_frame_patiently(stream, |mid_frame| {
        if !shared.shutting_down() {
            return true;
        }
        if !mid_frame {
            return false;
        }
        shutdown_polls += 1;
        shutdown_polls <= SHUTDOWN_GRACE_POLLS
    });
    match result {
        Err(binary::ReadError::Frame(FrameError::Closed)) => Ok(None),
        other => other,
    }
}

/// The CKP1 counterpart of the JSON request loop: same dispatch, same
/// failure matrix as the event-loop front end. A framing defect draws
/// one typed error and closes (nothing past a broken header is
/// trustworthy); a response-kind frame draws a typed error echoing its
/// op and the connection survives.
fn handle_binary_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    ServeStats::bump(&shared.stats.binary_connections);
    loop {
        if shared.shutting_down() {
            return;
        }
        let frame = match read_binary_frame_polled(stream, shared) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(binary::ReadError::Malformed(defect)) => {
                ServeStats::bump(&shared.stats.requests);
                let kind = match defect {
                    binary::BinaryError::TooLarge(_) => ErrorKind::FrameTooLarge,
                    _ => ErrorKind::BadRequest,
                };
                let _ = respond_binary(
                    stream,
                    shared,
                    binary::OP_UNKNOWN,
                    Err((kind, defect.to_string())),
                );
                // Unread bytes past the defect would turn the close into
                // a reset that destroys the error frame in flight: say
                // we are done writing, drain briefly, then close.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut scratch = [0u8; 4096];
                for _ in 0..SHUTDOWN_GRACE_POLLS {
                    match stream.read(&mut scratch) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
                return;
            }
            // Truncated or hard I/O: the stream is desynchronised —
            // close cleanly, as the JSON path does.
            Err(binary::ReadError::Frame(_)) => return,
        };
        ServeStats::bump(&shared.stats.requests);
        if frame.kind != binary::KIND_REQUEST {
            let err = (
                ErrorKind::BadRequest,
                "only request frames may be sent to a server".to_string(),
            );
            if respond_binary(stream, shared, frame.op, Err(err)).is_err() {
                return;
            }
            continue;
        }
        let mut close_after = false;
        let outcome = match binary::decode_request(frame.op, &frame.payload) {
            Err(err) => Err(err),
            Ok(Request::Shutdown) => {
                close_after = true;
                shared.trigger_shutdown();
                Ok(ok_payload(vec![(
                    "message".to_string(),
                    Value::Str("draining".to_string()),
                )]))
            }
            Ok(Request::Replicate { .. }) => Err((
                ErrorKind::BadRequest,
                "replicate requires the JSON protocol (the WAL stream is JSON-framed)"
                    .to_string(),
            )),
            Ok(request) => handle_request(request, shared),
        };
        if respond_binary(stream, shared, frame.op, outcome).is_err() || close_after {
            return;
        }
    }
}

/// [`respond`] in CKP1 framing, echoing the request's op.
fn respond_binary(
    stream: &mut TcpStream,
    shared: &Shared,
    op: u16,
    outcome: Result<String, RequestError>,
) -> io::Result<()> {
    let payload = match outcome {
        Ok(payload) => {
            ServeStats::bump(&shared.stats.ok_responses);
            payload
        }
        Err((kind, message)) => {
            ServeStats::bump(&shared.stats.error_responses);
            match kind {
                ErrorKind::Overloaded => ServeStats::bump(&shared.stats.overloaded),
                ErrorKind::DeadlineExceeded => {
                    ServeStats::bump(&shared.stats.deadline_expired)
                }
                _ => {}
            }
            error_payload(kind, &message)
        }
    };
    let body =
        binary::encode_response_payload(&payload).expect("server responses are valid JSON");
    binary::write_frame(stream, binary::KIND_RESPONSE, op, &body)
}

/// Writes the response (success payload or rendered error), keeping the
/// ok/error counters honest.
fn respond(
    stream: &mut TcpStream,
    shared: &Shared,
    outcome: Result<String, RequestError>,
) -> io::Result<()> {
    let payload = match outcome {
        Ok(payload) => {
            ServeStats::bump(&shared.stats.ok_responses);
            payload
        }
        Err((kind, message)) => {
            ServeStats::bump(&shared.stats.error_responses);
            match kind {
                ErrorKind::Overloaded => ServeStats::bump(&shared.stats.overloaded),
                ErrorKind::DeadlineExceeded => {
                    ServeStats::bump(&shared.stats.deadline_expired)
                }
                _ => {}
            }
            error_payload(kind, &message)
        }
    };
    write_frame(stream, &payload)?;
    stream.flush()
}

pub(crate) fn handle_request(request: Request, shared: &Arc<Shared>) -> Result<String, RequestError> {
    // A coordinator answers (or refuses) almost every op itself — by
    // scatter-gathering the shard fleet — so clients speak to it exactly
    // as they would to a single-node server. The few ops it passes back
    // (`debug_sleep`) run on the local machinery below.
    if shared.coord.is_some() {
        if let Some(answer) = crate::coordinator::handle(shared, &request) {
            return answer;
        }
    }
    match request {
        Request::Health => Ok(ok_payload(vec![
            ("status".to_string(), Value::Str("serving".to_string())),
            ("snapshots".to_string(), Value::UInt(shared.registry.len() as u64)),
        ])),
        Request::Stats => Ok(ok_payload(shared.stats_snapshot().to_fields())),
        Request::ListSnapshots => {
            let snapshots: Vec<Value> = shared
                .registry
                .snapshots()
                .iter()
                .map(|s| {
                    Value::Map(vec![
                        ("id".to_string(), Value::Str(s.id.clone())),
                        ("path".to_string(), Value::Str(s.path.clone())),
                        ("nodes".to_string(), Value::UInt(s.graph.node_count() as u64)),
                        ("edges".to_string(), Value::UInt(s.graph.edge_count() as u64)),
                        ("directed".to_string(), Value::Bool(s.graph.is_directed())),
                        ("groups".to_string(), Value::UInt(s.groups.len() as u64)),
                        ("version".to_string(), Value::UInt(s.version)),
                    ])
                })
                .collect();
            Ok(ok_payload(vec![("snapshots".to_string(), Value::Seq(snapshots))]))
        }
        Request::ListGroups { snapshot } => {
            let snap = resolve_snapshot(shared, &snapshot)?;
            let sizes: Vec<Value> =
                snap.groups.iter().map(|g| Value::UInt(g.len() as u64)).collect();
            Ok(ok_payload(vec![
                ("snapshot".to_string(), Value::Str(snap.id.clone())),
                ("groups".to_string(), Value::UInt(sizes.len() as u64)),
                ("sizes".to_string(), Value::Seq(sizes)),
            ]))
        }
        Request::ScoreGroup { snapshot, group, functions, deadline_ms } => {
            let snap = resolve_snapshot(shared, &snapshot)?;
            let set = resolve_group(&snap, group)?;
            let mut fields = vec![("group".to_string(), Value::UInt(group as u64))];
            fields.extend(score_request(shared, &snap, set, &functions, deadline_ms)?);
            Ok(ok_payload(with_op("score_group", &snap.id, fields)))
        }
        Request::ScoreSet { snapshot, members, functions, deadline_ms } => {
            let snap = resolve_snapshot(shared, &snapshot)?;
            let set = VertexSet::from_vec(members);
            if let Some(&bad) = set.as_slice().iter().find(|&&m| {
                m as usize >= snap.graph.node_count()
            }) {
                return Err((
                    ErrorKind::BadRequest,
                    format!(
                        "member {bad} is out of range for snapshot {:?} ({} nodes)",
                        snap.id,
                        snap.graph.node_count()
                    ),
                ));
            }
            let fields = score_request(shared, &snap, set, &functions, deadline_ms)?;
            Ok(ok_payload(with_op("score_set", &snap.id, fields)))
        }
        Request::Baseline { snapshot, group, functions, samples, seed, deadline_ms } => {
            let snap = resolve_snapshot(shared, &snapshot)?;
            let set = resolve_group(&snap, group)?;
            if samples == 0 {
                return Err((
                    ErrorKind::BadRequest,
                    "field \"samples\" must be at least 1".to_string(),
                ));
            }
            let size = set.len();
            let control = control_for(deadline_ms);
            check_deadline(&control)?;
            let (reply, outcome) = mpsc::channel();
            enqueue(
                shared,
                Job::Baseline {
                    snapshot: Arc::clone(&snap),
                    set,
                    functions: functions.clone(),
                    samples,
                    seed,
                    control,
                    reply,
                },
            )?;
            match wait_for(&outcome)? {
                JobOutput::Baseline { set_scores, baseline_means } => {
                    let fields = vec![
                        ("group".to_string(), Value::UInt(group as u64)),
                        ("size".to_string(), Value::UInt(size as u64)),
                        ("samples".to_string(), Value::UInt(samples as u64)),
                        ("seed".to_string(), Value::UInt(seed)),
                        ("functions".to_string(), function_names(&functions)),
                        ("set_scores".to_string(), wire::score_array(&set_scores)),
                        ("baseline_means".to_string(), wire::score_array(&baseline_means)),
                    ];
                    Ok(ok_payload(with_op("baseline", &snap.id, fields)))
                }
                _ => Err(internal("baseline job returned the wrong output kind")),
            }
        }
        Request::ApplyMutations { snapshot, mutations } => {
            refuse_writes_on_replica(shared)?;
            // Resolve first so unknown ids are `not-found`, not queued
            // work; the worker re-resolves the live state under its lock.
            let snap = resolve_snapshot(shared, &snapshot)?;
            refuse_writes_on_shard(&snap)?;
            let (reply, outcome) = mpsc::channel();
            enqueue(shared, Job::Apply { snapshot_id: snap.id.clone(), mutations, reply })?;
            match wait_for(&outcome)? {
                JobOutput::Applied { applied, rejected, version, wal_records, invalidated } => {
                    let rejected_value = match rejected {
                        None => Value::Null,
                        Some((index, message)) => Value::Map(vec![
                            ("index".to_string(), Value::UInt(index as u64)),
                            ("message".to_string(), Value::Str(message)),
                        ]),
                    };
                    let fields = vec![
                        ("applied".to_string(), Value::UInt(applied as u64)),
                        ("rejected".to_string(), rejected_value),
                        ("version".to_string(), Value::UInt(version)),
                        ("wal_records".to_string(), Value::UInt(wal_records)),
                        ("cache_invalidated".to_string(), Value::UInt(invalidated)),
                    ];
                    Ok(ok_payload(with_op("apply_mutations", &snap.id, fields)))
                }
                _ => Err(internal("apply job returned the wrong output kind")),
            }
        }
        Request::Compact { snapshot } => {
            refuse_writes_on_replica(shared)?;
            let snap = resolve_snapshot(shared, &snapshot)?;
            refuse_writes_on_shard(&snap)?;
            if snap.path == "<memory>" {
                return Err((
                    ErrorKind::BadRequest,
                    format!("snapshot {:?} is in-memory and cannot be compacted", snap.id),
                ));
            }
            let (reply, outcome) = mpsc::channel();
            enqueue(shared, Job::Compact { snapshot_id: snap.id.clone(), reply })?;
            match wait_for(&outcome)? {
                JobOutput::Compacted { folded } => {
                    let fields = vec![
                        ("folded_records".to_string(), Value::UInt(folded)),
                        ("path".to_string(), Value::Str(snap.path.clone())),
                    ];
                    Ok(ok_payload(with_op("compact", &snap.id, fields)))
                }
                _ => Err(internal("compact job returned the wrong output kind")),
            }
        }
        Request::WatchScores { snapshot, group } => {
            // O(1) from the maintained aggregates: answered inline, like
            // cache hits — no scoring job, no queue round-trip.
            let mut states = shared.live.lock().expect("live state lock");
            let state = live_state(&mut states, shared, &snapshot)?;
            let scores = state.live.paper_scores(group).ok_or_else(|| {
                (
                    ErrorKind::NotFound,
                    format!(
                        "snapshot {snapshot:?} has {} groups, no index {group}",
                        state.live.groups().len()
                    ),
                )
            })?;
            let size = state.live.groups()[group].len();
            let names: Vec<Value> =
                scores.iter().map(|(f, _)| Value::Str(f.name().to_string())).collect();
            let values: Vec<f64> = scores.iter().map(|&(_, s)| s).collect();
            let fields = vec![
                ("group".to_string(), Value::UInt(group as u64)),
                ("size".to_string(), Value::UInt(size as u64)),
                ("version".to_string(), Value::UInt(state.version)),
                ("functions".to_string(), Value::Seq(names)),
                ("scores".to_string(), wire::score_array(&values)),
            ];
            Ok(ok_payload(with_op("watch_scores", &snapshot, fields)))
        }
        Request::SuggestCircles { snapshot, ego, seed, min_size, top } => {
            // Answered inline, like watch_scores: the live path reads the
            // overlay's composed adjacency directly (no materialization),
            // and hits replay whole cached suggestions.
            run_suggest(shared, &snapshot, ego, seed, min_size, top)
        }
        Request::DebugSleep { millis } => {
            if !shared.config.debug_ops {
                return Err((
                    ErrorKind::BadRequest,
                    "debug ops are disabled on this server".to_string(),
                ));
            }
            let (reply, outcome) = mpsc::channel();
            enqueue(shared, Job::Sleep { millis, reply })?;
            wait_for(&outcome)?;
            Ok(ok_payload(vec![("slept_ms".to_string(), Value::UInt(millis))]))
        }
        Request::ReplStatus => {
            let mut fields = vec![("op".to_string(), Value::Str("repl_status".to_string()))];
            fields.extend(replication::status_fields(shared));
            Ok(ok_payload(fields))
        }
        Request::ShardStats { snapshot, group, members, deadline_ms } => {
            let snap = resolve_snapshot(shared, &snapshot)?;
            let Some(manifest) = snap.shard else {
                return Err((
                    ErrorKind::BadRequest,
                    format!(
                        "snapshot {:?} carries no shard manifest; pack it with --shard",
                        snap.id
                    ),
                ));
            };
            let control = control_for(deadline_ms);
            check_deadline(&control)?;
            let set = match (group, members) {
                (Some(group), None) => resolve_group(&snap, group)?,
                (None, Some(members)) => {
                    // Halo sub-snapshots keep the parent's full node-id
                    // space, so global member ids validate directly.
                    if let Some(&bad) = members.iter().find(|&&m| {
                        u64::from(m) >= manifest.parent_node_count
                    }) {
                        return Err((
                            ErrorKind::BadRequest,
                            format!(
                                "member {bad} is out of range for snapshot {:?} ({} nodes)",
                                snap.id, manifest.parent_node_count
                            ),
                        ));
                    }
                    VertexSet::from_vec(members)
                }
                // The parser enforces exactly-one-of.
                _ => return Err(internal("shard_stats parsed without a set")),
            };
            // Answered inline, like watch_scores: one single-set pass
            // over owned members, bounded by the halo's size — the
            // coordinator provides the fan-out, not the shard's queue.
            let partial = circlekit_shard::compute_partial(&snap.graph, &manifest, &set);
            check_deadline(&control)?;
            ServeStats::bump(&shared.stats.shard_partials);
            let fields = vec![
                ("shard_count".to_string(), Value::UInt(u64::from(manifest.shard_count))),
                ("shard_index".to_string(), Value::UInt(u64::from(manifest.shard_index))),
                ("parent_crc32".to_string(), Value::UInt(u64::from(manifest.parent_crc32))),
                ("parent_nodes".to_string(), Value::UInt(manifest.parent_node_count)),
                ("parent_edges".to_string(), Value::UInt(manifest.parent_edge_count)),
                (
                    "parent_median_degree".to_string(),
                    wire::score_value(manifest.parent_median_degree),
                ),
                ("directed".to_string(), Value::Bool(snap.graph.is_directed())),
                ("version".to_string(), Value::UInt(snap.version)),
                ("set_len".to_string(), Value::UInt(set.len() as u64)),
                ("internal_arcs".to_string(), Value::UInt(partial.internal_arcs)),
                ("boundary".to_string(), Value::UInt(partial.boundary)),
                ("out_degree_sum".to_string(), Value::UInt(partial.out_degree_sum)),
                ("in_degree_sum".to_string(), Value::UInt(partial.in_degree_sum)),
                (
                    "above_median_internal".to_string(),
                    Value::UInt(partial.above_median_internal),
                ),
                ("flake_count".to_string(), Value::UInt(partial.flake_count)),
                (
                    "in_internal_triangle".to_string(),
                    Value::UInt(partial.in_internal_triangle),
                ),
                ("max_odf".to_string(), wire::score_value(partial.max_odf)),
                (
                    "odf_members".to_string(),
                    Value::Seq(
                        partial.odf_members.iter().map(|&v| Value::UInt(u64::from(v))).collect(),
                    ),
                ),
                ("odf_values".to_string(), wire::score_array(&partial.odf_values)),
            ];
            Ok(ok_payload(with_op("shard_stats", &snap.id, fields)))
        }
        Request::ReplAck { .. } => Err((
            ErrorKind::BadRequest,
            "repl_ack is only valid inside a replication subscription".to_string(),
        )),
        // Handled by the connection loop so it can take over the stream.
        Request::Replicate { .. } => {
            Err(internal("replicate must be handled by the connection loop"))
        }
        // Handled by the connection loop so it can close afterwards.
        Request::Shutdown => Err(internal("shutdown must be handled by the connection loop")),
    }
}

/// Serves one `suggest_circles` request.
///
/// The version and ego view are captured together: under the live-state
/// lock when the snapshot has an overlay (the incremental path — adjacency
/// comes straight from the composed merge iterators), or from one
/// immutable registry `Arc` otherwise. Discovery itself runs without any
/// lock; a racing commit bumps the version, so the late insert can never
/// be served (compare-on-get), while the response stays a consistent
/// point-in-time answer.
fn run_suggest(
    shared: &Arc<Shared>,
    snapshot: &str,
    ego: u32,
    seed: u64,
    min_size: usize,
    top: usize,
) -> Result<String, RequestError> {
    let no_such_ego = |n: usize| {
        (
            ErrorKind::NotFound,
            format!("snapshot {snapshot:?} has {n} vertices, no ego {ego}"),
        )
    };
    let key = SuggestKey { snapshot: snapshot.to_string(), ego, seed, min_size, top };

    enum Capture {
        Hit(u64, Arc<Suggestion>),
        Fresh(u64, EgoView),
    }

    // Live path: version + view extracted under the live-state lock.
    let live_capture: Option<Result<Capture, RequestError>> = {
        let states = shared.live.lock().expect("live state lock");
        states.get(snapshot).map(|state| {
            let n = state.live.overlay().node_count();
            if (ego as usize) >= n {
                return Err(no_such_ego(n));
            }
            let hit =
                shared.suggest.lock().expect("suggest cache lock").get(&key, state.version);
            Ok(match hit {
                Some(suggestion) => Capture::Hit(state.version, suggestion),
                None => Capture::Fresh(
                    state.version,
                    EgoView::from_overlay(state.live.base(), state.live.overlay(), ego),
                ),
            })
        })
    };
    let capture = match live_capture {
        Some(result) => result?,
        None => {
            let snap = resolve_snapshot(shared, snapshot)?;
            let n = snap.graph.node_count();
            if (ego as usize) >= n {
                return Err(no_such_ego(n));
            }
            let hit = shared.suggest.lock().expect("suggest cache lock").get(&key, snap.version);
            match hit {
                Some(suggestion) => Capture::Hit(snap.version, suggestion),
                None => Capture::Fresh(snap.version, EgoView::from_graph(&snap.graph, ego)),
            }
        }
    };

    let (version, view) = match capture {
        Capture::Hit(version, suggestion) => {
            return Ok(suggest_response(snapshot, version, true, &suggestion));
        }
        Capture::Fresh(version, view) => (version, view),
    };

    let config = DiscoverConfig {
        seed,
        threads: shared.config.threads,
        min_size,
        max_size: 0,
        top,
    };
    let suggestion = Arc::new(discover(&view, &config));
    shared
        .suggest
        .lock()
        .expect("suggest cache lock")
        .insert(key, version, Arc::clone(&suggestion));
    Ok(suggest_response(snapshot, version, false, &suggestion))
}

/// Renders the `suggest_circles` response envelope. Scores go through
/// [`wire::score_value`], so they cross the wire bit-exactly and the CLI
/// can re-render the identical table.
fn suggest_response(snapshot: &str, version: u64, cached: bool, s: &Suggestion) -> String {
    let candidates: Vec<Value> = s
        .candidates
        .iter()
        .map(|c| {
            Value::Map(vec![
                (
                    "members".to_string(),
                    Value::Seq(
                        c.members.as_slice().iter().map(|&v| Value::UInt(v as u64)).collect(),
                    ),
                ),
                ("conductance".to_string(), wire::score_value(c.conductance)),
                ("average_degree".to_string(), wire::score_value(c.average_degree)),
            ])
        })
        .collect();
    let fields = vec![
        ("ego".to_string(), Value::UInt(s.ego as u64)),
        ("seed".to_string(), Value::UInt(s.seed)),
        ("version".to_string(), Value::UInt(version)),
        ("cached".to_string(), Value::Bool(cached)),
        ("alters".to_string(), Value::UInt(s.alters as u64)),
        ("candidates".to_string(), Value::Seq(candidates)),
    ];
    ok_payload(with_op("suggest_circles", snapshot, fields))
}

/// Shard sub-snapshots are bound to their parent by the manifest's CRC
/// and counts; mutating one would silently break the scatter-gather
/// exactness guarantee, so writes are refused with a typed error.
fn refuse_writes_on_shard(snap: &LoadedSnapshot) -> Result<(), RequestError> {
    match snap.shard {
        Some(manifest) => Err((
            ErrorKind::BadRequest,
            format!(
                "snapshot {:?} is shard {}/{} of an immutable partition; \
                 mutate the parent snapshot and re-pack",
                snap.id,
                manifest.shard_index,
                manifest.shard_count
            ),
        )),
        None => Ok(()),
    }
}

/// Replicas apply writes only through the replication stream; direct
/// writes are refused with a typed error so clients can fail over.
fn refuse_writes_on_replica(shared: &Shared) -> Result<(), RequestError> {
    match shared.config.replica_of {
        Some(ref primary) => Err((
            ErrorKind::NotPrimary,
            format!("this server is a read replica of {primary}; send writes to the primary"),
        )),
        None => Ok(()),
    }
}

/// The shared score path of `score_group` and `score_set`: cache probe,
/// then the queued/batched compute path on a miss.
fn score_request(
    shared: &Arc<Shared>,
    snap: &Arc<LoadedSnapshot>,
    set: VertexSet,
    functions: &[ScoringFunction],
    deadline_ms: Option<u64>,
) -> Result<Vec<(String, Value)>, RequestError> {
    let control = control_for(deadline_ms);
    check_deadline(&control)?;
    let size = set.len();
    let digest = set_digest(set.as_slice());
    if let Some(scores) = cache_probe(shared, snap, functions, digest) {
        return Ok(score_fields(size, functions, &scores, true));
    }
    let (reply, outcome) = mpsc::channel();
    enqueue(
        shared,
        Job::Score(ScoreJob {
            snapshot: Arc::clone(snap),
            set,
            functions: functions.to_vec(),
            digest,
            control,
            reply,
        }),
    )?;
    match wait_for(&outcome)? {
        JobOutput::Scores(scores) => Ok(score_fields(size, functions, &scores, false)),
        _ => Err(internal("score job returned the wrong output kind")),
    }
}

pub(crate) fn score_fields(
    size: usize,
    functions: &[ScoringFunction],
    scores: &[f64],
    cached: bool,
) -> Vec<(String, Value)> {
    vec![
        ("size".to_string(), Value::UInt(size as u64)),
        ("functions".to_string(), function_names(functions)),
        ("scores".to_string(), wire::score_array(scores)),
        ("cached".to_string(), Value::Bool(cached)),
    ]
}

pub(crate) fn with_op(op: &str, snapshot: &str, mut rest: Vec<(String, Value)>) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("op".to_string(), Value::Str(op.to_string())),
        ("snapshot".to_string(), Value::Str(snapshot.to_string())),
    ];
    fields.append(&mut rest);
    fields
}

fn function_names(functions: &[ScoringFunction]) -> Value {
    Value::Seq(functions.iter().map(|f| Value::Str(f.name().to_string())).collect())
}

fn resolve_snapshot(
    shared: &Shared,
    id: &str,
) -> Result<Arc<LoadedSnapshot>, RequestError> {
    let snap = shared
        .registry
        .get(id)
        .ok_or_else(|| (ErrorKind::NotFound, format!("unknown snapshot {id:?}")))?;
    // Committed mutations outrun the registry's materialization. Catch
    // up lazily — the composed graph is rebuilt at most once per version,
    // however many batches a burst committed — and swap a fresh immutable
    // entry in; jobs holding the old Arc keep a consistent graph.
    let mut states = shared.live.lock().expect("live state lock");
    let Some(state) = states.get_mut(id) else { return Ok(snap) };
    if state.version == snap.version {
        return Ok(snap);
    }
    let graph = state.live.materialize();
    let groups = state.live.groups().to_vec();
    let median_degree = Scorer::new(&graph).median_degree();
    let fresh = Arc::new(LoadedSnapshot {
        id: snap.id.clone(),
        path: snap.path.clone(),
        graph,
        groups,
        median_degree,
        shard: snap.shard,
        version: state.version,
    });
    shared.registry.replace(Arc::clone(&fresh));
    Ok(fresh)
}

/// Fetches (or lazily creates, for snapshots never mutated before) the
/// live state of `id`. Callers hold the live-state map lock.
pub(crate) fn live_state<'a>(
    states: &'a mut HashMap<String, LiveState>,
    shared: &Shared,
    id: &str,
) -> Result<&'a mut LiveState, RequestError> {
    if !states.contains_key(id) {
        let snap = shared
            .registry
            .get(id)
            .ok_or_else(|| (ErrorKind::NotFound, format!("unknown snapshot {id:?}")))?;
        let live = if snap.path == "<memory>" {
            LiveSnapshot::in_memory(snap.graph.clone(), snap.groups.clone())
        } else {
            LiveSnapshot::open(&snap.path).map_err(|e| {
                internal(&format!("cannot open {} for mutation: {e}", snap.path))
            })?
        };
        states.insert(id.to_string(), LiveState { live, version: snap.version });
    }
    Ok(states.get_mut(id).expect("present or just inserted"))
}

fn resolve_group(snap: &LoadedSnapshot, group: usize) -> Result<VertexSet, RequestError> {
    snap.groups.get(group).cloned().ok_or_else(|| {
        (
            ErrorKind::NotFound,
            format!(
                "snapshot {:?} has {} groups, no index {group}",
                snap.id,
                snap.groups.len()
            ),
        )
    })
}

fn control_for(deadline_ms: Option<u64>) -> RunControl {
    match deadline_ms {
        Some(ms) => RunControl::new().with_deadline(Duration::from_millis(ms)),
        None => RunControl::new(),
    }
}

fn check_deadline(control: &RunControl) -> Result<(), RequestError> {
    control
        .check()
        .map_err(|why| (ErrorKind::DeadlineExceeded, why.to_string()))
}

fn enqueue(shared: &Shared, job: Job) -> Result<(), RequestError> {
    shared.queue.try_push(job).map_err(|e| match e {
        PushError::Full => (
            ErrorKind::Overloaded,
            format!(
                "request queue is at capacity ({}); retry later",
                shared.queue.capacity()
            ),
        ),
        PushError::Closed => {
            (ErrorKind::ShuttingDown, "server is draining".to_string())
        }
    })?;
    ServeStats::raise(&shared.stats.queue_depth_max, shared.queue.len() as u64);
    Ok(())
}

fn wait_for(
    outcome: &mpsc::Receiver<Result<JobOutput, RequestError>>,
) -> Result<JobOutput, RequestError> {
    outcome
        .recv()
        .map_err(|_| internal("scoring worker dropped the reply channel"))?
}

fn internal(message: &str) -> RequestError {
    (ErrorKind::Internal, message.to_string())
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = shared.queue.pop_batch(shared.config.batch_max, |first, candidate| {
            match (first, candidate) {
                // Pointer identity, not id equality: two jobs under the
                // same id may hold different materialization versions of
                // a mutated snapshot, and must never share one scorer.
                (Job::Score(a), Job::Score(b)) => Arc::ptr_eq(&a.snapshot, &b.snapshot),
                _ => false,
            }
        });
        if batch.is_empty() {
            return; // queue closed and drained
        }
        let mut score_jobs = Vec::new();
        for job in batch {
            match job {
                Job::Score(job) => score_jobs.push(job),
                Job::Baseline { snapshot, set, functions, samples, seed, control, reply } => {
                    let result = run_baseline(
                        shared, &snapshot, set, &functions, samples, seed, &control,
                    );
                    let _ = reply.send(result);
                }
                Job::Apply { snapshot_id, mutations, reply } => {
                    let result = run_apply(shared, &snapshot_id, &mutations);
                    let _ = reply.send(result);
                }
                Job::Compact { snapshot_id, reply } => {
                    let result = run_compact(shared, &snapshot_id);
                    let _ = reply.send(result);
                }
                Job::Sleep { millis, reply } => {
                    std::thread::sleep(Duration::from_millis(millis));
                    let _ = reply.send(Ok(JobOutput::Slept));
                }
            }
        }
        if !score_jobs.is_empty() {
            run_score_batch(shared, score_jobs);
        }
    }
}

/// Evaluates one coalesced batch of same-snapshot scoring jobs with a
/// single [`ParallelScorer`] pass, then fans the per-job scores back out
/// (and into the cache).
fn run_score_batch(shared: &Shared, mut jobs: Vec<ScoreJob>) {
    // Deadlines are re-checked at the batch boundary: a job that waited
    // too long in the queue is answered `deadline-exceeded`, not scored.
    let mut live = Vec::with_capacity(jobs.len());
    for mut job in jobs.drain(..) {
        match job.control.check() {
            Ok(()) => {
                let set = std::mem::replace(&mut job.set, VertexSet::new());
                live.push((job, set));
            }
            Err(why) => {
                let _ = job.reply.send(Err((ErrorKind::DeadlineExceeded, why.to_string())));
            }
        }
    }
    if live.is_empty() {
        return;
    }
    let snapshot = Arc::clone(&live[0].0.snapshot);
    let sets: Vec<VertexSet> = live.iter().map(|(_, set)| set.clone()).collect();
    let scorer = ParallelScorer::with_graph_median(
        &snapshot.graph,
        snapshot.median_degree,
        shared.config.threads,
    );
    let stats = scorer.stats_batch(&sets);
    ServeStats::bump(&shared.stats.batches);
    ServeStats::add(&shared.stats.batched_jobs, live.len() as u64);
    ServeStats::raise(&shared.stats.max_batch, live.len() as u64);
    ServeStats::add(&shared.stats.scored_sets, live.len() as u64);
    let mut cache = shared.cache.lock().expect("cache lock");
    for ((job, _), set_stats) in live.iter().zip(&stats) {
        let scores: Vec<f64> = job.functions.iter().map(|f| f.score(set_stats)).collect();
        for (function, &score) in job.functions.iter().zip(&scores) {
            cache.insert(
                CacheKey {
                    snapshot: job.snapshot.id.clone(),
                    version: job.snapshot.version,
                    function: *function,
                    digest: job.digest,
                },
                score,
            );
        }
        let _ = job.reply.send(Ok(JobOutput::Scores(scores)));
    }
}

/// Scores a set against `samples` seeded size-matched random-walk sets.
/// Fully deterministic for a given `(snapshot, set, functions, samples,
/// seed)` tuple: per-walk RNG streams are keyed by `(seed, walk index)`
/// and means are accumulated in walk order.
fn run_baseline(
    shared: &Shared,
    snapshot: &LoadedSnapshot,
    set: VertexSet,
    functions: &[ScoringFunction],
    samples: usize,
    seed: u64,
    control: &RunControl,
) -> Result<JobOutput, RequestError> {
    check_deadline(control)?;
    let sizes = vec![set.len(); samples];
    let sampled = size_matched_random_walk_sets_parallel_with_control(
        &snapshot.graph,
        &sizes,
        seed,
        shared.config.threads,
        control,
    )
    .map_err(|why| (ErrorKind::DeadlineExceeded, why.to_string()))?;
    let mut all_sets = Vec::with_capacity(samples + 1);
    all_sets.push(set);
    all_sets.extend(sampled);
    let scorer = ParallelScorer::with_graph_median(
        &snapshot.graph,
        snapshot.median_degree,
        shared.config.threads,
    );
    let stats = scorer.stats_batch(&all_sets);
    ServeStats::add(&shared.stats.scored_sets, all_sets.len() as u64);
    let set_scores: Vec<f64> = functions.iter().map(|f| f.score(&stats[0])).collect();
    let baseline_means: Vec<f64> = functions
        .iter()
        .map(|f| {
            let sum: f64 = stats[1..].iter().map(|s| f.score(s)).sum();
            sum / samples as f64
        })
        .collect();
    Ok(JobOutput::Baseline { set_scores, baseline_means })
}

/// Applies one mutation batch under the live-state lock. On commit the
/// version is bumped and every cached score of the snapshot's older
/// materializations is invalidated *before* the reply is sent, so a
/// client that saw the ack can never read a stale cached score.
fn run_apply(
    shared: &Shared,
    id: &str,
    mutations: &[Mutation],
) -> Result<JobOutput, RequestError> {
    let mut states = shared.live.lock().expect("live state lock");
    let state = live_state(&mut states, shared, id)?;
    let outcome = state
        .live
        .apply(mutations)
        .map_err(|e| internal(&format!("mutation commit failed: {e}")))?;
    let mut invalidated = 0;
    if outcome.applied > 0 {
        let old_version = state.version;
        state.version += 1;
        ServeStats::add(&shared.stats.mutations_applied, outcome.applied as u64);
        invalidated =
            shared.cache.lock().expect("cache lock").invalidate_stale(id, state.version);
        // Suggestions are invalidated per ego, not wholesale: an edge
        // mutation can only change the egos named by `affected_egos`
        // (endpoints + egos watching both ends); vertex and membership
        // mutations change no ego view at all. Everything else is
        // revalidated to the new version and keeps hitting.
        let mut affected: Vec<u32> = Vec::new();
        for mutation in &mutations[..outcome.applied] {
            match *mutation {
                Mutation::AddEdge { u, v } | Mutation::RemoveEdge { u, v } => {
                    affected.extend(affected_egos(state.live.base(), state.live.overlay(), u, v));
                }
                _ => {}
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut suggest = shared.suggest.lock().expect("suggest cache lock");
        invalidated += suggest.invalidate_egos(id, &affected);
        suggest.revalidate(id, old_version, state.version);
    }
    if outcome.rejected.is_some() {
        ServeStats::bump(&shared.stats.mutations_rejected);
    }
    Ok(JobOutput::Applied {
        applied: outcome.applied,
        rejected: outcome.rejected.map(|(i, e)| (i, e.to_string())),
        version: state.version,
        wal_records: state.live.wal_records() as u64,
        invalidated,
    })
}

/// Folds a snapshot's WAL into its CKS1 file. The composed graph is
/// unchanged, so neither the version nor any cache entry moves.
fn run_compact(shared: &Shared, id: &str) -> Result<JobOutput, RequestError> {
    let mut states = shared.live.lock().expect("live state lock");
    let state = live_state(&mut states, shared, id)?;
    let folded = state.live.wal_records() as u64;
    state.live.compact().map_err(|e| internal(&format!("compaction failed: {e}")))?;
    ServeStats::bump(&shared.stats.compactions);
    Ok(JobOutput::Compacted { folded })
}

/// Probes the cache for every requested function; only a full hit
/// produces a response (a partial hit recomputes the whole request — the
/// stats are computed once per set anyway).
fn cache_probe(
    shared: &Shared,
    snap: &LoadedSnapshot,
    functions: &[ScoringFunction],
    digest: u64,
) -> Option<Vec<f64>> {
    if shared.config.cache_capacity == 0 {
        return None;
    }
    let mut cache = shared.cache.lock().expect("cache lock");
    let mut scores = Vec::with_capacity(functions.len());
    for function in functions {
        let key = CacheKey {
            snapshot: snap.id.clone(),
            version: snap.version,
            function: *function,
            digest,
        };
        scores.push(cache.get(&key)?);
    }
    Some(scores)
}
