//! [`SnapshotRegistry`]: the snapshots a server instance keeps resident.
//!
//! Each snapshot is loaded once — via the CKS1 zero-copy mmap path when
//! the host supports it ([`circlekit_store::MappedSnapshot`] falls back
//! to the aligned buffered read otherwise) — and then shared read-only
//! behind an [`Arc`] by every connection handler and scoring worker.
//! Graph-level precomputation (the median degree that FOMD needs) runs at
//! load time so request handling never repeats it, and so served scores
//! use exactly the inputs the offline `Scorer` would.

use circlekit_graph::{Graph, VertexSet};
use circlekit_scoring::Scorer;
use circlekit_store::MappedSnapshot;
use std::sync::Arc;

/// One resident snapshot: the shared graph, its groups, and the
/// precomputed graph-level scoring inputs.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Registry id (defaults to the file stem).
    pub id: String,
    /// Source path, `"<memory>"` for programmatically inserted graphs.
    pub path: String,
    /// The shared read-only graph.
    pub graph: Graph,
    /// The snapshot's group collections (possibly empty).
    pub groups: Vec<VertexSet>,
    /// Graph-wide median total degree, precomputed for FOMD.
    pub median_degree: f64,
}

/// The set of snapshots a server answers queries about.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    entries: Vec<Arc<LoadedSnapshot>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::default()
    }

    /// Loads a `.cks` file under `id` (pass `None` to use the file stem).
    ///
    /// # Errors
    ///
    /// A rendered message for open/validation failures or a duplicate id.
    pub fn load(&mut self, path: &str, id: Option<&str>) -> Result<(), String> {
        let id = match id {
            Some(id) => id.to_string(),
            None => std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("cannot derive a snapshot id from path {path:?}"))?,
        };
        let mapped = MappedSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
        let snap = mapped.load().map_err(|e| format!("{path}: {e}"))?;
        self.insert_full(id, path.to_string(), snap.graph, snap.groups)
    }

    /// Registers an in-memory graph (tests, `loadgen --synthetic`).
    ///
    /// # Errors
    ///
    /// A rendered message when `id` is already taken.
    pub fn insert(
        &mut self,
        id: impl Into<String>,
        graph: Graph,
        groups: Vec<VertexSet>,
    ) -> Result<(), String> {
        self.insert_full(id.into(), "<memory>".to_string(), graph, groups)
    }

    fn insert_full(
        &mut self,
        id: String,
        path: String,
        graph: Graph,
        groups: Vec<VertexSet>,
    ) -> Result<(), String> {
        if self.get(&id).is_some() {
            return Err(format!("duplicate snapshot id {id:?}"));
        }
        let median_degree = Scorer::new(&graph).median_degree();
        self.entries.push(Arc::new(LoadedSnapshot { id, path, graph, groups, median_degree }));
        Ok(())
    }

    /// Looks a snapshot up by id.
    pub fn get(&self, id: &str) -> Option<&Arc<LoadedSnapshot>> {
        self.entries.iter().find(|s| s.id == id)
    }

    /// All snapshots, in load order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<LoadedSnapshot>> {
        self.entries.iter()
    }

    /// Number of resident snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no snapshot is loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_store::save_snapshot;

    fn tiny_graph() -> Graph {
        Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn insert_and_lookup() {
        let mut reg = SnapshotRegistry::new();
        reg.insert("a", tiny_graph(), vec![VertexSet::from_vec(vec![0, 1, 2])]).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let snap = reg.get("a").unwrap();
        assert_eq!(snap.graph.node_count(), 4);
        assert_eq!(snap.groups.len(), 1);
        assert!(snap.median_degree > 0.0);
        assert!(reg.get("b").is_none());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut reg = SnapshotRegistry::new();
        reg.insert("a", tiny_graph(), Vec::new()).unwrap();
        let err = reg.insert("a", tiny_graph(), Vec::new()).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn load_derives_id_from_file_stem() {
        let dir = std::env::temp_dir().join("circlekit-serve-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stem.cks");
        let path = path.to_string_lossy().into_owned();
        let g = tiny_graph();
        save_snapshot(&path, &g, &[VertexSet::from_vec(vec![0, 1])]).unwrap();
        let mut reg = SnapshotRegistry::new();
        reg.load(&path, None).unwrap();
        let snap = reg.get("stem").unwrap();
        assert_eq!(snap.graph, g);
        assert_eq!(snap.path, path);
        // Median degree matches what the offline scorer computes.
        assert_eq!(snap.median_degree, Scorer::new(&g).median_degree());
        // Explicit ids override the stem.
        reg.load(&path, Some("alias")).unwrap();
        assert!(reg.get("alias").is_some());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn missing_file_is_a_rendered_error() {
        let mut reg = SnapshotRegistry::new();
        let err = reg.load("/definitely/not/here.cks", None).unwrap_err();
        assert!(err.contains("here.cks"), "{err}");
    }
}
