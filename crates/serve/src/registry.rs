//! [`SnapshotRegistry`]: the snapshots a server instance keeps resident.
//!
//! Each snapshot is loaded once — via the CKS1 zero-copy mmap path when
//! the host supports it ([`circlekit_store::MappedSnapshot`] falls back
//! to the aligned buffered read otherwise) — and then shared read-only
//! behind an [`Arc`] by every connection handler and scoring worker.
//! Graph-level precomputation (the median degree that FOMD needs) runs at
//! load time so request handling never repeats it, and so served scores
//! use exactly the inputs the offline `Scorer` would.
//!
//! Entries are immutable; live mutations never edit a resident snapshot
//! in place. Instead the server materializes the mutated graph into a
//! *fresh* [`LoadedSnapshot`] with a higher [`LoadedSnapshot::version`]
//! and [`SnapshotRegistry::replace`]s the entry atomically, so scoring
//! jobs already holding the old `Arc` keep a consistent graph and new
//! requests see the new one.

use circlekit_graph::{Graph, VertexSet};
use circlekit_scoring::Scorer;
use circlekit_store::{MappedSnapshot, ShardManifest};
use std::sync::{Arc, RwLock};

/// One resident snapshot: the shared graph, its groups, and the
/// precomputed graph-level scoring inputs.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Registry id (defaults to the file stem).
    pub id: String,
    /// Source path, `"<memory>"` for programmatically inserted graphs.
    pub path: String,
    /// The shared read-only graph.
    pub graph: Graph,
    /// The snapshot's group collections (possibly empty).
    pub groups: Vec<VertexSet>,
    /// Graph-wide median total degree, precomputed for FOMD. On a shard
    /// sub-snapshot this is the *parent's* median (from the manifest),
    /// never the halo's own — partial FOMD terms must use the global
    /// threshold to reduce exactly.
    pub median_degree: f64,
    /// The shard manifest when this snapshot is a vertex-partitioned
    /// sub-snapshot (packed with `--shard`); `None` for ordinary
    /// snapshots. Its presence enables the `shard_stats` op and makes
    /// the snapshot immutable (mutating a shard would break its binding
    /// to the parent).
    pub shard: Option<ShardManifest>,
    /// Which live-mutation version this materialization reflects: 0 as
    /// loaded, bumped once per committed mutation batch. Cache keys carry
    /// it, so scores computed against a superseded materialization can
    /// never answer a request against a newer one.
    pub version: u64,
}

/// The set of snapshots a server answers queries about.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    entries: RwLock<Vec<Arc<LoadedSnapshot>>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::default()
    }

    /// Loads a `.cks` file under `id` (pass `None` to use the file stem).
    ///
    /// # Errors
    ///
    /// A rendered message for open/validation failures or a duplicate id.
    pub fn load(&mut self, path: &str, id: Option<&str>) -> Result<(), String> {
        let id = match id {
            Some(id) => id.to_string(),
            None => std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("cannot derive a snapshot id from path {path:?}"))?,
        };
        let mapped = MappedSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
        let shard = mapped.shard_manifest().map_err(|e| format!("{path}: {e}"))?;
        let snap = mapped.load().map_err(|e| format!("{path}: {e}"))?;
        self.insert_full(id, path.to_string(), snap.graph, snap.groups, shard)
    }

    /// Registers an in-memory graph (tests, `loadgen --synthetic`).
    ///
    /// # Errors
    ///
    /// A rendered message when `id` is already taken.
    pub fn insert(
        &mut self,
        id: impl Into<String>,
        graph: Graph,
        groups: Vec<VertexSet>,
    ) -> Result<(), String> {
        self.insert_full(id.into(), "<memory>".to_string(), graph, groups, None)
    }

    fn insert_full(
        &mut self,
        id: String,
        path: String,
        graph: Graph,
        groups: Vec<VertexSet>,
        shard: Option<ShardManifest>,
    ) -> Result<(), String> {
        if self.get(&id).is_some() {
            return Err(format!("duplicate snapshot id {id:?}"));
        }
        // Shard sub-snapshots score against the parent's global median,
        // not the halo's own (see the `median_degree` field docs).
        let median_degree = match shard {
            Some(manifest) => manifest.parent_median_degree,
            None => Scorer::new(&graph).median_degree(),
        };
        self.entries.write().expect("registry lock").push(Arc::new(LoadedSnapshot {
            id,
            path,
            graph,
            groups,
            median_degree,
            shard,
            version: 0,
        }));
        Ok(())
    }

    /// Looks a snapshot up by id, returning a shared handle to the
    /// current materialization.
    pub fn get(&self, id: &str) -> Option<Arc<LoadedSnapshot>> {
        self.entries.read().expect("registry lock").iter().find(|s| s.id == id).cloned()
    }

    /// Swaps the entry with `fresh.id` for `fresh` (appends when the id
    /// is new). Readers holding the old `Arc` are unaffected.
    pub fn replace(&self, fresh: Arc<LoadedSnapshot>) {
        let mut entries = self.entries.write().expect("registry lock");
        match entries.iter_mut().find(|s| s.id == fresh.id) {
            Some(slot) => *slot = fresh,
            None => entries.push(fresh),
        }
    }

    /// All snapshots, in load order.
    pub fn snapshots(&self) -> Vec<Arc<LoadedSnapshot>> {
        self.entries.read().expect("registry lock").clone()
    }

    /// Number of resident snapshots.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock").len()
    }

    /// Whether no snapshot is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_store::save_snapshot;

    fn tiny_graph() -> Graph {
        Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn insert_and_lookup() {
        let mut reg = SnapshotRegistry::new();
        reg.insert("a", tiny_graph(), vec![VertexSet::from_vec(vec![0, 1, 2])]).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let snap = reg.get("a").unwrap();
        assert_eq!(snap.graph.node_count(), 4);
        assert_eq!(snap.groups.len(), 1);
        assert!(snap.median_degree > 0.0);
        assert_eq!(snap.version, 0);
        assert!(reg.get("b").is_none());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut reg = SnapshotRegistry::new();
        reg.insert("a", tiny_graph(), Vec::new()).unwrap();
        let err = reg.insert("a", tiny_graph(), Vec::new()).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn load_derives_id_from_file_stem() {
        let dir = std::env::temp_dir().join("circlekit-serve-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stem.cks");
        let path = path.to_string_lossy().into_owned();
        let g = tiny_graph();
        save_snapshot(&path, &g, &[VertexSet::from_vec(vec![0, 1])]).unwrap();
        let mut reg = SnapshotRegistry::new();
        reg.load(&path, None).unwrap();
        let snap = reg.get("stem").unwrap();
        assert_eq!(snap.graph, g);
        assert_eq!(snap.path, path);
        // Median degree matches what the offline scorer computes.
        assert_eq!(snap.median_degree, Scorer::new(&g).median_degree());
        // Explicit ids override the stem.
        reg.load(&path, Some("alias")).unwrap();
        assert!(reg.get("alias").is_some());
        assert_eq!(reg.snapshots().len(), 2);
    }

    #[test]
    fn missing_file_is_a_rendered_error() {
        let mut reg = SnapshotRegistry::new();
        let err = reg.load("/definitely/not/here.cks", None).unwrap_err();
        assert!(err.contains("here.cks"), "{err}");
    }

    #[test]
    fn replace_swaps_only_the_matching_id() {
        let mut reg = SnapshotRegistry::new();
        reg.insert("a", tiny_graph(), Vec::new()).unwrap();
        reg.insert("b", tiny_graph(), Vec::new()).unwrap();
        let old = reg.get("a").unwrap();
        let fresh = Arc::new(LoadedSnapshot {
            id: "a".to_string(),
            path: old.path.clone(),
            graph: Graph::from_edges(false, [(0u32, 1u32)]),
            groups: Vec::new(),
            median_degree: 1.0,
            shard: None,
            version: 3,
        });
        reg.replace(Arc::clone(&fresh));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a").unwrap().version, 3);
        assert_eq!(reg.get("b").unwrap().version, 0);
        // The superseded Arc stays usable for in-flight work.
        assert_eq!(old.version, 0);
        assert_eq!(old.graph.node_count(), 4);
    }
}
