//! Primary → replica WAL shipping.
//!
//! A replica daemon (started with a `replica_of` primary address) runs
//! one **tail thread** per file-backed snapshot. The thread connects to
//! the primary, sends a `replicate` subscribe request carrying the CRC
//! of its own base snapshot file and the WAL offset it has already
//! applied, and then receives **batch** messages on the same connection:
//! raw CKW1 record frames, hex-encoded, exactly as they sit in the
//! primary's WAL. The replica validates each batch as a whole, applies
//! it through [`LiveSnapshot::apply_replicated`] (which appends the
//! bytes verbatim to the replica's own WAL), and acknowledges the new
//! offset — so at every acked offset the replica's WAL is a
//! byte-identical prefix of the primary's, and its scores are
//! byte-identical to the primary's at that offset.
//!
//! On the primary, the connection handler that parsed the `replicate`
//! request turns into a **subscription loop**: replay from the
//! subscriber's offset, then tail live batches, waiting for each ack
//! before shipping the next batch. A base-CRC mismatch (different
//! snapshot file, or a compaction that rewrote the base mid-stream) is
//! answered with a typed `replication-mismatch` error and a close —
//! never with frames from a different history.
//!
//! Failure handling is crash-first: a replica killed at any point
//! restarts, replays its own WAL, and resubscribes from its recovered
//! offset; the primary replays the missing tail. The deterministic
//! chaos hooks ([`ReplCrashPoint`], [`FaultPlan`]) let tests and CI
//! exercise exactly those windows.
//!
//! [`LiveSnapshot::apply_replicated`]: circlekit_live::LiveSnapshot::apply_replicated

use crate::protocol::{
    error_payload, from_hex, ok_payload, read_frame_patiently, to_hex, wire, write_frame,
    ErrorKind, FrameError, Request,
};
use crate::server::{live_state, Shared, POLL_INTERVAL};
use crate::stats::ServeStats;
use serde_json::Value;
use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a replica waits for its subscribe handshake to be answered.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-attempt connect timeout of the replica tail thread.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Ceiling of the tail thread's reconnect backoff.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Where to simulate a SIGKILL inside the replication path — the process
/// exits with status 137 at the chosen point, leaving every file exactly
/// as a real kill would. The same CLI flag serves both roles: the first
/// point fires on the primary, the rest on the replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplCrashPoint {
    /// Primary: after a batch is committed locally and selected for
    /// shipping, before any byte of it is written to the subscriber.
    FrameSend,
    /// Replica: after a batch is fully received and decoded, before any
    /// of it is applied.
    FrameReceive,
    /// Replica: after the batch is applied and appended to the replica
    /// WAL, before the ack is sent.
    PreAck,
    /// Replica: after the ack is sent.
    PostAck,
}

impl ReplCrashPoint {
    /// Parses the `--repl-crash-point` CLI value.
    pub fn from_name(name: &str) -> Option<ReplCrashPoint> {
        match name {
            "frame-send" => Some(ReplCrashPoint::FrameSend),
            "frame-receive" => Some(ReplCrashPoint::FrameReceive),
            "pre-ack" => Some(ReplCrashPoint::PreAck),
            "post-ack" => Some(ReplCrashPoint::PostAck),
            _ => None,
        }
    }

    fn fire(self, want: Option<ReplCrashPoint>) {
        if want == Some(self) {
            // The SIGKILL exit status: indistinguishable from a real
            // kill -9 for everything downstream.
            std::process::exit(137);
        }
    }
}

/// Injected network faults, enforced only when the `fault-inject`
/// feature is compiled in; without it the plan is carried but inert, so
/// production builds cannot be misconfigured into failing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Primary: abruptly drop each replication subscription after this
    /// many shipped batches (an injected connection reset).
    pub reset_subscription_after: Option<u64>,
    /// Primary: stall this long before sending each batch (an injected
    /// network stall; lets tests observe the unacked window).
    pub stall_before_send_ms: Option<u64>,
}

/// Live replication bookkeeping, reported by the `repl_status` op.
#[derive(Default)]
pub(crate) struct ReplRegistry {
    next_subscriber: u64,
    /// Primary side: one entry per live subscription connection.
    pub(crate) subscribers: HashMap<u64, SubscriberEntry>,
    /// Replica side: one entry per tailed snapshot.
    pub(crate) replicas: HashMap<String, ReplicaEntry>,
}

/// One subscriber's stream position, as the primary sees it.
pub(crate) struct SubscriberEntry {
    pub(crate) snapshot: String,
    pub(crate) sent_offset: u64,
    pub(crate) acked_offset: u64,
}

/// One tailed snapshot's position, as the replica sees it.
#[derive(Clone, Default)]
pub(crate) struct ReplicaEntry {
    pub(crate) connected: bool,
    pub(crate) applied_offset: u64,
    /// The primary's committed offset as of the last message seen.
    pub(crate) primary_offset: u64,
    pub(crate) last_error: Option<String>,
}

// ---------------------------------------------------------------------
// Primary side: the subscription loop a `replicate` request turns into
// ---------------------------------------------------------------------

/// Serves one replication subscription until the subscriber disconnects,
/// the histories diverge, or the server drains. Takes over the
/// connection: no other request is answered on it afterwards.
pub(crate) fn serve_subscription(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    snapshot_id: &str,
    sub_crc: u32,
    sub_offset: u64,
) {
    let refuse = |stream: &mut TcpStream, kind: ErrorKind, message: &str| {
        let _ = write_frame(stream, &error_payload(kind, message));
    };
    if shared.config.replica_of.is_some() {
        return refuse(
            stream,
            ErrorKind::NotPrimary,
            "this server is a replica; subscribe to its primary instead",
        );
    }
    let Some(snap) = shared.registry.get(snapshot_id) else {
        return refuse(stream, ErrorKind::NotFound, &format!("unknown snapshot {snapshot_id:?}"));
    };
    if snap.path == "<memory>" {
        return refuse(
            stream,
            ErrorKind::BadRequest,
            &format!("snapshot {snapshot_id:?} is in-memory and has no WAL to replicate"),
        );
    }

    // Validate the handshake under the live lock, then answer it.
    let committed = {
        let mut states = shared.live.lock().expect("live state lock");
        let state = match live_state(&mut states, shared, snapshot_id) {
            Ok(state) => state,
            Err((kind, message)) => return refuse(stream, kind, &message),
        };
        if state.live.base_crc() != sub_crc {
            return refuse(
                stream,
                ErrorKind::ReplicationMismatch,
                &format!(
                    "base snapshot crc mismatch: primary {:#010x}, subscriber {sub_crc:#010x}",
                    state.live.base_crc()
                ),
            );
        }
        if let Err(e) = state.live.replication_frames_from(sub_offset) {
            return refuse(
                stream,
                ErrorKind::ReplicationMismatch,
                &format!("cannot resume from offset {sub_offset}: {e}"),
            );
        }
        state.live.wal_offset()
    };
    if write_frame(
        stream,
        &ok_payload(vec![
            ("op".to_string(), Value::Str("replicate".to_string())),
            ("snapshot".to_string(), Value::Str(snapshot_id.to_string())),
            ("committed_offset".to_string(), Value::UInt(committed)),
        ]),
    )
    .is_err()
    {
        return;
    }

    let guard = SubscriberGuard::register(shared, snapshot_id, sub_offset);
    let mut sent_offset = sub_offset;
    let mut batches_sent = 0u64;
    loop {
        if shared.shutting_down() {
            return refuse(stream, ErrorKind::ShuttingDown, "server is draining");
        }
        // Read the committed tail under the lock, ship it outside.
        let (frames, committed) = {
            let mut states = shared.live.lock().expect("live state lock");
            let state = match live_state(&mut states, shared, snapshot_id) {
                Ok(state) => state,
                Err((kind, message)) => return refuse(stream, kind, &message),
            };
            if state.live.base_crc() != sub_crc {
                return refuse(
                    stream,
                    ErrorKind::ReplicationMismatch,
                    "base snapshot was compacted mid-stream; resubscribe from the new base",
                );
            }
            match state.live.replication_frames_from(sent_offset) {
                Ok(frames) => (frames, state.live.wal_offset()),
                Err(e) => {
                    return refuse(
                        stream,
                        ErrorKind::ReplicationMismatch,
                        &format!("cannot read frames from offset {sent_offset}: {e}"),
                    )
                }
            }
        };
        if frames.is_empty() {
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }

        #[cfg(feature = "fault-inject")]
        {
            if let Some(ms) = shared.config.fault.stall_before_send_ms {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if let Some(after) = shared.config.fault.reset_subscription_after {
                if batches_sent >= after {
                    // Injected reset: drop the connection mid-stream
                    // without any protocol goodbye.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
        ReplCrashPoint::FrameSend.fire(shared.config.repl_crash_point);

        let next_offset = sent_offset + frames.len() as u64;
        let batch = ok_payload(vec![
            ("op".to_string(), Value::Str("repl_batch".to_string())),
            ("snapshot".to_string(), Value::Str(snapshot_id.to_string())),
            ("offset".to_string(), Value::UInt(sent_offset)),
            ("next_offset".to_string(), Value::UInt(next_offset)),
            ("committed_offset".to_string(), Value::UInt(committed)),
            ("frames".to_string(), Value::Str(to_hex(&frames))),
        ]);
        if write_frame(stream, &batch).is_err() {
            return;
        }
        ServeStats::bump(&shared.stats.repl_batches_sent);
        ServeStats::add(&shared.stats.repl_bytes_sent, frames.len() as u64);
        sent_offset = next_offset;
        batches_sent += 1;
        let _ = batches_sent; // read only under fault-inject
        guard.record(|entry| entry.sent_offset = next_offset);

        // Wait for the ack before shipping more: simple, lossless flow
        // control — the unacked window is exactly one batch.
        let ack = read_frame_patiently(stream, |_| !shared.shutting_down());
        match ack {
            Ok(Some(payload)) => match Request::parse(&payload) {
                Ok(Request::ReplAck { offset }) => {
                    guard.record(|entry| entry.acked_offset = offset);
                }
                _ => {
                    return refuse(
                        stream,
                        ErrorKind::BadRequest,
                        "expected a repl_ack on the subscription connection",
                    )
                }
            },
            // Shutdown while waiting, or the subscriber went away.
            Ok(None) | Err(_) => return,
        }
    }
}

/// Registers a subscriber for `repl_status` reporting; deregisters on
/// drop, however the subscription loop exits.
struct SubscriberGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl SubscriberGuard {
    fn register(shared: &Arc<Shared>, snapshot: &str, offset: u64) -> SubscriberGuard {
        let mut repl = shared.repl.lock().expect("repl registry lock");
        let id = repl.next_subscriber;
        repl.next_subscriber += 1;
        repl.subscribers.insert(
            id,
            SubscriberEntry {
                snapshot: snapshot.to_string(),
                sent_offset: offset,
                acked_offset: offset,
            },
        );
        SubscriberGuard { shared: Arc::clone(shared), id }
    }

    fn record(&self, update: impl FnOnce(&mut SubscriberEntry)) {
        let mut repl = self.shared.repl.lock().expect("repl registry lock");
        if let Some(entry) = repl.subscribers.get_mut(&self.id) {
            update(entry);
        }
    }
}

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        self.shared.repl.lock().expect("repl registry lock").subscribers.remove(&self.id);
    }
}

// ---------------------------------------------------------------------
// Replica side: tail threads
// ---------------------------------------------------------------------

/// Spawns one tail thread per file-backed snapshot, each keeping its
/// snapshot caught up with `primary`. Threads exit when the shared
/// shutdown flag rises.
pub(crate) fn spawn_replica_tails(shared: &Arc<Shared>, primary: &str) -> Vec<JoinHandle<()>> {
    shared
        .registry
        .snapshots()
        .iter()
        .filter(|snap| snap.path != "<memory>")
        .map(|snap| {
            let shared = Arc::clone(shared);
            let primary = primary.to_string();
            let id = snap.id.clone();
            std::thread::Builder::new()
                .name(format!("ck-serve-repl-{id}"))
                .spawn(move || replica_tail_loop(&shared, &id, &primary))
                .expect("spawn replica tail thread")
        })
        .collect()
}

fn replica_tail_loop(shared: &Arc<Shared>, snapshot_id: &str, primary: &str) {
    let mut failures = 0u32;
    loop {
        if shared.shutting_down() {
            return;
        }
        match tail_once(shared, snapshot_id, primary) {
            Ok(()) => return, // clean shutdown observed inside
            Err(why) => {
                record_replica(shared, snapshot_id, |entry| {
                    entry.connected = false;
                    entry.last_error = Some(why.clone());
                });
                failures += 1;
            }
        }
        // Capped exponential backoff between reconnect attempts; the
        // poll below keeps shutdown responsive through long waits.
        let backoff = POLL_INTERVAL
            .saturating_mul(1u32 << failures.min(5))
            .min(MAX_BACKOFF);
        let deadline = Instant::now() + backoff;
        while Instant::now() < deadline {
            if shared.shutting_down() {
                return;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// One subscription attempt: connect, handshake, apply batches until the
/// connection ends. `Ok(())` means shutdown was observed (exit the tail
/// loop); `Err` describes why the subscription ended and asks for a
/// reconnect.
fn tail_once(shared: &Arc<Shared>, snapshot_id: &str, primary: &str) -> Result<(), String> {
    let mut stream =
        connect_with_timeout(primary, CONNECT_TIMEOUT).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(|e| format!("set_read_timeout: {e}"))?;

    // Recover this snapshot's durable position: the replica's own base
    // CRC and replayed WAL offset are the subscribe handshake.
    let (base_crc, applied_offset) = {
        let mut states = shared.live.lock().expect("live state lock");
        let state = live_state(&mut states, shared, snapshot_id)
            .map_err(|(_, message)| format!("open live state: {message}"))?;
        (state.live.base_crc(), state.live.wal_offset())
    };
    record_replica(shared, snapshot_id, |entry| entry.applied_offset = applied_offset);

    let subscribe = Value::Map(vec![
        ("op".to_string(), Value::Str("replicate".to_string())),
        ("snapshot".to_string(), Value::Str(snapshot_id.to_string())),
        ("base_crc".to_string(), Value::UInt(u64::from(base_crc))),
        ("wal_offset".to_string(), Value::UInt(applied_offset)),
    ]);
    write_frame(&mut stream, &subscribe.to_string()).map_err(|e| format!("subscribe: {e}"))?;

    let started = Instant::now();
    let handshake = read_timeout_frame(&mut stream, shared, || {
        started.elapsed() < HANDSHAKE_TIMEOUT
    })?;
    let Some(handshake) = handshake else {
        return Ok(()); // shutdown while waiting
    };
    let value = parse_ok(&handshake)?;
    let primary_offset = wire::get_u64_opt(&value, "committed_offset")
        .ok()
        .flatten()
        .ok_or("handshake lacks committed_offset")?;
    ServeStats::bump(&shared.stats.repl_connects);
    record_replica(shared, snapshot_id, |entry| {
        entry.connected = true;
        entry.primary_offset = primary_offset;
        entry.last_error = None;
    });

    loop {
        let Some(payload) = read_timeout_frame(&mut stream, shared, || true)? else {
            return Ok(()); // shutdown while tailing
        };
        let value = parse_ok(&payload)?;
        let offset = wire::get_u64_opt(&value, "offset")
            .ok()
            .flatten()
            .ok_or("batch lacks offset")?;
        let committed = wire::get_u64_opt(&value, "committed_offset")
            .ok()
            .flatten()
            .ok_or("batch lacks committed_offset")?;
        let Some(Value::Str(hex)) = wire::get(&value, "frames") else {
            return Err("batch lacks frames".to_string());
        };
        let frames = from_hex(hex).ok_or("batch frames are not valid hex")?;

        ReplCrashPoint::FrameReceive.fire(shared.config.repl_crash_point);

        let applied = {
            let mut states = shared.live.lock().expect("live state lock");
            let state = live_state(&mut states, shared, snapshot_id)
                .map_err(|(_, message)| format!("open live state: {message}"))?;
            if state.live.wal_offset() != offset {
                return Err(format!(
                    "batch starts at offset {offset} but replica is at {}",
                    state.live.wal_offset()
                ));
            }
            state
                .live
                .apply_replicated(&frames)
                .map_err(|e| format!("apply replicated batch: {e}"))?;
            state.version += 1;
            let version = state.version;
            let applied = state.live.wal_offset();
            drop(states);
            shared
                .cache
                .lock()
                .expect("cache lock")
                .invalidate_stale(snapshot_id, version);
            applied
        };
        ServeStats::bump(&shared.stats.repl_batches_applied);
        record_replica(shared, snapshot_id, |entry| {
            entry.applied_offset = applied;
            entry.primary_offset = committed.max(applied);
        });

        ReplCrashPoint::PreAck.fire(shared.config.repl_crash_point);
        let ack = Value::Map(vec![
            ("op".to_string(), Value::Str("repl_ack".to_string())),
            ("offset".to_string(), Value::UInt(applied)),
        ]);
        write_frame(&mut stream, &ack.to_string()).map_err(|e| format!("ack: {e}"))?;
        ReplCrashPoint::PostAck.fire(shared.config.repl_crash_point);
    }
}

/// Reads one frame, polling the shutdown flag between socket timeouts.
/// `Ok(None)` means shutdown; `Err` is a transport or deadline failure.
fn read_timeout_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    mut keep: impl FnMut() -> bool,
) -> Result<Option<String>, String> {
    let mut expired = false;
    let outcome = read_frame_patiently(stream, |_| {
        if shared.shutting_down() {
            return false;
        }
        if !keep() {
            expired = true;
            return false;
        }
        true
    });
    match outcome {
        Ok(Some(payload)) => Ok(Some(payload)),
        Ok(None) if expired => Err("timed out waiting for the primary".to_string()),
        Ok(None) => Ok(None),
        Err(FrameError::Closed) => Err("connection closed by the primary".to_string()),
        Err(e) => Err(format!("read: {e}")),
    }
}

/// Unwraps an `ok:true` response into its JSON value; renders `ok:false`
/// (and anything malformed) as the error string of the attempt.
fn parse_ok(payload: &str) -> Result<Value, String> {
    let value: Value =
        serde_json::from_str(payload).map_err(|e| format!("response is not JSON: {e}"))?;
    match wire::get(&value, "ok") {
        Some(Value::Bool(true)) => Ok(value),
        Some(Value::Bool(false)) => {
            let error = wire::get(&value, "error");
            let kind = error
                .and_then(|e| wire::get(e, "kind"))
                .and_then(|k| match k {
                    Value::Str(name) => Some(name.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "internal".to_string());
            let message = error
                .and_then(|e| wire::get(e, "message"))
                .and_then(|m| match m {
                    Value::Str(m) => Some(m.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            Err(format!("primary refused: {kind}: {message}"))
        }
        _ => Err("response lacks a boolean ok field".to_string()),
    }
}

fn record_replica(shared: &Shared, snapshot_id: &str, update: impl FnOnce(&mut ReplicaEntry)) {
    let mut repl = shared.repl.lock().expect("repl registry lock");
    update(repl.replicas.entry(snapshot_id.to_string()).or_default());
}

fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::other(format!("no addresses resolved for {addr:?}"));
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

// ---------------------------------------------------------------------
// Status: the `repl_status` op, answered inline on either role
// ---------------------------------------------------------------------

/// Builds the `repl_status` response fields.
pub(crate) fn status_fields(shared: &Shared) -> Vec<(String, Value)> {
    let role = if shared.config.replica_of.is_some() { "replica" } else { "primary" };
    let mut fields = vec![("role".to_string(), Value::Str(role.to_string()))];
    if let Some(primary) = &shared.config.replica_of {
        fields.push(("primary".to_string(), Value::Str(primary.clone())));
    }

    // Per-snapshot stream positions. Only snapshots with live state have
    // a WAL position; the file CRC is read fresh from disk so the two
    // roles can be compared byte-for-byte without shipping the files.
    let mut snapshots = Vec::new();
    {
        let states = shared.live.lock().expect("live state lock");
        for snap in shared.registry.snapshots() {
            if snap.path == "<memory>" {
                continue;
            }
            let (committed, records) = states
                .get(&snap.id)
                .map_or((0, 0), |s| (s.live.wal_offset(), s.live.wal_records() as u64));
            let file_crc = circlekit_store::file_crc32(Path::new(&snap.path))
                .map_or(Value::Null, |crc| Value::UInt(u64::from(crc)));
            snapshots.push(Value::Map(vec![
                ("snapshot".to_string(), Value::Str(snap.id.clone())),
                ("committed_offset".to_string(), Value::UInt(committed)),
                ("wal_records".to_string(), Value::UInt(records)),
                ("file_crc32".to_string(), file_crc),
            ]));
        }
    }
    fields.push(("snapshots".to_string(), Value::Seq(snapshots)));

    let repl = shared.repl.lock().expect("repl registry lock");
    if role == "primary" {
        let subscribers: Vec<Value> = repl
            .subscribers
            .values()
            .map(|s| {
                Value::Map(vec![
                    ("snapshot".to_string(), Value::Str(s.snapshot.clone())),
                    ("sent_offset".to_string(), Value::UInt(s.sent_offset)),
                    ("acked_offset".to_string(), Value::UInt(s.acked_offset)),
                ])
            })
            .collect();
        fields.push(("subscribers".to_string(), Value::Seq(subscribers)));
    } else {
        let mut entries: Vec<(&String, &ReplicaEntry)> = repl.replicas.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let replication: Vec<Value> = entries
            .into_iter()
            .map(|(id, e)| {
                let caught_up = e.connected && e.applied_offset >= e.primary_offset;
                Value::Map(vec![
                    ("snapshot".to_string(), Value::Str(id.clone())),
                    ("connected".to_string(), Value::Bool(e.connected)),
                    ("applied_offset".to_string(), Value::UInt(e.applied_offset)),
                    ("primary_offset".to_string(), Value::UInt(e.primary_offset)),
                    ("caught_up".to_string(), Value::Bool(caught_up)),
                    (
                        "last_error".to_string(),
                        e.last_error.clone().map_or(Value::Null, Value::Str),
                    ),
                ])
            })
            .collect();
        fields.push(("replication".to_string(), Value::Seq(replication)));
    }
    fields
}
