//! [`SuggestCache`]: an LRU cache for served circle suggestions, with
//! per-ego invalidation.
//!
//! `suggest_circles` is deterministic — `(snapshot graph, ego, seed,
//! min_size, top)` always produces the same ranked candidates — so whole
//! [`Suggestion`]s can be cached and replayed. Unlike score-cache entries,
//! a suggestion does not go stale on *every* mutation: an edge mutation
//! `{u, v}` can only change the suggestions of the egos named by
//! [`circlekit_discover::affected_egos`] (the endpoints plus every ego
//! watching both). The commit path therefore evicts exactly those egos'
//! entries and *revalidates* the rest — their stored version is advanced
//! to the post-commit version, so they keep hitting without recompute.
//!
//! Entries also carry the materialization version they were computed
//! against, probed with compare-on-get exactly like [`crate::ScoreCache`]:
//! a slow discovery job inserting after a commit lands with a superseded
//! version and can never be served. Compaction does not bump the version
//! (the composed graph is unchanged), so suggestions survive it — the
//! CLI-vs-serve byte-equality CI check exercises that path.

use crate::cache::CacheStats;
use circlekit_discover::Suggestion;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Identifies one cached suggestion. Every parameter that changes the
/// answer is part of the key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SuggestKey {
    /// Snapshot id the ego belongs to.
    pub snapshot: String,
    /// The ego queried.
    pub ego: u32,
    /// Root seed of the tie-break streams.
    pub seed: u64,
    /// Smallest candidate returned.
    pub min_size: usize,
    /// Ranked candidates returned (0 = all).
    pub top: usize,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    suggestion: Arc<Suggestion>,
    stamp: u64,
}

/// Least-recently-used map from [`SuggestKey`] to a whole suggestion.
#[derive(Debug)]
pub struct SuggestCache {
    capacity: usize,
    entries: HashMap<SuggestKey, Entry>,
    by_stamp: BTreeMap<u64, SuggestKey>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl SuggestCache {
    /// Creates a cache holding at most `capacity` suggestions. Capacity 0
    /// disables caching.
    pub fn new(capacity: usize) -> SuggestCache {
        SuggestCache {
            capacity,
            entries: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks `key` up at `current_version`, refreshing recency on a hit.
    /// An entry computed against a superseded version is purged (a slow
    /// insert racing a commit) and reported as a miss.
    pub fn get(&mut self, key: &SuggestKey, current_version: u64) -> Option<Arc<Suggestion>> {
        match self.entries.get_mut(key) {
            None => {
                self.misses += 1;
                None
            }
            Some(entry) if entry.version != current_version => {
                let stamp = entry.stamp;
                self.by_stamp.remove(&stamp).expect("stamp index in sync");
                self.entries.remove(key);
                self.invalidations += 1;
                self.misses += 1;
                None
            }
            Some(entry) => {
                self.hits += 1;
                let old = entry.stamp;
                entry.stamp = self.next_stamp;
                self.next_stamp += 1;
                let suggestion = Arc::clone(&entry.suggestion);
                let moved = self.by_stamp.remove(&old).expect("stamp index in sync");
                self.by_stamp.insert(self.next_stamp - 1, moved);
                Some(suggestion)
            }
        }
    }

    /// Inserts (or refreshes) `key` as computed against `version`,
    /// evicting the least recently used entry when full.
    pub fn insert(&mut self, key: SuggestKey, version: u64, suggestion: Arc<Suggestion>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(old) = self.entries.insert(key.clone(), Entry { version, suggestion, stamp })
        {
            self.by_stamp.remove(&old.stamp);
        } else if self.entries.len() > self.capacity {
            let (&oldest, _) = self.by_stamp.iter().next().expect("non-empty index");
            let victim = self.by_stamp.remove(&oldest).expect("stamp index in sync");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.by_stamp.insert(stamp, key);
    }

    /// Purges every entry of `snapshot` whose ego appears in `egos`
    /// (sorted ascending) — the commit-time invalidation scope of one
    /// mutation batch. Returns how many entries were removed.
    pub fn invalidate_egos(&mut self, snapshot: &str, egos: &[u32]) -> u64 {
        let doomed: Vec<u64> = self
            .by_stamp
            .iter()
            .filter(|(_, key)| key.snapshot == snapshot && egos.binary_search(&key.ego).is_ok())
            .map(|(&stamp, _)| stamp)
            .collect();
        for stamp in &doomed {
            let key = self.by_stamp.remove(stamp).expect("stamp index in sync");
            self.entries.remove(&key);
        }
        self.invalidations += doomed.len() as u64;
        doomed.len() as u64
    }

    /// Advances surviving entries of `snapshot` from `old_version` to
    /// `new_version`: a commit that provably did not touch their egos must
    /// not force a recompute. Entries at other (superseded) versions are
    /// left behind to die on their next probe.
    pub fn revalidate(&mut self, snapshot: &str, old_version: u64, new_version: u64) {
        for (key, entry) in self.entries.iter_mut() {
            if key.snapshot == snapshot && entry.version == old_version {
                entry.version = new_version;
            }
        }
    }

    /// Current counters (same shape as the score cache's).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_discover::Suggestion;

    fn suggestion(ego: u32) -> Arc<Suggestion> {
        Arc::new(Suggestion { ego, seed: 2014, alters: 0, candidates: Vec::new() })
    }

    fn key(ego: u32) -> SuggestKey {
        SuggestKey { snapshot: "gp".to_string(), ego, seed: 2014, min_size: 3, top: 10 }
    }

    #[test]
    fn hit_requires_matching_version() {
        let mut cache = SuggestCache::new(4);
        cache.insert(key(1), 0, suggestion(1));
        assert!(cache.get(&key(1), 0).is_some());
        assert!(cache.get(&key(1), 1).is_none(), "superseded version must miss");
        assert!(cache.get(&key(1), 0).is_none(), "stale entry purged on probe");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn per_ego_invalidation_spares_other_egos() {
        let mut cache = SuggestCache::new(8);
        for ego in [1, 2, 3] {
            cache.insert(key(ego), 0, suggestion(ego));
        }
        assert_eq!(cache.invalidate_egos("gp", &[1, 3]), 2);
        cache.revalidate("gp", 0, 1);
        assert!(cache.get(&key(1), 1).is_none());
        assert!(cache.get(&key(3), 1).is_none());
        assert!(cache.get(&key(2), 1).is_some(), "untouched ego still hits after commit");
    }

    #[test]
    fn revalidation_skips_superseded_entries() {
        let mut cache = SuggestCache::new(8);
        cache.insert(key(1), 0, suggestion(1));
        // A slow job inserts against version 0 after version moved to 1.
        cache.insert(key(2), 0, suggestion(2));
        cache.revalidate("gp", 1, 2);
        assert!(cache.get(&key(1), 2).is_none(), "version-0 entry never revalidates to 2");
        assert!(cache.get(&key(2), 2).is_none());
    }

    #[test]
    fn lru_eviction_and_key_separation() {
        let mut cache = SuggestCache::new(2);
        cache.insert(key(1), 0, suggestion(1));
        cache.insert(key(2), 0, suggestion(2));
        assert!(cache.get(&key(1), 0).is_some());
        cache.insert(key(3), 0, suggestion(3));
        assert!(cache.get(&key(2), 0).is_none(), "LRU victim");
        assert_eq!(cache.stats().evictions, 1);
        // Different seed is a different key.
        let reseeded = SuggestKey { seed: 7, ..key(1) };
        assert!(cache.get(&reseeded, 0).is_none());
    }

    #[test]
    fn invalidation_for_other_snapshot_is_inert() {
        let mut cache = SuggestCache::new(4);
        cache.insert(key(1), 0, suggestion(1));
        assert_eq!(cache.invalidate_egos("lj", &[1]), 0);
        assert!(cache.get(&key(1), 0).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SuggestCache::new(0);
        cache.insert(key(1), 0, suggestion(1));
        assert!(cache.get(&key(1), 0).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
