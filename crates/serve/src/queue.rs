//! [`BoundedQueue`]: the service's explicit backpressure point.
//!
//! Connection handlers `try_push` work items; when the queue is at
//! capacity the push fails *immediately* and the handler answers with a
//! typed `overloaded` response — the service never buffers without bound
//! and clients learn about saturation synchronously instead of through
//! timeouts. Workers block on [`BoundedQueue::pop`], which also lets them
//! peek-drain compatible follow-up items for micro-batching
//! ([`BoundedQueue::pop_batch`]).
//!
//! Closing the queue ([`BoundedQueue::close`]) wakes every blocked worker
//! but keeps already-queued items poppable, so a graceful drain is
//! exactly: close, then pop until `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the caller should report overload.
    Full,
    /// The queue was closed — the service is draining.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is returned to the caller inside
    /// the error-free path only.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work, ever".
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Like [`BoundedQueue::pop`], but after the first item greedily pops
    /// up to `max - 1` further items *from the front* as long as
    /// `compatible(first, candidate)` holds — the micro-batching
    /// primitive. Incompatible items stay queued in order.
    pub fn pop_batch<F>(&self, max: usize, compatible: F) -> Vec<T>
    where
        F: Fn(&T, &T) -> bool,
    {
        let Some(first) = self.pop() else {
            return Vec::new();
        };
        let mut batch = vec![first];
        if max <= 1 {
            return batch;
        }
        let mut state = self.state.lock().expect("queue lock");
        while batch.len() < max {
            match state.items.front() {
                Some(candidate) if compatible(&batch[0], candidate) => {
                    let item = state.items.pop_front().expect("front exists");
                    batch.push(item);
                }
                _ => break,
            }
        }
        batch
    }

    /// Closes the queue: future pushes fail, blocked poppers wake, queued
    /// items remain poppable until drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_beyond_capacity_reports_overload() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn pop_batch_coalesces_compatible_front_items() {
        let q = BoundedQueue::new(8);
        for item in [10, 12, 14, 15, 16] {
            q.try_push(item).unwrap();
        }
        // Even items batch together; 15 stops the drain.
        let batch = q.pop_batch(8, |a, b| a % 2 == b % 2);
        assert_eq!(batch, vec![10, 12, 14]);
        assert_eq!(q.pop(), Some(15));
        assert_eq!(q.pop(), Some(16));
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        for item in 0..6 {
            q.try_push(item).unwrap();
        }
        assert_eq!(q.pop_batch(3, |_, _| true), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(1, |_, _| true), vec![3]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
        assert!(!q.is_empty());
    }
}
