//! A failure-handling client over a set of server endpoints.
//!
//! [`FailoverClient`] wraps one [`Client`] per endpoint (primary plus
//! read replicas) and routes calls by their consistency needs:
//!
//! * **Reads** ([`FailoverClient::read`]) try the last-healthy endpoint
//!   first and rotate through the rest on transport failure, timeout, or
//!   a `shutting-down` refusal, sleeping a jittered exponential backoff
//!   between attempts. Replicas serve byte-identical scores at every
//!   acknowledged offset (see [`crate::replication`]), so any endpoint
//!   is a correct read target.
//! * **Writes** ([`FailoverClient::write`]) are routed to the primary
//!   only, located by probing `repl_status` roles. When no reachable
//!   endpoint claims the primary role the write fails fast with a typed
//!   [`ClientError::NoPrimary`] — retrying a mutation against a replica
//!   (or against two servers that both briefly think they lead) is how
//!   split-brain histories are made, so the client refuses to guess.
//!
//! Backoff jitter comes from a seeded SplitMix64 stream, keeping retry
//! schedules reproducible in tests while still decorrelating real
//! clients that share a restart storm.

use crate::client::{Client, ClientError, ClientOptions};
use crate::protocol::{wire, ErrorKind};
use serde_json::Value;
use std::time::Duration;

/// Retry and timeout policy for a [`FailoverClient`].
#[derive(Clone, Copy, Debug)]
pub struct FailoverOptions {
    /// Per-endpoint connection timeout.
    pub connect_timeout: Duration,
    /// Per-call response deadline (see [`Client::set_timeout`]).
    pub read_timeout: Duration,
    /// Total read attempts across all endpoints before giving up.
    pub max_attempts: u32,
    /// First backoff ceiling; doubles per attempt (full jitter).
    pub base_backoff: Duration,
    /// Backoff ceiling cap.
    pub max_backoff: Duration,
    /// Seed of the jitter stream (same seed → same retry schedule).
    pub seed: u64,
    /// Speak CKP1 binary frames on every endpoint connection (see
    /// [`ClientOptions::binary`]).
    pub binary: bool,
}

impl Default for FailoverOptions {
    fn default() -> FailoverOptions {
        FailoverOptions {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            max_attempts: 6,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
            seed: 0x5EED_FA17_04E2,
            binary: false,
        }
    }
}

struct Endpoint {
    addr: String,
    conn: Option<Client>,
}

/// A client that fails reads over across endpoints and routes writes to
/// the primary. See the [module docs](self) for the routing rules.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    options: FailoverOptions,
    /// Index of the endpoint that answered most recently; reads start
    /// here so a healthy endpoint keeps serving without probing.
    preferred: usize,
    rng: u64,
}

impl FailoverClient {
    /// Builds a client over `endpoints` (tried in order until one
    /// answers; at least one is required).
    ///
    /// # Panics
    ///
    /// If `endpoints` is empty.
    pub fn new<S: Into<String>>(
        endpoints: impl IntoIterator<Item = S>,
        options: FailoverOptions,
    ) -> FailoverClient {
        let endpoints: Vec<Endpoint> = endpoints
            .into_iter()
            .map(|addr| Endpoint { addr: addr.into(), conn: None })
            .collect();
        assert!(!endpoints.is_empty(), "failover needs at least one endpoint");
        FailoverClient { endpoints, options, preferred: 0, rng: options.seed }
    }

    /// The configured endpoint addresses, in construction order.
    pub fn endpoints(&self) -> Vec<&str> {
        self.endpoints.iter().map(|e| e.addr.as_str()).collect()
    }

    /// SplitMix64 step — a full 64-bit mix per draw, so even seed 0
    /// produces a usable jitter stream.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Full-jitter backoff: uniform in `[0, min(max, base * 2^attempt)]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let ceiling = self
            .options
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.options.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.next_u64() % (nanos + 1))
    }

    /// The live connection for endpoint `idx`, dialling if needed.
    fn connect(&mut self, idx: usize) -> Result<&mut Client, ClientError> {
        let options = ClientOptions {
            connect_timeout: Some(self.options.connect_timeout),
            read_timeout: Some(self.options.read_timeout),
            binary: self.options.binary,
        };
        let endpoint = &mut self.endpoints[idx];
        if endpoint.conn.is_none() {
            endpoint.conn = Some(Client::connect_with_options(&*endpoint.addr, options)?);
        }
        Ok(endpoint.conn.as_mut().expect("just connected"))
    }

    /// Runs `call` against some healthy endpoint, failing over on
    /// transport errors, timeouts, and `shutting-down` refusals. Other
    /// typed server errors (`not-found`, `bad-request`, …) come back
    /// immediately — every endpoint would refuse identically.
    ///
    /// # Errors
    ///
    /// The last failure once `max_attempts` is exhausted.
    pub fn read<T>(
        &mut self,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.options.max_attempts.max(1) {
            let idx = (self.preferred + attempt as usize) % self.endpoints.len();
            let outcome = self.connect(idx).and_then(&mut call);
            match outcome {
                Ok(value) => {
                    self.preferred = idx;
                    return Ok(value);
                }
                Err(e @ ClientError::Server { .. })
                    if !e.is_kind(ErrorKind::ShuttingDown) =>
                {
                    self.preferred = idx;
                    return Err(e);
                }
                Err(e) => {
                    // The connection may be mid-frame or dead; rebuild.
                    self.endpoints[idx].conn = None;
                    last = Some(e);
                }
            }
            std::thread::sleep(self.backoff(attempt));
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Convenience: a read-path op with fields, via [`Self::read`].
    ///
    /// # Errors
    ///
    /// See [`Self::read`].
    pub fn call_read(
        &mut self,
        op: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        self.read(|client| client.call(op, fields.clone()))
    }

    /// Runs `call` against the primary, located by probing `repl_status`
    /// on each endpoint. No primary reachable → fail fast with
    /// [`ClientError::NoPrimary`]; a write is never retried against an
    /// endpoint that did not claim the primary role.
    ///
    /// # Errors
    ///
    /// `NoPrimary` when no endpoint claims the role, otherwise whatever
    /// the primary answered.
    pub fn write<T>(
        &mut self,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut detail = Vec::new();
        for idx in 0..self.endpoints.len() {
            let addr = self.endpoints[idx].addr.clone();
            let role = self.connect(idx).and_then(|client| {
                let status = client.repl_status()?;
                match wire::get(&status, "role") {
                    Some(Value::Str(role)) => Ok(role.clone()),
                    _ => Err(ClientError::Malformed(
                        "repl_status lacks a role field".to_string(),
                    )),
                }
            });
            match role {
                Ok(role) if role == "primary" => {
                    let outcome =
                        self.connect(idx).and_then(&mut call);
                    if outcome.is_err() {
                        self.endpoints[idx].conn = None;
                    }
                    return outcome;
                }
                Ok(role) => detail.push(format!("{addr}: role {role}")),
                Err(e) => {
                    self.endpoints[idx].conn = None;
                    detail.push(format!("{addr}: {e}"));
                }
            }
        }
        Err(ClientError::NoPrimary { detail: detail.join("; ") })
    }

    /// Convenience: a write-path op with fields, via [`Self::write`].
    ///
    /// # Errors
    ///
    /// See [`Self::write`].
    pub fn call_write(
        &mut self,
        op: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        self.write(|client| client.call(op, fields.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_reproducible() {
        let options = FailoverOptions {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            seed: 7,
            ..FailoverOptions::default()
        };
        let mut a = FailoverClient::new(["127.0.0.1:1"], options);
        let mut b = FailoverClient::new(["127.0.0.1:1"], options);
        let mut saw_nonzero = false;
        for attempt in 0..10 {
            let ceiling = Duration::from_millis(10)
                .saturating_mul(1 << attempt.min(16))
                .min(Duration::from_millis(80));
            let d = a.backoff(attempt);
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            assert_eq!(d, b.backoff(attempt), "same seed, same schedule");
            saw_nonzero |= d > Duration::ZERO;
        }
        assert!(saw_nonzero, "all-zero jitter defeats decorrelation");
    }

    #[test]
    fn unreachable_endpoints_exhaust_attempts_then_surface_the_error() {
        // Port 1 on localhost refuses instantly, so this stays fast.
        let options = FailoverOptions {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(200),
            ..FailoverOptions::default()
        };
        let mut client =
            FailoverClient::new(["127.0.0.1:1", "127.0.0.1:1"], options);
        match client.read(|c| c.health()) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        match client.write(|c| c.health()) {
            Err(ClientError::NoPrimary { detail }) => {
                assert!(detail.contains("127.0.0.1:1"), "detail: {detail}");
            }
            other => panic!("expected NoPrimary, got {other:?}"),
        }
    }
}
