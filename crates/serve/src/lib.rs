//! `circlekit-serve`: a concurrent scoring service over shared snapshots.
//!
//! The offline pipeline (`pack` → `score`) re-loads and re-prepares a
//! graph for every invocation. This crate keeps CKS1 snapshots resident —
//! loaded once through the zero-copy path and shared read-only across a
//! worker pool — and answers scoring queries over a small TCP protocol:
//!
//! * **Framing** ([`protocol`]): 4-byte big-endian length + UTF-8 JSON,
//!   with typed error kinds and a hard frame-size ceiling.
//! * **Backpressure** ([`queue`]): a bounded queue between connection
//!   handlers and scoring workers; saturation is answered synchronously
//!   with an `overloaded` response instead of unbounded buffering.
//! * **Micro-batching** ([`server`]): queued same-snapshot scoring jobs
//!   are coalesced and evaluated in one [`ParallelScorer`] pass.
//! * **Caching** ([`cache`]): an LRU keyed by (snapshot, function, set
//!   digest) replays deterministic scores bit-exactly.
//! * **Live mutations** ([`server`]): `apply_mutations` commits
//!   WAL-backed graph deltas through the same bounded queue, bumping the
//!   snapshot's materialization version and invalidating the cached
//!   scores it touched; `watch_scores` reads the paper's four scores
//!   O(1) from the incrementally maintained aggregates; `compact` folds
//!   the WAL back into the CKS1 file. Adjacent `.ckw` logs are replayed
//!   at startup, so a crash between batches loses nothing.
//! * **Deadlines**: per-request `deadline_ms` rides the workspace's
//!   `RunControl`; expired work is refused, not half-done.
//! * **Determinism**: served scores are bit-identical to the offline
//!   `score` CLI (same median-degree precomputation, lossless `f64` JSON
//!   round-trip), and `baseline` uses seeded per-walk RNG streams.
//! * **Graceful shutdown** ([`signal`]): SIGINT, SIGTERM, or the
//!   `shutdown` op drains queued work before the process exits.
//! * **Replication** ([`replication`]): a primary streams committed WAL
//!   frames to read replicas over the same wire protocol; replicas apply
//!   them through the identical [`circlekit_live::LiveSnapshot`] path,
//!   so replica scores are byte-identical at every acknowledged offset.
//!   Writes on a replica are refused with a typed `not-primary` error.
//! * **Failover** ([`failover`]): a multi-endpoint client that health-
//!   probes, retries with jittered exponential backoff, and fails reads
//!   over to replicas while writes fail fast without a primary.
//! * **Sharding** ([`coordinator`]): a stateless coordinator scatter-
//!   gathers raw partial statistics (`shard_stats`) from a fleet of
//!   vertex-partitioned shard processes and reduces them to the exact
//!   global `SetStats`, answering the ordinary scoring ops bit-
//!   identically to a single-node server; a shard that cannot answer
//!   turns the request into a typed `shard-unavailable` refusal, never
//!   a silently partial score.
//!
//! [`ParallelScorer`]: circlekit_scoring::ParallelScorer

#![warn(missing_docs)]

pub mod binary;
pub mod cache;
pub mod client;
pub mod coordinator;
pub(crate) mod event_loop;
pub mod failover;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod replication;
pub mod server;
pub mod signal;
pub mod stats;
pub mod suggest;

pub use cache::{CacheKey, CacheStats, ScoreCache};
pub use circlekit_live::Mutation;
pub use client::{Client, ClientError, ClientOptions};
pub use coordinator::{CoordinatorConfig, DEFAULT_SHARD_DEADLINE_MS};
pub use failover::{FailoverClient, FailoverOptions};
pub use protocol::{
    error_payload, from_hex, ok_payload, read_frame, read_frame_patiently, set_digest, to_hex,
    write_frame, ErrorKind, FrameError, Request, RequestError, DEFAULT_BASELINE_SAMPLES,
    MAX_FRAME_LEN,
};
pub use queue::{BoundedQueue, PushError};
pub use registry::{LoadedSnapshot, SnapshotRegistry};
pub use replication::{FaultPlan, ReplCrashPoint};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use stats::{ServeStats, StatsSnapshot};
pub use suggest::{SuggestCache, SuggestKey};
