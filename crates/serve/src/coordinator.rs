//! Scatter-gather coordination over a fleet of shard processes.
//!
//! A coordinator is a stateless front-end to `N` shard servers, each of
//! which serves one vertex-partitioned sub-snapshot (packed with
//! `pack --shard N --shard-index i`). It speaks the same wire protocol
//! as a single-node server, so clients are unchanged:
//!
//! * **Scoring** (`score_group`, `score_set`, `watch_scores`): the
//!   request's vertex set is broadcast to every shard as a `shard_stats`
//!   op, the raw partial [`SetStats`] terms come back, and
//!   [`circlekit_shard::reduce_partials`] folds them into the exact
//!   global statistics — bit-identical to single-node scoring, because
//!   the reduction replays the sequential fold order (see the shard
//!   crate docs for the proof sketch).
//! * **Routing** (`suggest_circles`): an ego's full ego network lives
//!   complete on its owning shard (`shard_of(ego, N)` — the halo
//!   guarantee), so discovery requests are forwarded whole to that
//!   shard and the response is relabelled with the logical snapshot id.
//! * **Degraded mode**: every answer is exact or refused. A shard that
//!   cannot be reached — after the failover client has retried its
//!   replica endpoints with jittered backoff — turns the whole request
//!   into a typed `shard-unavailable` error naming the shard; a partial
//!   gather is never silently reduced.
//! * **Caching**: reduced scores are remembered in the server's
//!   ordinary [`crate::ScoreCache`], keyed by the *shard version
//!   vector* — the per-shard materialization versions every
//!   `shard_stats` response reports. Any shard's version advancing
//!   changes the composite key (and purges the stale generation), so a
//!   repeated query skips the scatter entirely while a mutated shard
//!   can never be answered from memory. Hits and misses show up in the
//!   usual `cache_*` rows of the `stats` op.
//! * **Topology safety**: at startup the coordinator probes every shard
//!   and refuses to serve unless the manifests agree (same shard count,
//!   same parent CRC/counts/median) and the shard indices form a
//!   complete cover `0..N`. Every gathered response re-echoes the
//!   manifest, so a shard swapped under a running coordinator is also
//!   refused.
//!
//! Writes (`apply_mutations`, `compact`) are refused with `not-primary`:
//! shard sub-snapshots are immutable projections of their parent, and
//! `baseline` is refused with `bad-request` because random walks cannot
//! be confined to one shard's halo.

use crate::cache::CacheKey;
use crate::client::ClientError;
use crate::failover::{FailoverClient, FailoverOptions};
use crate::protocol::{ok_payload, set_digest, wire, ErrorKind, Request, RequestError};
use crate::server::{score_fields, with_op, Shared};
use circlekit_scoring::{ScoringFunction, SetStats};
use circlekit_shard::{reduce_partials, shard_of, ShardPartial};
use circlekit_store::ShardManifest;
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-shard gather deadline applied when a client request carries no
/// `deadline_ms` of its own.
pub const DEFAULT_SHARD_DEADLINE_MS: u64 = 2_000;

/// Configuration of coordinator mode (`serve --coordinator`).
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// One entry per shard. Each entry is one or more `|`-separated
    /// endpoints for that shard (its primary first, then read replicas),
    /// handed to the shard's [`FailoverClient`].
    pub shards: Vec<String>,
    /// Per-shard deadline (milliseconds) forwarded with every gathered
    /// `shard_stats` request when the client supplied none.
    pub shard_deadline_ms: u64,
}

impl CoordinatorConfig {
    /// A config over `shards` with the default per-shard deadline.
    pub fn new(shards: Vec<String>) -> CoordinatorConfig {
        CoordinatorConfig { shards, shard_deadline_ms: DEFAULT_SHARD_DEADLINE_MS }
    }
}

/// One downstream shard: its failover client plus health counters the
/// `stats` and `repl_status` ops expose as per-shard rows.
struct ShardLink {
    /// The shard index this link answered for at startup.
    index: u32,
    /// The configured endpoint entry, for error messages and stats rows.
    endpoints: String,
    /// The snapshot id the shard process serves its sub-snapshot under.
    snapshot_id: String,
    client: Mutex<FailoverClient>,
    requests: AtomicU64,
    failures: AtomicU64,
    inflight: AtomicU64,
    last_rtt_us: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl ShardLink {
    /// Runs one call against this shard with the bookkeeping the stats
    /// rows need (request/failure counts, inflight gauge, last RTT).
    fn call<T>(
        &self,
        call: impl FnMut(&mut crate::client::Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let outcome = self.client.lock().expect("shard client lock").read(call);
        let rtt = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.last_rtt_us.store(rtt, Ordering::Relaxed);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        match &outcome {
            Ok(_) => *self.last_error.lock().expect("last error lock") = None,
            Err(e) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock().expect("last error lock") = Some(e.to_string());
            }
        }
        outcome
    }
}

/// The connected, topology-validated shard fleet.
pub(crate) struct Coordinator {
    /// The snapshot id clients use (shard 0's id with its `.shard<i>`
    /// suffix stripped).
    logical_id: String,
    /// Shard 0's manifest — after validation every shard agrees on the
    /// parent-binding fields, so it stands for the whole topology.
    manifest: ShardManifest,
    directed: bool,
    group_sizes: Vec<u64>,
    deadline_ms: u64,
    /// Indexed by shard index (validated to be a complete cover).
    shards: Vec<ShardLink>,
    /// Per-shard materialization versions, indexed like `shards`, as
    /// last observed in gathered `shard_stats` responses. The fold of
    /// this vector keys every cached reduction, so a shard advancing
    /// makes older cache entries unreachable; see
    /// [`Coordinator::observe_versions`].
    versions: Mutex<Vec<u64>>,
}

/// Tag words separating the two gather-set namings inside
/// [`coord_digest`], so a group index can never collide with a member
/// digest.
const DIGEST_GROUP: u64 = 1;
const DIGEST_MEMBERS: u64 = 2;

/// FNV-1a fold of a gather set's identity and the full shard version
/// vector — the `digest` half of a coordinator cache key. The key's
/// `version` half is the (per-shard monotone, hence monotone) version
/// *sum*, which is what lets [`crate::ScoreCache::invalidate_stale`]
/// purge superseded generations; folding the raw vector in here keeps
/// two distinct vectors that happen to share a sum from ever sharing a
/// key.
fn coord_digest(tag: u64, set: u64, versions: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [tag, set].into_iter().chain(versions.iter().copied()) {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// What a gathered set is named by: a group index (resolved shard-side
/// against the full group list every sub-snapshot carries) or explicit
/// global members.
enum GatherSet<'a> {
    Group(usize),
    Members(&'a [u32]),
}

impl Coordinator {
    /// Connects to every shard, validates the topology, and returns the
    /// ready coordinator. Any mismatch — wrong shard count, duplicate or
    /// missing index, disagreeing parent CRC/counts/median, mixed
    /// directedness — is a rendered startup refusal naming the endpoint.
    pub(crate) fn connect(config: &CoordinatorConfig) -> Result<Coordinator, String> {
        if config.shards.is_empty() {
            return Err("a coordinator needs at least one shard endpoint".to_string());
        }
        let want = config.shards.len() as u32;
        let mut probed: Vec<(ShardLink, ShardManifest, bool, u64)> = Vec::new();
        for entry in &config.shards {
            let endpoints: Vec<String> = entry
                .split('|')
                .map(str::trim)
                .filter(|e| !e.is_empty())
                .map(String::from)
                .collect();
            if endpoints.is_empty() {
                return Err(format!("blank shard endpoint entry {entry:?}"));
            }
            let options = FailoverOptions {
                read_timeout: Duration::from_millis(config.shard_deadline_ms.max(2_000)),
                ..FailoverOptions::default()
            };
            let mut client = FailoverClient::new(endpoints, options);
            let listed = client
                .read(|c| c.list_snapshots())
                .map_err(|e| format!("shard {entry:?}: cannot list snapshots: {e}"))?;
            let snapshot_id = single_snapshot_id(&listed)
                .map_err(|why| format!("shard {entry:?}: {why}"))?;
            // An empty-member probe returns the manifest without scoring
            // anything.
            let probe = client
                .read(|c| {
                    c.call(
                        "shard_stats",
                        vec![
                            ("snapshot".to_string(), Value::Str(snapshot_id.clone())),
                            ("members".to_string(), Value::Seq(Vec::new())),
                        ],
                    )
                })
                .map_err(|e| format!("shard {entry:?}: shard_stats probe failed: {e}"))?;
            let (manifest, directed) = manifest_from_response(&probe)
                .map_err(|why| format!("shard {entry:?}: {why}"))?;
            let version = require_u64(&probe, "version")
                .map_err(|why| format!("shard {entry:?}: {why}"))?;
            if manifest.shard_count != want {
                return Err(format!(
                    "shard {entry:?} was packed for {} shards but {want} endpoints were given",
                    manifest.shard_count
                ));
            }
            probed.push((
                ShardLink {
                    index: manifest.shard_index,
                    endpoints: entry.clone(),
                    snapshot_id,
                    client: Mutex::new(client),
                    requests: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    inflight: AtomicU64::new(0),
                    last_rtt_us: AtomicU64::new(0),
                    last_error: Mutex::new(None),
                },
                manifest,
                directed,
                version,
            ));
        }
        let (_, reference, ref_directed, _) = &probed[0];
        let reference = *reference;
        let ref_directed = *ref_directed;
        for (link, manifest, directed, _) in &probed {
            if !same_parent(manifest, &reference) || *directed != ref_directed {
                return Err(format!(
                    "shard {:?} belongs to a different partition (parent CRC {:#010x} vs \
                     {:#010x}); all shards must come from one pack run over one parent",
                    link.endpoints, manifest.parent_crc32, reference.parent_crc32
                ));
            }
        }
        probed.sort_by_key(|(link, _, _, _)| link.index);
        for (at, (link, _, _, _)) in probed.iter().enumerate() {
            if link.index as usize != at {
                return Err(format!(
                    "shard indices do not cover 0..{want}: {} (endpoint {:?}) is {}",
                    link.index,
                    link.endpoints,
                    if at > 0 && probed[at - 1].0.index == link.index {
                        "duplicated"
                    } else {
                        "out of place"
                    }
                ));
            }
        }
        let versions: Vec<u64> = probed.iter().map(|(_, _, _, version)| *version).collect();
        let shards: Vec<ShardLink> = probed.into_iter().map(|(link, _, _, _)| link).collect();
        let logical_id = logical_id_of(&shards[0].snapshot_id);
        let shard0 = &shards[0];
        let groups = shard0
            .call(|c| c.list_groups(&shard0.snapshot_id))
            .map_err(|e| format!("shard {:?}: cannot list groups: {e}", shard0.endpoints))?;
        let group_sizes = group_sizes_of(&groups)
            .map_err(|why| format!("shard {:?}: {why}", shard0.endpoints))?;
        Ok(Coordinator {
            logical_id,
            manifest: reference,
            directed: ref_directed,
            group_sizes,
            deadline_ms: config.shard_deadline_ms,
            shards,
            versions: Mutex::new(versions),
        })
    }

    fn check_snapshot(&self, id: &str) -> Result<(), RequestError> {
        if id == self.logical_id {
            Ok(())
        } else {
            Err((
                ErrorKind::NotFound,
                format!(
                    "unknown snapshot {id:?} (this coordinator serves {:?})",
                    self.logical_id
                ),
            ))
        }
    }

    /// Scatter `set` to every shard and reduce the gathered partials to
    /// exact global statistics. Exact or refused: the first shard that
    /// cannot answer fails the whole gather. Also returns the shard
    /// version vector this gather observed, for keying the cached
    /// reduction.
    fn gather(
        &self,
        shared: &Shared,
        set: &GatherSet<'_>,
        deadline_ms: Option<u64>,
    ) -> Result<(SetStats, usize, Vec<u64>), RequestError> {
        let deadline = deadline_ms.unwrap_or(self.deadline_ms);
        let outcomes: Vec<Result<(ShardPartial, u64, u64), RequestError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|link| scope.spawn(move || self.gather_one(link, set, deadline)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("gather thread panicked"))
                    .collect()
            });
        let mut partials = Vec::with_capacity(outcomes.len());
        let mut versions = Vec::with_capacity(outcomes.len());
        let mut set_len: Option<u64> = None;
        for outcome in outcomes {
            let (partial, len, version) = outcome?;
            match set_len {
                None => set_len = Some(len),
                Some(have) if have != len => {
                    return Err((
                        ErrorKind::Internal,
                        format!(
                            "shards disagree on the set size ({have} vs {len}); \
                             their group lists have diverged — re-pack the partition"
                        ),
                    ));
                }
                Some(_) => {}
            }
            partials.push(partial);
            versions.push(version);
        }
        let set_len = set_len.unwrap_or(0) as usize;
        let stats = reduce_partials(&self.manifest, self.directed, set_len, &partials)
            .map_err(|e| (ErrorKind::Internal, format!("shard reduction failed: {e}")))?;
        self.observe_versions(shared, &versions);
        Ok((stats, set_len, versions))
    }

    /// Folds the version vector a gather observed into the tracked one
    /// (component-wise max — versions only advance shard-side). When
    /// any shard has moved, every cached reduction keyed below the new
    /// version sum is purged: the composite digest already makes the
    /// old generation unreachable, but the purge keeps the LRU from
    /// carrying dead entries and ticks the `cache_invalidations` row.
    fn observe_versions(&self, shared: &Shared, observed: &[u64]) {
        let mut tracked = self.versions.lock().expect("shard versions lock");
        let mut advanced = false;
        for (have, &saw) in tracked.iter_mut().zip(observed) {
            if saw > *have {
                *have = saw;
                advanced = true;
            }
        }
        if advanced {
            let sum: u64 = tracked.iter().sum();
            drop(tracked);
            shared
                .cache
                .lock()
                .expect("cache lock")
                .invalidate_stale(&self.logical_id, sum);
        }
    }

    /// Probes the server's ordinary score LRU for every requested
    /// function's reduced score under the tracked version vector.
    /// All-or-nothing: a single absent entry falls the whole request
    /// back to a full scatter-gather.
    fn cached_scores(
        &self,
        shared: &Shared,
        tag: u64,
        set: u64,
        functions: &[ScoringFunction],
    ) -> Option<Vec<f64>> {
        let (digest, version) = {
            let versions = self.versions.lock().expect("shard versions lock");
            (coord_digest(tag, set, &versions), versions.iter().sum())
        };
        let mut cache = shared.cache.lock().expect("cache lock");
        functions
            .iter()
            .map(|&function| {
                cache.get(&CacheKey {
                    snapshot: self.logical_id.clone(),
                    version,
                    function,
                    digest,
                })
            })
            .collect()
    }

    /// Remembers one gather's reduced scores, keyed by the version
    /// vector that gather actually observed (not the tracked one, which
    /// a racing gather may have advanced past).
    fn store_scores(
        &self,
        shared: &Shared,
        tag: u64,
        set: u64,
        observed: &[u64],
        functions: &[ScoringFunction],
        scores: &[f64],
    ) {
        let digest = coord_digest(tag, set, observed);
        let version = observed.iter().sum();
        let mut cache = shared.cache.lock().expect("cache lock");
        for (&function, &score) in functions.iter().zip(scores) {
            cache.insert(
                CacheKey { snapshot: self.logical_id.clone(), version, function, digest },
                score,
            );
        }
    }

    /// One shard's half of [`Coordinator::gather`]: the partial terms,
    /// the shard's view of the set size, and the shard's snapshot
    /// version.
    fn gather_one(
        &self,
        link: &ShardLink,
        set: &GatherSet<'_>,
        deadline_ms: u64,
    ) -> Result<(ShardPartial, u64, u64), RequestError> {
        let mut fields = vec![(
            "snapshot".to_string(),
            Value::Str(link.snapshot_id.clone()),
        )];
        match set {
            GatherSet::Group(group) => {
                fields.push(("group".to_string(), Value::UInt(*group as u64)));
            }
            GatherSet::Members(members) => fields.push((
                "members".to_string(),
                Value::Seq(members.iter().map(|&m| Value::UInt(u64::from(m))).collect()),
            )),
        }
        fields.push(("deadline_ms".to_string(), Value::UInt(deadline_ms)));
        let response = link
            .call(|c| c.call("shard_stats", fields.clone()))
            .map_err(|e| match e {
                ClientError::Server { kind, message } => {
                    (kind, format!("shard {}: {message}", link.index))
                }
                other => (
                    ErrorKind::ShardUnavailable,
                    format!(
                        "shard {} ({}) is unavailable: {other}",
                        link.index, link.endpoints
                    ),
                ),
            })?;
        let (manifest, _) = manifest_from_response(&response)
            .map_err(|why| (ErrorKind::Internal, format!("shard {}: {why}", link.index)))?;
        if !same_parent(&manifest, &self.manifest) || manifest.shard_index != link.index {
            return Err((
                ErrorKind::Internal,
                format!(
                    "shard {} ({}) answered for a different partition (parent CRC \
                     {:#010x}, index {}); the fleet changed under this coordinator",
                    link.index, link.endpoints, manifest.parent_crc32, manifest.shard_index
                ),
            ));
        }
        let version = require_u64(&response, "version")
            .map_err(|why| (ErrorKind::Internal, format!("shard {}: {why}", link.index)))?;
        let (partial, set_len) = partial_from_response(&response, manifest.shard_index)
            .map_err(|why| (ErrorKind::Internal, format!("shard {}: {why}", link.index)))?;
        Ok((partial, set_len, version))
    }

    fn score_group(
        &self,
        shared: &Shared,
        snapshot: &str,
        group: usize,
        functions: &[ScoringFunction],
        deadline_ms: Option<u64>,
    ) -> Result<String, RequestError> {
        self.check_snapshot(snapshot)?;
        if group >= self.group_sizes.len() {
            return Err((
                ErrorKind::NotFound,
                format!(
                    "snapshot {:?} has {} groups, no index {group}",
                    self.logical_id,
                    self.group_sizes.len()
                ),
            ));
        }
        let mut fields = vec![("group".to_string(), Value::UInt(group as u64))];
        if let Some(scores) = self.cached_scores(shared, DIGEST_GROUP, group as u64, functions)
        {
            // The shards were validated to share one group list, so the
            // advertised size is the size every gather would re-agree on.
            let set_len = self.group_sizes[group] as usize;
            fields.extend(score_fields(set_len, functions, &scores, true));
            return Ok(ok_payload(with_op("score_group", &self.logical_id, fields)));
        }
        let (stats, set_len, observed) =
            self.gather(shared, &GatherSet::Group(group), deadline_ms)?;
        let scores: Vec<f64> = functions.iter().map(|f| f.score(&stats)).collect();
        self.store_scores(shared, DIGEST_GROUP, group as u64, &observed, functions, &scores);
        fields.extend(score_fields(set_len, functions, &scores, false));
        Ok(ok_payload(with_op("score_group", &self.logical_id, fields)))
    }

    fn score_set(
        &self,
        shared: &Shared,
        snapshot: &str,
        members: &[u32],
        functions: &[ScoringFunction],
        deadline_ms: Option<u64>,
    ) -> Result<String, RequestError> {
        self.check_snapshot(snapshot)?;
        if let Some(&bad) =
            members.iter().find(|&&m| u64::from(m) >= self.manifest.parent_node_count)
        {
            return Err((
                ErrorKind::BadRequest,
                format!(
                    "member {bad} is out of range for snapshot {:?} ({} nodes)",
                    self.logical_id, self.manifest.parent_node_count
                ),
            ));
        }
        // Normalize exactly like the shard-side `VertexSet::from_vec`,
        // so the digest (and the cached `size`) name the de-duplicated
        // set the shards actually score.
        let mut normalized = members.to_vec();
        normalized.sort_unstable();
        normalized.dedup();
        let member_digest = set_digest(&normalized);
        if let Some(scores) =
            self.cached_scores(shared, DIGEST_MEMBERS, member_digest, functions)
        {
            let fields = score_fields(normalized.len(), functions, &scores, true);
            return Ok(ok_payload(with_op("score_set", &self.logical_id, fields)));
        }
        let (stats, set_len, observed) =
            self.gather(shared, &GatherSet::Members(members), deadline_ms)?;
        let scores: Vec<f64> = functions.iter().map(|f| f.score(&stats)).collect();
        self.store_scores(shared, DIGEST_MEMBERS, member_digest, &observed, functions, &scores);
        let fields = score_fields(set_len, functions, &scores, false);
        Ok(ok_payload(with_op("score_set", &self.logical_id, fields)))
    }

    fn watch_scores(
        &self,
        shared: &Shared,
        snapshot: &str,
        group: usize,
    ) -> Result<String, RequestError> {
        self.check_snapshot(snapshot)?;
        if group >= self.group_sizes.len() {
            return Err((
                ErrorKind::NotFound,
                format!(
                    "snapshot {:?} has {} groups, no index {group}",
                    self.logical_id,
                    self.group_sizes.len()
                ),
            ));
        }
        let functions = ScoringFunction::PAPER;
        // Shares the score_group key space: watch_scores is the PAPER
        // function set over the same gathered group.
        let (scores, set_len) = match self.cached_scores(
            shared,
            DIGEST_GROUP,
            group as u64,
            &functions,
        ) {
            Some(scores) => (scores, self.group_sizes[group] as usize),
            None => {
                let (stats, set_len, observed) =
                    self.gather(shared, &GatherSet::Group(group), None)?;
                let scores: Vec<f64> = functions.iter().map(|f| f.score(&stats)).collect();
                self.store_scores(
                    shared,
                    DIGEST_GROUP,
                    group as u64,
                    &observed,
                    &functions,
                    &scores,
                );
                (scores, set_len)
            }
        };
        let names: Vec<Value> =
            functions.iter().map(|f| Value::Str(f.name().to_string())).collect();
        let fields = vec![
            ("group".to_string(), Value::UInt(group as u64)),
            ("size".to_string(), Value::UInt(set_len as u64)),
            ("version".to_string(), Value::UInt(0)),
            ("functions".to_string(), Value::Seq(names)),
            ("scores".to_string(), wire::score_array(&scores)),
        ];
        Ok(ok_payload(with_op("watch_scores", &self.logical_id, fields)))
    }

    /// `suggest_circles` is routed whole to the ego's owning shard: the
    /// halo guarantee makes that shard's view of the ego network exact.
    fn suggest(
        &self,
        snapshot: &str,
        ego: u32,
        seed: u64,
        min_size: usize,
        top: usize,
    ) -> Result<String, RequestError> {
        self.check_snapshot(snapshot)?;
        if u64::from(ego) >= self.manifest.parent_node_count {
            return Err((
                ErrorKind::NotFound,
                format!(
                    "snapshot {snapshot:?} has {} vertices, no ego {ego}",
                    self.manifest.parent_node_count
                ),
            ));
        }
        let owner = shard_of(ego, self.manifest.shard_count);
        let link = &self.shards[owner as usize];
        let mut response = link
            .call(|c| c.suggest_circles(&link.snapshot_id, ego, seed, min_size, top))
            .map_err(|e| match e {
                ClientError::Server { kind, message } => {
                    (kind, format!("shard {owner}: {message}"))
                }
                other => (
                    ErrorKind::ShardUnavailable,
                    format!("shard {owner} ({}) is unavailable: {other}", link.endpoints),
                ),
            })?;
        // Relabel the shard's snapshot id with the logical one so the
        // response is indistinguishable from a single-node answer.
        if let Value::Map(entries) = &mut response {
            for (key, value) in entries.iter_mut() {
                if key == "snapshot" {
                    *value = Value::Str(self.logical_id.clone());
                }
            }
        }
        Ok(response.to_string())
    }

    /// Per-shard health rows for the `stats` and `repl_status` ops,
    /// following the replication status row conventions.
    fn shard_rows(&self) -> Value {
        Value::Seq(
            self.shards
                .iter()
                .map(|link| {
                    let last_error = match &*link.last_error.lock().expect("last error lock") {
                        Some(message) => Value::Str(message.clone()),
                        None => Value::Null,
                    };
                    Value::Map(vec![
                        ("shard".to_string(), Value::UInt(u64::from(link.index))),
                        ("endpoints".to_string(), Value::Str(link.endpoints.clone())),
                        ("snapshot".to_string(), Value::Str(link.snapshot_id.clone())),
                        (
                            "requests".to_string(),
                            Value::UInt(link.requests.load(Ordering::Relaxed)),
                        ),
                        (
                            "failures".to_string(),
                            Value::UInt(link.failures.load(Ordering::Relaxed)),
                        ),
                        (
                            "inflight".to_string(),
                            Value::UInt(link.inflight.load(Ordering::Relaxed)),
                        ),
                        (
                            "last_rtt_us".to_string(),
                            Value::UInt(link.last_rtt_us.load(Ordering::Relaxed)),
                        ),
                        ("last_error".to_string(), last_error),
                    ])
                })
                .collect(),
        )
    }
}

/// Answers `request` on behalf of the coordinator, or returns `None` for
/// the few ops the local machinery should keep handling (`debug_sleep`,
/// `repl_ack`; `shutdown` and `replicate` never reach here).
pub(crate) fn handle(
    shared: &Arc<Shared>,
    request: &Request,
) -> Option<Result<String, RequestError>> {
    let coord = shared.coord.as_ref().expect("coordinator mode");
    let answer = match request {
        Request::Health => Ok(ok_payload(vec![
            ("status".to_string(), Value::Str("serving".to_string())),
            ("role".to_string(), Value::Str("coordinator".to_string())),
            ("snapshots".to_string(), Value::UInt(1)),
            ("shards".to_string(), Value::UInt(coord.shards.len() as u64)),
        ])),
        Request::Stats => {
            let mut fields = shared.stats_snapshot().to_fields();
            fields.push(("shards".to_string(), coord.shard_rows()));
            Ok(ok_payload(fields))
        }
        Request::ListSnapshots => Ok(ok_payload(vec![(
            "snapshots".to_string(),
            Value::Seq(vec![Value::Map(vec![
                ("id".to_string(), Value::Str(coord.logical_id.clone())),
                ("path".to_string(), Value::Str("<coordinator>".to_string())),
                ("nodes".to_string(), Value::UInt(coord.manifest.parent_node_count)),
                ("edges".to_string(), Value::UInt(coord.manifest.parent_edge_count)),
                ("directed".to_string(), Value::Bool(coord.directed)),
                ("groups".to_string(), Value::UInt(coord.group_sizes.len() as u64)),
                ("version".to_string(), Value::UInt(0)),
            ])]),
        )])),
        Request::ListGroups { snapshot } => coord.check_snapshot(snapshot).map(|()| {
            ok_payload(vec![
                ("snapshot".to_string(), Value::Str(coord.logical_id.clone())),
                ("groups".to_string(), Value::UInt(coord.group_sizes.len() as u64)),
                (
                    "sizes".to_string(),
                    Value::Seq(coord.group_sizes.iter().map(|&s| Value::UInt(s)).collect()),
                ),
            ])
        }),
        Request::ScoreGroup { snapshot, group, functions, deadline_ms } => {
            coord.score_group(shared, snapshot, *group, functions, *deadline_ms)
        }
        Request::ScoreSet { snapshot, members, functions, deadline_ms } => {
            coord.score_set(shared, snapshot, members, functions, *deadline_ms)
        }
        Request::WatchScores { snapshot, group } => {
            coord.watch_scores(shared, snapshot, *group)
        }
        Request::SuggestCircles { snapshot, ego, seed, min_size, top } => {
            coord.suggest(snapshot, *ego, *seed, *min_size, *top)
        }
        Request::Baseline { .. } => Err((
            ErrorKind::BadRequest,
            "baseline sampling walks the whole graph and cannot be confined to shards; \
             run it against the unsharded snapshot"
                .to_string(),
        )),
        Request::ApplyMutations { .. } | Request::Compact { .. } => Err((
            ErrorKind::NotPrimary,
            "this server is a scatter-gather coordinator and its shards are immutable; \
             mutate the parent snapshot and re-pack"
                .to_string(),
        )),
        Request::ShardStats { .. } => Err((
            ErrorKind::BadRequest,
            "this server is a coordinator; shard_stats is answered by shard processes"
                .to_string(),
        )),
        Request::ReplStatus => {
            let fields = vec![
                ("op".to_string(), Value::Str("repl_status".to_string())),
                ("role".to_string(), Value::Str("coordinator".to_string())),
                ("shards".to_string(), coord.shard_rows()),
            ];
            Ok(ok_payload(fields))
        }
        Request::DebugSleep { .. }
        | Request::ReplAck { .. }
        | Request::Replicate { .. }
        | Request::Shutdown => return None,
    };
    Some(answer)
}

/// True when two manifests bind to the same parent partition run.
fn same_parent(a: &ShardManifest, b: &ShardManifest) -> bool {
    a.shard_count == b.shard_count
        && a.parent_crc32 == b.parent_crc32
        && a.parent_node_count == b.parent_node_count
        && a.parent_edge_count == b.parent_edge_count
        && a.parent_median_degree.to_bits() == b.parent_median_degree.to_bits()
}

/// Shard 0's id minus a trailing `.shard<digits>` suffix — the snapshot
/// id the coordinator serves under.
fn logical_id_of(shard0_id: &str) -> String {
    if let Some(at) = shard0_id.rfind(".shard") {
        let digits = &shard0_id[at + ".shard".len()..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return shard0_id[..at].to_string();
        }
    }
    shard0_id.to_string()
}

/// The id of the single snapshot a shard process serves.
fn single_snapshot_id(listed: &Value) -> Result<String, String> {
    let Some(Value::Seq(snapshots)) = wire::get(listed, "snapshots") else {
        return Err("list_snapshots response lacks a snapshots array".to_string());
    };
    if snapshots.len() != 1 {
        return Err(format!(
            "a shard process must serve exactly one sub-snapshot, found {}",
            snapshots.len()
        ));
    }
    match wire::get(&snapshots[0], "id") {
        Some(Value::Str(id)) => Ok(id.clone()),
        _ => Err("snapshot row lacks an id".to_string()),
    }
}

fn group_sizes_of(response: &Value) -> Result<Vec<u64>, String> {
    let Some(Value::Seq(sizes)) = wire::get(response, "sizes") else {
        return Err("list_groups response lacks a sizes array".to_string());
    };
    sizes
        .iter()
        .map(|v| match v {
            Value::UInt(u) => Ok(*u),
            other => Err(format!("group size is not an integer: {other}")),
        })
        .collect()
}

fn require_u64(value: &Value, key: &str) -> Result<u64, String> {
    match wire::get(value, key) {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("shard_stats response lacks integer field {key:?}")),
    }
}

fn require_f64(value: &Value, key: &str) -> Result<f64, String> {
    wire::get(value, key)
        .and_then(wire::as_f64)
        .ok_or_else(|| format!("shard_stats response lacks numeric field {key:?}"))
}

/// Reconstructs the shard manifest a `shard_stats` response echoes.
fn manifest_from_response(value: &Value) -> Result<(ShardManifest, bool), String> {
    let shard_count = u32::try_from(require_u64(value, "shard_count")?)
        .map_err(|_| "shard_count exceeds u32".to_string())?;
    let shard_index = u32::try_from(require_u64(value, "shard_index")?)
        .map_err(|_| "shard_index exceeds u32".to_string())?;
    let parent_crc32 = u32::try_from(require_u64(value, "parent_crc32")?)
        .map_err(|_| "parent_crc32 exceeds u32".to_string())?;
    let directed = match wire::get(value, "directed") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("shard_stats response lacks boolean field \"directed\"".to_string()),
    };
    Ok((
        ShardManifest {
            shard_count,
            shard_index,
            parent_node_count: require_u64(value, "parent_nodes")?,
            parent_edge_count: require_u64(value, "parent_edges")?,
            parent_median_degree: require_f64(value, "parent_median_degree")?,
            parent_crc32,
        },
        directed,
    ))
}

/// Decodes the raw partial terms of a `shard_stats` response. Finite
/// floats cross the wire bit-exactly (shortest round-trip formatting),
/// which is what keeps the reduction bit-identical end to end.
fn partial_from_response(value: &Value, shard_index: u32) -> Result<(ShardPartial, u64), String> {
    let set_len = require_u64(value, "set_len")?;
    let odf_members = wire::get_u32_array(value, "odf_members")
        .map_err(|(_, message)| message)?;
    let odf_values = wire::get_scores(value, "odf_values").map_err(|(_, message)| message)?;
    if odf_members.len() != odf_values.len() {
        return Err(format!(
            "odf arrays are unaligned ({} members, {} values)",
            odf_members.len(),
            odf_values.len()
        ));
    }
    let partial = ShardPartial {
        shard_index,
        internal_arcs: require_u64(value, "internal_arcs")?,
        boundary: require_u64(value, "boundary")?,
        out_degree_sum: require_u64(value, "out_degree_sum")?,
        in_degree_sum: require_u64(value, "in_degree_sum")?,
        above_median_internal: require_u64(value, "above_median_internal")?,
        flake_count: require_u64(value, "flake_count")?,
        in_internal_triangle: require_u64(value, "in_internal_triangle")?,
        max_odf: require_f64(value, "max_odf")?,
        odf_members,
        odf_values,
    };
    Ok((partial, set_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_digest_separates_sets_tags_and_version_vectors() {
        // A group index and a member digest of the same value must not
        // collide, and two version vectors sharing a sum must not
        // either — the sum is only the monotone purge axis.
        let vv = [0u64, 0];
        assert_ne!(
            coord_digest(DIGEST_GROUP, 7, &vv),
            coord_digest(DIGEST_MEMBERS, 7, &vv)
        );
        assert_ne!(coord_digest(DIGEST_GROUP, 7, &vv), coord_digest(DIGEST_GROUP, 8, &vv));
        assert_ne!(
            coord_digest(DIGEST_GROUP, 7, &[1, 0]),
            coord_digest(DIGEST_GROUP, 7, &[0, 1])
        );
        // Deterministic across calls: the same key always re-forms.
        assert_eq!(
            coord_digest(DIGEST_MEMBERS, 42, &[3, 5]),
            coord_digest(DIGEST_MEMBERS, 42, &[3, 5])
        );
    }

    #[test]
    fn logical_id_strips_only_a_numeric_shard_suffix() {
        assert_eq!(logical_id_of("web.shard0"), "web");
        assert_eq!(logical_id_of("web.shard12"), "web");
        assert_eq!(logical_id_of("web.shard"), "web.shard");
        assert_eq!(logical_id_of("web.shardx"), "web.shardx");
        assert_eq!(logical_id_of("plain"), "plain");
        assert_eq!(logical_id_of("a.shard1.shard2"), "a.shard1");
    }

    #[test]
    fn manifest_roundtrips_through_the_response_encoding() {
        let manifest = ShardManifest {
            shard_count: 3,
            shard_index: 2,
            parent_node_count: 100,
            parent_edge_count: 400,
            parent_median_degree: 3.5,
            parent_crc32: 0xDEAD_BEEF,
        };
        let value = Value::Map(vec![
            ("shard_count".to_string(), Value::UInt(3)),
            ("shard_index".to_string(), Value::UInt(2)),
            ("parent_crc32".to_string(), Value::UInt(0xDEAD_BEEF)),
            ("parent_nodes".to_string(), Value::UInt(100)),
            ("parent_edges".to_string(), Value::UInt(400)),
            ("parent_median_degree".to_string(), Value::Float(3.5)),
            ("directed".to_string(), Value::Bool(true)),
        ]);
        let (got, directed) = manifest_from_response(&value).unwrap();
        assert_eq!(got, manifest);
        assert!(directed);
        assert!(same_parent(&got, &manifest));
        let mut other = manifest;
        other.parent_crc32 ^= 1;
        assert!(!same_parent(&got, &other));
    }
}
