//! The epoll front end: one loop thread owning every connection,
//! replacing the thread-per-connection acceptor/handler pair when
//! [`crate::ServeConfig::event_loop`] is on (the default).
//!
//! ## Architecture
//!
//! ```text
//!          epoll loop thread                dispatcher pool           workers
//!  accept ─► Conn{inbuf,outbuf} ─frames─► BoundedQueue ─► handle_request ─► (queue,
//!  flush  ◄─ seq-ordered done map ◄─────── completions + wake pipe          batcher,
//!                                                                           cache)
//! ```
//!
//! The loop never blocks on a socket: reads and writes run to `EAGAIN`
//! and partial frames/writes stay buffered per connection. Decoded
//! requests are stamped with a per-connection sequence number and handed
//! to a dispatcher pool over a second [`BoundedQueue`]; dispatchers call
//! the same [`handle_request`] the threaded path uses, so the scoring
//! queue, micro-batcher, LRU cache, and registry are shared unchanged —
//! served bytes are identical in both front ends.
//!
//! ## Pipelining and the ordering guarantee
//!
//! A connection may have many requests in flight (up to
//! [`MAX_PIPELINE`]; beyond that the loop simply stops reading the
//! socket, which is backpressure TCP propagates to the client).
//! Execution may complete out of order — different dispatchers, cache
//! hits overtaking scoring misses — but responses are **delivered in
//! request order**: completions park in a per-connection `BTreeMap`
//! keyed by sequence number and only the next undelivered sequence is
//! appended to the write buffer. A pipelined client can therefore match
//! responses to requests positionally, exactly as on the serial path.
//!
//! ## Protocol negotiation
//!
//! The first byte of a connection picks its mode for life: `b'C'` is
//! CKP1 ([`crate::binary`]), anything else is length-prefixed JSON.
//! Mixed fleets (old JSON clients, new binary ones) share the port.
//!
//! ## Failure matrix
//!
//! | input                                | answer                    | connection |
//! |--------------------------------------|---------------------------|------------|
//! | malformed JSON in a valid frame      | `bad-request`             | survives   |
//! | undecodable CKP1 op/arguments        | `bad-request`             | survives   |
//! | JSON length prefix > 16 MiB          | `frame-too-large`, once   | closed     |
//! | CKP1 bad magic / kind / reserved     | `bad-request`, once       | closed     |
//! | CKP1 length > 16 MiB                 | `frame-too-large`, once   | closed     |
//! | CKP1 payload CRC mismatch            | `bad-request`, once       | closed     |
//! | truncation / disconnect mid-frame    | nothing (stream is gone)  | closed     |
//! | dispatch + scoring queues saturated  | `overloaded`, immediately | survives   |
//!
//! The close-after-answer rows flush every response already owed to the
//! connection first — pipelined predecessors are never dropped.

use crate::binary::{self, BinaryError};
use crate::protocol::{error_payload, ok_payload, ErrorKind, Request, RequestError, MAX_FRAME_LEN};
use crate::queue::{BoundedQueue, PushError};
use crate::replication;
use crate::server::{handle_request, Shared, POLL_INTERVAL, SHUTDOWN_GRACE_POLLS};
use crate::stats::ServeStats;
use circlekit_net::{tune_stream, Event, Interest, Poller, WakePipe};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Most requests a single connection may have undelivered before the
/// loop stops reading its socket.
pub(crate) const MAX_PIPELINE: usize = 128;

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;

/// How a connection frames its messages, fixed by the first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// No byte seen yet.
    Unknown,
    /// 4-byte big-endian length + JSON (the compat protocol).
    Json,
    /// CKP1 binary frames.
    Binary,
}

/// One request executed off-loop, addressed back to (slot, generation,
/// seq) — the generation guards against the slot being reused by a new
/// connection while the request was in flight.
struct DispatchJob {
    slot: usize,
    generation: u64,
    seq: u64,
    op: u16,
    request: Request,
}

struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    op: u16,
    outcome: Result<String, RequestError>,
}

#[derive(Default)]
struct Completions {
    ready: Mutex<Vec<Completion>>,
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    mode: Mode,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Next sequence number to stamp on an incoming request.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_deliver: u64,
    /// Finished responses waiting for their turn, keyed by sequence.
    done: BTreeMap<u64, Vec<u8>>,
    /// Requests handed to dispatchers and not yet completed.
    inflight: usize,
    /// The peer's read side is gone or the stream is desynchronised —
    /// parse no further input.
    stop_reading: bool,
    /// Close once every owed response is flushed.
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn pipeline_full(&self) -> bool {
        self.inflight + self.done.len() >= MAX_PIPELINE
    }

    fn wants(&self) -> Interest {
        Interest {
            readable: !self.stop_reading && !self.pipeline_full(),
            writable: !self.outbuf.is_empty(),
        }
    }

    fn idle(&self) -> bool {
        self.inflight == 0 && self.done.is_empty() && self.outbuf.is_empty()
    }
}

/// Runs the event loop until shutdown completes its drain. Takes the
/// role `accept_loop` has on the threaded path; `handlers` receives the
/// threads that replication subscriptions are handed off to, so
/// [`crate::Server::join`] can join them as usual.
pub(crate) fn run(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let poller = Poller::new().expect("epoll_create1");
    let wake = Arc::new(WakePipe::new().expect("wake pipe"));
    poller
        .register(wake.read_fd(), WAKE_TOKEN, Interest::READ)
        .expect("register wake pipe");
    poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .expect("register listener");

    // A deeper floor than the scoring queue so a burst of cheap inline
    // ops (which never touch the scoring queue) is not refused just
    // because the hand-off buffer is momentarily full.
    let dispatch: Arc<BoundedQueue<DispatchJob>> =
        Arc::new(BoundedQueue::new(shared.config.queue_capacity.max(64)));
    let completions = Arc::new(Completions::default());
    let dispatchers: Vec<JoinHandle<()>> = (0..shared.config.dispatcher_count())
        .map(|i| {
            let shared = Arc::clone(shared);
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake);
            std::thread::Builder::new()
                .name(format!("ck-serve-dispatch-{i}"))
                .spawn(move || dispatcher_loop(&shared, &dispatch, &completions, &wake))
                .expect("spawn dispatcher thread")
        })
        .collect();

    let mut state = Loop {
        shared: Arc::clone(shared),
        poller,
        wake,
        dispatch,
        completions,
        handlers: Arc::clone(handlers),
        conns: Vec::new(),
        free: Vec::new(),
        generations: 0,
        accepting: true,
        shutdown_polls: 0,
    };
    state.run(&listener);

    // Drain the dispatchers: in-flight handle_request calls finish (the
    // scoring workers are still running — Server::join stops them only
    // after this thread exits), late completions land in a list nobody
    // reads any more, and the pool exits.
    state.dispatch.close();
    for dispatcher in dispatchers {
        dispatcher.join().expect("dispatcher thread panicked");
    }
}

fn dispatcher_loop(
    shared: &Arc<Shared>,
    dispatch: &BoundedQueue<DispatchJob>,
    completions: &Completions,
    wake: &WakePipe,
) {
    while let Some(job) = dispatch.pop() {
        let DispatchJob { slot, generation, seq, op, request } = job;
        let outcome = handle_request(request, shared);
        completions
            .ready
            .lock()
            .expect("completion lock")
            .push(Completion { slot, generation, seq, op, outcome });
        wake.wake();
    }
}

struct Loop {
    shared: Arc<Shared>,
    poller: Poller,
    wake: Arc<WakePipe>,
    dispatch: Arc<BoundedQueue<DispatchJob>>,
    completions: Arc<Completions>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generations: u64,
    accepting: bool,
    shutdown_polls: u32,
}

impl Loop {
    fn run(&mut self, listener: &TcpListener) {
        let termination = self.shared.config.watch_signals.then(crate::signal::termination_flag);
        let mut events: Vec<Event> = Vec::new();
        loop {
            if let Some(flag) = termination {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    self.shared.trigger_shutdown();
                }
            }
            if self.shared.shutting_down() && self.drain(listener) {
                return;
            }
            if self.poller.wait(&mut events, Some(POLL_INTERVAL)).is_err() {
                // epoll itself failing is unrecoverable for this front
                // end; drain and let join() finish the workers.
                self.shared.trigger_shutdown();
                continue;
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_burst(listener),
                    WAKE_TOKEN => self.wake.drain(),
                    token => self.handle_io(token as usize, event),
                }
            }
            self.apply_completions();
        }
    }

    /// One shutdown step. The first call stops accepting and tells every
    /// connection to wind down; each call reports whether the drain has
    /// finished (all connections closed, or the grace window lapsed and
    /// the stragglers were dropped).
    fn drain(&mut self, listener: &TcpListener) -> bool {
        if self.accepting {
            self.accepting = false;
            let _ = self.poller.deregister(listener.as_raw_fd());
            for slot in 0..self.conns.len() {
                if self.conns[slot].is_none() {
                    continue;
                }
                {
                    let conn = self.conns[slot].as_mut().expect("presence just checked");
                    conn.stop_reading = true;
                    conn.close_after_flush = true;
                }
                self.settle(slot);
            }
        }
        self.apply_completions();
        if self.conns.iter().all(Option::is_none) {
            return true;
        }
        // In-flight work gets the same grace the threaded path gives a
        // mid-frame reader; then the stragglers are dropped.
        self.shutdown_polls += 1;
        if self.shutdown_polls > SHUTDOWN_GRACE_POLLS {
            for slot in 0..self.conns.len() {
                if self.conns[slot].is_some() {
                    self.close(slot);
                }
            }
            return true;
        }
        false
    }

    fn accept_burst(&mut self, listener: &TcpListener) {
        if !self.accepting {
            return;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => self.adopt(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (aborted handshakes, fd
                // pressure) must not kill the loop.
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = tune_stream(&stream);
        ServeStats::bump(&self.shared.stats.connections);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.generations += 1;
        let conn = Conn {
            stream,
            generation: self.generations,
            mode: Mode::Unknown,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            next_seq: 0,
            next_deliver: 0,
            done: BTreeMap::new(),
            inflight: 0,
            stop_reading: false,
            close_after_flush: false,
            interest: Interest::READ,
        };
        if self.poller.register(conn.stream.as_raw_fd(), slot as u64, Interest::READ).is_err() {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
    }

    fn handle_io(&mut self, slot: usize, event: Event) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if event.error {
            self.close(slot);
            return;
        }
        if event.writable && flush(conn).is_err() {
            self.close(slot);
            return;
        }
        if (event.readable || event.hangup) && self.service_reads(slot).is_err() {
            self.close(slot);
            return;
        }
        self.settle(slot);
    }

    /// Reads to EAGAIN, parses every complete frame, dispatches.
    /// `Err(())` closes the connection immediately (nothing owed).
    fn service_reads(&mut self, slot: usize) -> Result<(), ()> {
        let mut eof = false;
        {
            let conn = self.conns[slot].as_mut().expect("checked by caller");
            if !conn.stop_reading {
                let mut chunk = [0u8; 64 * 1024];
                while !conn.pipeline_full() {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return Err(()),
                    }
                }
            }
        }
        self.parse_frames(slot)?;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(());
        };
        if eof {
            // The peer may have half-closed: responses already owed are
            // still flushed, but nothing further is read.
            conn.stop_reading = true;
            conn.close_after_flush = true;
            if conn.idle() {
                return Err(());
            }
        }
        Ok(())
    }

    /// Drains every complete frame currently buffered in `inbuf`.
    fn parse_frames(&mut self, slot: usize) -> Result<(), ()> {
        loop {
            // A replicate hand-off removes the connection mid-loop.
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return Ok(());
            };
            if conn.stop_reading || conn.inbuf.is_empty() || conn.pipeline_full() {
                return Ok(());
            }
            if conn.mode == Mode::Unknown {
                conn.mode = if binary::sniff_binary(conn.inbuf[0]) {
                    ServeStats::bump(&self.shared.stats.binary_connections);
                    Mode::Binary
                } else {
                    Mode::Json
                };
            }
            let conn = self.conns[slot].as_mut().expect("presence checked above");
            match conn.mode {
                Mode::Unknown => unreachable!("mode was just sniffed"),
                Mode::Json => {
                    if conn.inbuf.len() < 4 {
                        return Ok(());
                    }
                    let len = u32::from_be_bytes([
                        conn.inbuf[0],
                        conn.inbuf[1],
                        conn.inbuf[2],
                        conn.inbuf[3],
                    ]) as usize;
                    if len > MAX_FRAME_LEN {
                        // The payload will never be read, so the stream
                        // is desynchronised: answer once, flush, close.
                        ServeStats::bump(&self.shared.stats.requests);
                        let message = format!("frame length {len} exceeds the limit");
                        self.finish_inline(
                            slot,
                            binary::OP_UNKNOWN,
                            Err((ErrorKind::FrameTooLarge, message)),
                            true,
                        );
                        return Ok(());
                    }
                    if conn.inbuf.len() < 4 + len {
                        return Ok(());
                    }
                    let payload: Vec<u8> = conn.inbuf.drain(..4 + len).skip(4).collect();
                    ServeStats::bump(&self.shared.stats.requests);
                    match String::from_utf8(payload) {
                        Ok(text) => {
                            self.take_request(slot, binary::OP_UNKNOWN, Request::parse(&text))
                        }
                        // Same as the threaded path: nothing sane to say
                        // on a non-UTF-8 stream — close, still flushing
                        // what is owed.
                        Err(_) => {
                            conn.stop_reading = true;
                            conn.close_after_flush = true;
                            if conn.idle() {
                                return Err(());
                            }
                            return Ok(());
                        }
                    }
                }
                Mode::Binary => match binary::try_parse(&conn.inbuf) {
                    Ok(None) => return Ok(()),
                    Ok(Some((frame, consumed))) => {
                        conn.inbuf.drain(..consumed);
                        ServeStats::bump(&self.shared.stats.requests);
                        if frame.kind != binary::KIND_REQUEST {
                            self.finish_inline(
                                slot,
                                frame.op,
                                Err((
                                    ErrorKind::BadRequest,
                                    "only request frames may be sent to a server".to_string(),
                                )),
                                false,
                            );
                            continue;
                        }
                        let decoded = binary::decode_request(frame.op, &frame.payload);
                        self.take_request(slot, frame.op, decoded)
                    }
                    Err(defect) => {
                        // The framing itself is broken — answer once
                        // with a typed error, then close (headers carry
                        // no CRC, so nothing past this point is
                        // trustworthy).
                        ServeStats::bump(&self.shared.stats.requests);
                        let kind = match defect {
                            BinaryError::TooLarge(_) => ErrorKind::FrameTooLarge,
                            _ => ErrorKind::BadRequest,
                        };
                        self.finish_inline(
                            slot,
                            binary::OP_UNKNOWN,
                            Err((kind, defect.to_string())),
                            true,
                        );
                        return Ok(());
                    }
                },
            }
        }
    }

    /// Routes one decoded request (or its parse error): special ops are
    /// intercepted on the loop thread, the rest go to the dispatchers.
    fn take_request(&mut self, slot: usize, op: u16, request: Result<Request, RequestError>) {
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match request {
            Err(err) => self.finish_inline_seq(slot, seq, op, Err(err), false),
            Ok(Request::Shutdown) => {
                self.shared.trigger_shutdown();
                let payload = ok_payload(vec![(
                    "message".to_string(),
                    Value::Str("draining".to_string()),
                )]);
                self.finish_inline_seq(slot, seq, op, Ok(payload), true);
            }
            Ok(Request::Replicate { snapshot, base_crc, wal_offset }) => {
                self.hand_off_subscription(slot, seq, op, snapshot, base_crc, wal_offset);
            }
            Ok(request) => {
                let generation = conn.generation;
                conn.inflight += 1;
                ServeStats::raise(
                    &self.shared.stats.pipelined_peak,
                    (conn.inflight + conn.done.len()) as u64,
                );
                let job = DispatchJob { slot, generation, seq, op, request };
                if let Err(refusal) = self.dispatch.try_push(job) {
                    let conn = self.conns[slot].as_mut().expect("checked by caller");
                    conn.inflight -= 1;
                    let err = match refusal {
                        PushError::Full => (
                            ErrorKind::Overloaded,
                            "dispatch queue is full; retry later".to_string(),
                        ),
                        PushError::Closed => {
                            (ErrorKind::ShuttingDown, "server is draining".to_string())
                        }
                    };
                    self.finish_inline_seq(slot, seq, op, Err(err), false);
                }
            }
        }
    }

    /// A `replicate` request turns the connection into a WAL
    /// subscription, which is a blocking streaming protocol — the fd is
    /// pulled out of the loop and handed to a dedicated thread running
    /// the same [`replication::serve_subscription`] as the threaded
    /// path. Only a "clean" connection may convert: JSON mode (the WAL
    /// stream is JSON-framed), nothing pipelined ahead of it, and no
    /// buffered bytes behind it.
    fn hand_off_subscription(
        &mut self,
        slot: usize,
        seq: u64,
        op: u16,
        snapshot: String,
        base_crc: u32,
        wal_offset: u64,
    ) {
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        let refusal = if conn.mode == Mode::Binary {
            Some("replicate requires the JSON protocol (the WAL stream is JSON-framed)")
        } else if conn.inflight > 0 || !conn.done.is_empty() || !conn.outbuf.is_empty() {
            Some("replicate on a pipelined connection is not allowed")
        } else if !conn.inbuf.is_empty() {
            Some("replicate must be the connection's last buffered request")
        } else {
            None
        };
        if let Some(why) = refusal {
            self.finish_inline_seq(
                slot,
                seq,
                op,
                Err((ErrorKind::BadRequest, why.to_string())),
                false,
            );
            return;
        }
        let conn = self.conns[slot].take().expect("checked by caller");
        self.free.push(slot);
        let stream = conn.stream;
        let _ = self.poller.deregister(stream.as_raw_fd());
        if stream.set_nonblocking(false).is_err()
            || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("ck-serve-repl".to_string())
            .spawn(move || {
                let mut stream = stream;
                replication::serve_subscription(&mut stream, &shared, &snapshot, base_crc, wal_offset);
            })
            .expect("spawn replication thread");
        self.handlers.lock().expect("handler registry lock").push(handle);
    }

    /// Completes a request at the *next* sequence number (used on paths
    /// where the request was never assigned one, e.g. framing errors).
    fn finish_inline(
        &mut self,
        slot: usize,
        op: u16,
        outcome: Result<String, RequestError>,
        close_after: bool,
    ) {
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        self.finish_inline_seq(slot, seq, op, outcome, close_after);
    }

    fn finish_inline_seq(
        &mut self,
        slot: usize,
        seq: u64,
        op: u16,
        outcome: Result<String, RequestError>,
        close_after: bool,
    ) {
        let mode = self.conns[slot].as_ref().expect("checked by caller").mode;
        let bytes = self.render(mode, op, outcome);
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        conn.done.insert(seq, bytes);
        if close_after {
            conn.stop_reading = true;
            conn.close_after_flush = true;
        }
    }

    /// Renders a response for the connection's mode, keeping the
    /// ok/error counters honest (this is `respond` from the threaded
    /// path, minus the socket write).
    fn render(&self, mode: Mode, op: u16, outcome: Result<String, RequestError>) -> Vec<u8> {
        let stats = &self.shared.stats;
        let payload = match outcome {
            Ok(payload) => {
                ServeStats::bump(&stats.ok_responses);
                payload
            }
            Err((kind, message)) => {
                ServeStats::bump(&stats.error_responses);
                match kind {
                    ErrorKind::Overloaded => ServeStats::bump(&stats.overloaded),
                    ErrorKind::DeadlineExceeded => ServeStats::bump(&stats.deadline_expired),
                    _ => {}
                }
                error_payload(kind, &message)
            }
        };
        match mode {
            Mode::Binary => {
                let body = binary::encode_response_payload(&payload)
                    .expect("server responses are valid JSON");
                binary::encode_frame(binary::KIND_RESPONSE, op, &body)
            }
            // Unknown cannot happen (a response implies a parsed frame),
            // but JSON is the safe rendering if it ever did.
            Mode::Json | Mode::Unknown => {
                let bytes = payload.as_bytes();
                let mut framed = Vec::with_capacity(4 + bytes.len());
                framed.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                framed.extend_from_slice(bytes);
                framed
            }
        }
    }

    /// Applies every queued completion, then settles the touched slots.
    fn apply_completions(&mut self) {
        let ready = {
            let mut list = self.completions.ready.lock().expect("completion lock");
            std::mem::take(&mut *list)
        };
        let mut touched = Vec::new();
        for completion in ready {
            let Completion { slot, generation, seq, op, outcome } = completion;
            let mode = match self.conns.get(slot).and_then(Option::as_ref) {
                Some(conn) if conn.generation == generation => conn.mode,
                // The connection died while the request ran; the work
                // still counts (and so do its counters).
                _ => {
                    self.render(Mode::Json, op, outcome);
                    continue;
                }
            };
            let bytes = self.render(mode, op, outcome);
            let conn = self.conns[slot].as_mut().expect("liveness just checked");
            conn.inflight -= 1;
            conn.done.insert(seq, bytes);
            touched.push(slot);
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            self.settle(slot);
        }
    }

    /// Delivers in-order responses into the write buffer, flushes,
    /// resumes parsing frames buffered while the pipeline was full, and
    /// updates poller interest / closes as the state machine requires.
    fn settle(&mut self, slot: usize) {
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            deliver(conn);
            if flush(conn).is_err() {
                self.close(slot);
                return;
            }
        }
        // Completions may have freed pipeline slots for frames that were
        // already buffered; those will never raise another epoll event.
        if self.parse_frames(slot).is_err() {
            self.close(slot);
            return;
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        deliver(conn);
        if flush(conn).is_err() {
            self.close(slot);
            return;
        }
        let conn = self.conns[slot].as_mut().expect("just flushed");
        if conn.close_after_flush && conn.idle() {
            self.close(slot);
            return;
        }
        let wants = conn.wants();
        if wants != conn.interest {
            if self.poller.reregister(conn.stream.as_raw_fd(), slot as u64, wants).is_err() {
                self.close(slot);
                return;
            }
            let conn = self.conns[slot].as_mut().expect("just reregistered");
            conn.interest = wants;
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            // conn.stream drops here, closing the fd.
        }
    }
}

/// Moves every response whose turn has come into the write buffer.
fn deliver(conn: &mut Conn) {
    while let Some(bytes) = conn.done.remove(&conn.next_deliver) {
        conn.outbuf.extend_from_slice(&bytes);
        conn.next_deliver += 1;
    }
}

/// Writes as much of `outbuf` as the socket accepts right now.
/// `Err(())` means the connection is dead.
fn flush(conn: &mut Conn) -> Result<(), ()> {
    let mut written = 0;
    while written < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[written..]) {
            Ok(0) => return Err(()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    conn.outbuf.drain(..written);
    Ok(())
}
