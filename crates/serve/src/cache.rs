//! [`ScoreCache`]: an LRU result cache for served scores.
//!
//! Scoring is deterministic — a `(snapshot, function, vertex set)` triple
//! always produces the same `f64` *for one materialization of the graph* —
//! so results can be cached and replayed bit-exactly. The key uses the
//! set's FNV-1a digest ([`crate::protocol::set_digest`]) rather than the
//! members themselves, keeping keys O(1) in set size; the digest is
//! computed once per request and shared across that request's functions.
//!
//! Live mutations add the fourth key component: the snapshot's
//! materialization [`CacheKey::version`]. A committed mutation batch bumps
//! the version, so probes (which always use the current version) can never
//! hit a score computed against a superseded graph — even if a slow
//! scoring job inserts its stale result *after* the commit. The stale
//! entries are then purged eagerly with [`ScoreCache::invalidate_stale`],
//! which counts them as invalidations (distinct from capacity evictions).
//!
//! The cache is a plain (non-thread-safe) structure; the server wraps it
//! in a mutex. Recency is tracked with a monotone stamp per entry plus a
//! stamp-ordered index, giving O(log n) touch/evict without unsafe code.

use circlekit_scoring::ScoringFunction;
use std::collections::{BTreeMap, HashMap};

/// Identifies one cached score.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot id the set was scored against.
    pub snapshot: String,
    /// Materialization version of that snapshot (see
    /// [`crate::LoadedSnapshot::version`]).
    pub version: u64,
    /// Scoring function.
    pub function: ScoringFunction,
    /// Digest of the set's members.
    pub digest: u64,
}

#[derive(Debug)]
struct Entry {
    score: f64,
    stamp: u64,
}

/// Hit/miss/eviction counters of a [`ScoreCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries purged because a mutation superseded their snapshot
    /// version.
    pub invalidations: u64,
    /// Live entries right now.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, 0.0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Least-recently-used map from [`CacheKey`] to a score.
#[derive(Debug)]
pub struct ScoreCache {
    capacity: usize,
    entries: HashMap<CacheKey, Entry>,
    by_stamp: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl ScoreCache {
    /// Creates a cache holding at most `capacity` scores. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> ScoreCache {
        ScoreCache {
            capacity,
            entries: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<f64> {
        let Some(entry) = self.entries.get_mut(key) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        let old = entry.stamp;
        entry.stamp = self.next_stamp;
        self.next_stamp += 1;
        let score = entry.score;
        let moved = self.by_stamp.remove(&old).expect("stamp index in sync");
        self.by_stamp.insert(self.next_stamp - 1, moved);
        Some(score)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: CacheKey, score: f64) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(old) = self.entries.insert(key.clone(), Entry { score, stamp }) {
            self.by_stamp.remove(&old.stamp);
        } else if self.entries.len() > self.capacity {
            let (&oldest, _) = self.by_stamp.iter().next().expect("non-empty index");
            let victim = self.by_stamp.remove(&oldest).expect("stamp index in sync");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.by_stamp.insert(stamp, key);
    }

    /// Purges every entry of `snapshot` whose version is below
    /// `current_version` — the commit-time invalidation of all (snapshot,
    /// function, set) keys a mutation batch touched. Returns how many
    /// entries were removed; they count as invalidations, not evictions.
    pub fn invalidate_stale(&mut self, snapshot: &str, current_version: u64) -> u64 {
        let stale: Vec<u64> = self
            .by_stamp
            .iter()
            .filter(|(_, key)| key.snapshot == snapshot && key.version < current_version)
            .map(|(&stamp, _)| stamp)
            .collect();
        for stamp in &stale {
            let key = self.by_stamp.remove(stamp).expect("stamp index in sync");
            self.entries.remove(&key);
        }
        self.invalidations += stale.len() as u64;
        stale.len() as u64
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(digest: u64) -> CacheKey {
        CacheKey {
            snapshot: "gp".to_string(),
            version: 0,
            function: ScoringFunction::Conductance,
            digest,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = ScoreCache::new(4);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), 0.25);
        assert_eq!(cache.get(&key(1)), Some(0.25));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_ratio(), 0.5);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&key(1)), Some(1.0));
        cache.insert(key(3), 3.0);
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1)), Some(1.0));
        assert_eq!(cache.get(&key(3)), Some(3.0));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn reinserting_a_key_does_not_grow_or_evict() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1), 1.0);
        cache.insert(key(1), 1.5);
        cache.insert(key(2), 2.0);
        assert_eq!(cache.get(&key(1)), Some(1.5));
        assert_eq!(cache.get(&key(2)), Some(2.0));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ScoreCache::new(0);
        cache.insert(key(1), 1.0);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn distinct_functions_and_snapshots_do_not_collide() {
        let mut cache = ScoreCache::new(8);
        cache.insert(key(7), 1.0);
        let other_fn = CacheKey { function: ScoringFunction::Modularity, ..key(7) };
        let other_snap = CacheKey { snapshot: "lj".to_string(), ..key(7) };
        assert_eq!(cache.get(&other_fn), None);
        assert_eq!(cache.get(&other_snap), None);
        cache.insert(other_fn.clone(), 2.0);
        cache.insert(other_snap.clone(), 3.0);
        assert_eq!(cache.get(&key(7)), Some(1.0));
        assert_eq!(cache.get(&other_fn), Some(2.0));
        assert_eq!(cache.get(&other_snap), Some(3.0));
    }

    #[test]
    fn versions_do_not_collide_and_stale_ones_invalidate() {
        let mut cache = ScoreCache::new(8);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        let v1 = CacheKey { version: 1, ..key(1) };
        cache.insert(v1.clone(), 10.0);
        // An unrelated snapshot must survive the purge.
        let other = CacheKey { snapshot: "lj".to_string(), ..key(9) };
        cache.insert(other.clone(), 9.0);

        assert_eq!(cache.invalidate_stale("gp", 1), 2);
        assert_eq!(cache.get(&key(1)), None, "stale version purged");
        assert_eq!(cache.get(&key(2)), None, "stale version purged");
        assert_eq!(cache.get(&v1), Some(10.0), "current version survives");
        assert_eq!(cache.get(&other), Some(9.0), "other snapshot survives");
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 2);
        assert_eq!(stats.evictions, 0, "invalidation is not eviction");
        assert_eq!(stats.entries, 2);
        // Idempotent: nothing stale remains.
        assert_eq!(cache.invalidate_stale("gp", 1), 0);
    }

    #[test]
    fn invalidation_keeps_the_lru_index_consistent() {
        let mut cache = ScoreCache::new(2);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.invalidate_stale("gp", 5);
        // The cache is empty; inserts and eviction keep working.
        cache.insert(CacheKey { version: 5, ..key(1) }, 1.0);
        cache.insert(CacheKey { version: 5, ..key(2) }, 2.0);
        cache.insert(CacheKey { version: 5, ..key(3) }, 3.0);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
    }
}
