//! A small blocking client for the wire protocol, used by the `query`
//! CLI subcommand, the `loadgen` harness, and the integration tests.
//!
//! One [`Client`] owns one TCP connection and issues requests strictly
//! in sequence (the protocol is request/response, no pipelining). Server
//! errors arrive as typed [`ClientError::Server`] values carrying the
//! [`ErrorKind`] so callers can react to `overloaded` or
//! `deadline-exceeded` distinctly from transport failures.

use crate::protocol::{read_frame, wire, write_frame, ErrorKind, FrameError};
use circlekit_live::Mutation;
use serde_json::Value;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading the socket failed.
    Io(std::io::Error),
    /// The response frame was malformed.
    Frame(FrameError),
    /// The server answered `ok:false` with a typed error.
    Server {
        /// The machine-readable kind (unknown kinds map to `internal`).
        kind: ErrorKind,
        /// The human-readable message.
        message: String,
    },
    /// The server answered something that is not a protocol response.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
            ClientError::Malformed(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether this is a typed server refusal of the given kind.
    pub fn is_kind(&self, want: ErrorKind) -> bool {
        matches!(self, ClientError::Server { kind, .. } if *kind == want)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Like [`Client::connect`] but retries for up to `patience`, for
    /// scripts racing a server that is still binding its port.
    ///
    /// # Errors
    ///
    /// The last connection failure once patience runs out.
    pub fn connect_with_patience<A: ToSocketAddrs + Clone>(
        addr: A,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= patience => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sets a read timeout for responses (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one already-rendered JSON request and returns the parsed
    /// response object. `ok:false` responses become
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, framing, or typed server errors.
    pub fn call_raw(&mut self, request: &str) -> Result<Value, ClientError> {
        write_frame(&mut self.stream, request)?;
        self.stream.flush()?;
        let payload = match read_frame(&mut self.stream) {
            Ok(payload) => payload,
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(other) => return Err(ClientError::Frame(other)),
        };
        let value: Value = serde_json::from_str(&payload)
            .map_err(|e| ClientError::Malformed(format!("response is not JSON: {e}")))?;
        match wire::get(&value, "ok") {
            Some(Value::Bool(true)) => Ok(value),
            Some(Value::Bool(false)) => {
                let error = wire::get(&value, "error");
                let kind = error
                    .and_then(|e| match wire::get(e, "kind") {
                        Some(Value::Str(name)) => ErrorKind::from_name(name),
                        _ => None,
                    })
                    .unwrap_or(ErrorKind::Internal);
                let message = error
                    .and_then(|e| match wire::get(e, "message") {
                        Some(Value::Str(m)) => Some(m.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                Err(ClientError::Server { kind, message })
            }
            _ => Err(ClientError::Malformed(
                "response lacks a boolean \"ok\" field".to_string(),
            )),
        }
    }

    /// Sends an op with extra fields.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn call(
        &mut self,
        op: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        let mut map = vec![("op".to_string(), Value::Str(op.to_string()))];
        map.extend(fields);
        self.call_raw(&Value::Map(map).to_string())
    }

    /// `health` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.call("health", Vec::new())
    }

    /// `stats` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.call("stats", Vec::new())
    }

    /// `list_snapshots` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn list_snapshots(&mut self) -> Result<Value, ClientError> {
        self.call("list_snapshots", Vec::new())
    }

    /// `list_groups` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn list_groups(&mut self, snapshot: &str) -> Result<Value, ClientError> {
        self.call(
            "list_groups",
            vec![("snapshot".to_string(), Value::Str(snapshot.to_string()))],
        )
    }

    /// `score_group` op; `functions` of `None` requests the paper's four.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn score_group(
        &mut self,
        snapshot: &str,
        group: usize,
        functions: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("snapshot".to_string(), Value::Str(snapshot.to_string())),
            ("group".to_string(), Value::UInt(group as u64)),
        ];
        if let Some(spec) = functions {
            fields.push(("functions".to_string(), Value::Str(spec.to_string())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
        self.call("score_group", fields)
    }

    /// `score_set` op over explicit members.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn score_set(
        &mut self,
        snapshot: &str,
        members: &[u32],
        functions: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("snapshot".to_string(), Value::Str(snapshot.to_string())),
            (
                "members".to_string(),
                Value::Seq(members.iter().map(|&m| Value::UInt(m as u64)).collect()),
            ),
        ];
        if let Some(spec) = functions {
            fields.push(("functions".to_string(), Value::Str(spec.to_string())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
        self.call("score_set", fields)
    }

    /// `baseline` op: the group against seeded size-matched random walks.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn baseline(
        &mut self,
        snapshot: &str,
        group: usize,
        samples: usize,
        seed: u64,
    ) -> Result<Value, ClientError> {
        self.call(
            "baseline",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                ("group".to_string(), Value::UInt(group as u64)),
                ("samples".to_string(), Value::UInt(samples as u64)),
                ("seed".to_string(), Value::UInt(seed)),
            ],
        )
    }

    /// `apply_mutations` op: commit a batch of live mutations (sent in
    /// their one-line text form).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn apply_mutations(
        &mut self,
        snapshot: &str,
        mutations: &[Mutation],
    ) -> Result<Value, ClientError> {
        self.call(
            "apply_mutations",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                (
                    "mutations".to_string(),
                    Value::Seq(mutations.iter().map(|m| Value::Str(m.to_line())).collect()),
                ),
            ],
        )
    }

    /// `compact` op: fold the snapshot's WAL back into its CKS1 file.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn compact(&mut self, snapshot: &str) -> Result<Value, ClientError> {
        self.call(
            "compact",
            vec![("snapshot".to_string(), Value::Str(snapshot.to_string()))],
        )
    }

    /// `watch_scores` op: one group's paper scores straight from the
    /// incrementally maintained aggregates, with the mutation version.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn watch_scores(
        &mut self,
        snapshot: &str,
        group: usize,
    ) -> Result<Value, ClientError> {
        self.call(
            "watch_scores",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                ("group".to_string(), Value::UInt(group as u64)),
            ],
        )
    }

    /// `shutdown` op: asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call("shutdown", Vec::new())
    }

    /// Extracts the `scores` array of a scoring response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Malformed`] when the field is absent or ill-typed.
    pub fn scores_of(response: &Value) -> Result<Vec<f64>, ClientError> {
        wire::get_scores(response, "scores")
            .map_err(|(_, message)| ClientError::Malformed(message))
    }
}
