//! A small blocking client for the wire protocol, used by the `query`
//! CLI subcommand, the `loadgen` harness, and the integration tests.
//!
//! One [`Client`] owns one TCP connection and issues requests strictly
//! in sequence (the protocol is request/response, no pipelining). Server
//! errors arrive as typed [`ClientError::Server`] values carrying the
//! [`ErrorKind`] so callers can react to `overloaded` or
//! `deadline-exceeded` distinctly from transport failures.

use crate::binary;
use crate::protocol::{read_frame_patiently, wire, write_frame, ErrorKind, FrameError, Request};
use circlekit_live::Mutation;
use serde_json::Value;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How often a deadline-bound read wakes up to check the clock. The
/// socket timeout is this slice, not the whole deadline, so a response
/// that lands mid-wait is picked up promptly and a dead peer cannot pin
/// the call past the deadline.
const READ_SLICE: Duration = Duration::from_millis(50);

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading the socket failed.
    Io(std::io::Error),
    /// The response frame was malformed.
    Frame(FrameError),
    /// The configured client-side timeout expired before a response
    /// arrived (see [`Client::set_timeout`]). The connection is left in
    /// an unknown mid-frame state and should be discarded.
    Timeout {
        /// The timeout that expired.
        after: Duration,
    },
    /// No endpoint in a failover set is currently accepting writes (see
    /// [`crate::failover::FailoverClient`]). Writes fail fast rather
    /// than risking split-brain by retrying against a replica.
    NoPrimary {
        /// One line per endpoint explaining why it was rejected.
        detail: String,
    },
    /// The server answered `ok:false` with a typed error.
    Server {
        /// The machine-readable kind (unknown kinds map to `internal`).
        kind: ErrorKind,
        /// The human-readable message.
        message: String,
    },
    /// The server answered something that is not a protocol response.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame: {e}"),
            ClientError::Timeout { after } => {
                write!(f, "deadline-exceeded: no response within {after:?}")
            }
            ClientError::NoPrimary { detail } => {
                write!(f, "no-primary: no endpoint accepts writes ({detail})")
            }
            ClientError::Server { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
            ClientError::Malformed(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether this is a typed server refusal of the given kind.
    pub fn is_kind(&self, want: ErrorKind) -> bool {
        matches!(self, ClientError::Server { kind, .. } if *kind == want)
    }
}

/// Connection-time knobs for [`Client::connect_with_options`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientOptions {
    /// Abort a connection attempt after this long (`None` uses the OS
    /// default, which can be minutes against a black-holed address).
    pub connect_timeout: Option<Duration>,
    /// Per-call response deadline, as in [`Client::set_timeout`].
    pub read_timeout: Option<Duration>,
    /// Speak CKP1 binary frames ([`crate::binary`]) instead of
    /// length-prefixed JSON. Responses decode to the exact same
    /// [`Value`] tree either way, so everything downstream of a call is
    /// unaffected by the wire mode.
    pub binary: bool,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    read_timeout: Option<Duration>,
    binary: bool,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with_options(addr, ClientOptions::default())
    }

    /// Connects with explicit connect/read timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; a bounded attempt that exhausts
    /// every resolved address yields the last failure.
    pub fn connect_with_options<A: ToSocketAddrs>(
        addr: A,
        options: ClientOptions,
    ) -> Result<Client, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(ClientError::Io(last.unwrap_or_else(|| {
                            std::io::Error::other("address resolved to nothing")
                        })))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        let mut client = Client { stream, read_timeout: None, binary: options.binary };
        client.set_timeout(options.read_timeout)?;
        Ok(client)
    }

    /// Like [`Client::connect`] but retries for up to `patience`, for
    /// scripts racing a server that is still binding its port.
    ///
    /// # Errors
    ///
    /// The last connection failure once patience runs out.
    pub fn connect_with_patience<A: ToSocketAddrs + Clone>(
        addr: A,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= patience => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sets the per-call response deadline (`None` blocks forever). When
    /// set, a call whose response does not fully arrive in time fails
    /// with [`ClientError::Timeout`] — even against a peer that accepted
    /// the connection and then went silent.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        // The socket timeout is a short slice so the deadline check in
        // `call_raw` actually runs; the full deadline lives here.
        self.stream
            .set_read_timeout(timeout.map(|t| t.min(READ_SLICE)))?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Switches this connection's wire mode. Only safe between calls —
    /// the server fixes a connection's protocol at its first byte, so
    /// flip this before the first request (connections made by
    /// [`Client::connect_with_patience`] start in JSON mode).
    pub fn set_binary(&mut self, on: bool) {
        self.binary = on;
    }

    /// Whether calls are sent as CKP1 binary frames.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Sends one already-rendered JSON request and returns the parsed
    /// response object. `ok:false` responses become
    /// [`ClientError::Server`]. In binary mode the request is re-encoded
    /// as a CKP1 frame (the JSON text is the lingua franca of every
    /// caller); the response decodes to the same [`Value`] tree a JSON
    /// response parses to.
    ///
    /// # Errors
    ///
    /// Transport, framing, or typed server errors.
    pub fn call_raw(&mut self, request: &str) -> Result<Value, ClientError> {
        if self.binary {
            return self.call_raw_binary(request);
        }
        write_frame(&mut self.stream, request)?;
        self.stream.flush()?;
        let deadline = self.read_timeout.map(|t| (t, Instant::now() + t));
        let read = read_frame_patiently(&mut self.stream, |_| match deadline {
            Some((_, at)) => Instant::now() < at,
            None => true,
        });
        let payload = match read {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                let (after, _) = deadline.expect("only a deadline abandons the read");
                return Err(ClientError::Timeout { after });
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(other) => return Err(ClientError::Frame(other)),
        };
        let value: Value = serde_json::from_str(&payload)
            .map_err(|e| ClientError::Malformed(format!("response is not JSON: {e}")))?;
        interpret_envelope(value)
    }

    fn call_raw_binary(&mut self, request: &str) -> Result<Value, ClientError> {
        // Validate through the same parser the server uses, then encode:
        // a request the server would refuse is refused here with the
        // identical typed error, before it touches the wire.
        let parsed = Request::parse(request)
            .map_err(|(kind, message)| ClientError::Server { kind, message })?;
        let (op, payload) = binary::encode_request(&parsed);
        binary::write_frame(&mut self.stream, binary::KIND_REQUEST, op, &payload)?;
        self.stream.flush()?;
        let deadline = self.read_timeout.map(|t| (t, Instant::now() + t));
        let read = binary::read_frame_patiently(&mut self.stream, |_| match deadline {
            Some((_, at)) => Instant::now() < at,
            None => true,
        });
        let frame = match read {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                let (after, _) = deadline.expect("only a deadline abandons the read");
                return Err(ClientError::Timeout { after });
            }
            Err(binary::ReadError::Frame(FrameError::Io(e))) => return Err(ClientError::Io(e)),
            Err(binary::ReadError::Frame(other)) => return Err(ClientError::Frame(other)),
            Err(binary::ReadError::Malformed(defect)) => {
                return Err(ClientError::Malformed(defect.to_string()))
            }
        };
        if frame.kind != binary::KIND_RESPONSE {
            return Err(ClientError::Malformed(format!(
                "expected a response frame, got kind {}",
                frame.kind
            )));
        }
        let value = binary::decode_response_payload(&frame.payload)
            .map_err(ClientError::Malformed)?;
        interpret_envelope(value)
    }

    /// Sends an op with extra fields.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn call(
        &mut self,
        op: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        let mut map = vec![("op".to_string(), Value::Str(op.to_string()))];
        map.extend(fields);
        self.call_raw(&Value::Map(map).to_string())
    }

    /// `health` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.call("health", Vec::new())
    }

    /// `stats` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.call("stats", Vec::new())
    }

    /// `list_snapshots` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn list_snapshots(&mut self) -> Result<Value, ClientError> {
        self.call("list_snapshots", Vec::new())
    }

    /// `list_groups` op.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn list_groups(&mut self, snapshot: &str) -> Result<Value, ClientError> {
        self.call(
            "list_groups",
            vec![("snapshot".to_string(), Value::Str(snapshot.to_string()))],
        )
    }

    /// `score_group` op; `functions` of `None` requests the paper's four.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn score_group(
        &mut self,
        snapshot: &str,
        group: usize,
        functions: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("snapshot".to_string(), Value::Str(snapshot.to_string())),
            ("group".to_string(), Value::UInt(group as u64)),
        ];
        if let Some(spec) = functions {
            fields.push(("functions".to_string(), Value::Str(spec.to_string())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
        self.call("score_group", fields)
    }

    /// `score_set` op over explicit members.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn score_set(
        &mut self,
        snapshot: &str,
        members: &[u32],
        functions: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("snapshot".to_string(), Value::Str(snapshot.to_string())),
            (
                "members".to_string(),
                Value::Seq(members.iter().map(|&m| Value::UInt(m as u64)).collect()),
            ),
        ];
        if let Some(spec) = functions {
            fields.push(("functions".to_string(), Value::Str(spec.to_string())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
        self.call("score_set", fields)
    }

    /// `baseline` op: the group against seeded size-matched random walks.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn baseline(
        &mut self,
        snapshot: &str,
        group: usize,
        samples: usize,
        seed: u64,
    ) -> Result<Value, ClientError> {
        self.call(
            "baseline",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                ("group".to_string(), Value::UInt(group as u64)),
                ("samples".to_string(), Value::UInt(samples as u64)),
                ("seed".to_string(), Value::UInt(seed)),
            ],
        )
    }

    /// `apply_mutations` op: commit a batch of live mutations (sent in
    /// their one-line text form).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn apply_mutations(
        &mut self,
        snapshot: &str,
        mutations: &[Mutation],
    ) -> Result<Value, ClientError> {
        self.call(
            "apply_mutations",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                (
                    "mutations".to_string(),
                    Value::Seq(mutations.iter().map(|m| Value::Str(m.to_line())).collect()),
                ),
            ],
        )
    }

    /// `compact` op: fold the snapshot's WAL back into its CKS1 file.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn compact(&mut self, snapshot: &str) -> Result<Value, ClientError> {
        self.call(
            "compact",
            vec![("snapshot".to_string(), Value::Str(snapshot.to_string()))],
        )
    }

    /// `watch_scores` op: one group's paper scores straight from the
    /// incrementally maintained aggregates, with the mutation version.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn watch_scores(
        &mut self,
        snapshot: &str,
        group: usize,
    ) -> Result<Value, ClientError> {
        self.call(
            "watch_scores",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                ("group".to_string(), Value::UInt(group as u64)),
            ],
        )
    }

    /// `suggest_circles` op: seeded structural circle discovery for one
    /// ego, served from the live overlay when the snapshot has one.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn suggest_circles(
        &mut self,
        snapshot: &str,
        ego: u32,
        seed: u64,
        min_size: usize,
        top: usize,
    ) -> Result<Value, ClientError> {
        self.call(
            "suggest_circles",
            vec![
                ("snapshot".to_string(), Value::Str(snapshot.to_string())),
                ("ego".to_string(), Value::UInt(ego as u64)),
                ("seed".to_string(), Value::UInt(seed)),
                ("min_size".to_string(), Value::UInt(min_size as u64)),
                ("top".to_string(), Value::UInt(top as u64)),
            ],
        )
    }

    /// `repl_status` op: the server's replication role, per-snapshot
    /// committed offsets, and subscriber/replica progress.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn repl_status(&mut self) -> Result<Value, ClientError> {
        self.call("repl_status", Vec::new())
    }

    /// `shutdown` op: asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call("shutdown", Vec::new())
    }

    /// Extracts the `scores` array of a scoring response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Malformed`] when the field is absent or ill-typed.
    pub fn scores_of(response: &Value) -> Result<Vec<f64>, ClientError> {
        wire::get_scores(response, "scores")
            .map_err(|(_, message)| ClientError::Malformed(message))
    }
}

/// Turns a decoded response envelope into `Ok(tree)` or a typed
/// [`ClientError::Server`] — shared by the JSON and binary read paths so
/// both modes refuse and succeed identically.
fn interpret_envelope(value: Value) -> Result<Value, ClientError> {
    match wire::get(&value, "ok") {
        Some(Value::Bool(true)) => Ok(value),
        Some(Value::Bool(false)) => {
            let error = wire::get(&value, "error");
            let kind = error
                .and_then(|e| match wire::get(e, "kind") {
                    Some(Value::Str(name)) => ErrorKind::from_name(name),
                    _ => None,
                })
                .unwrap_or(ErrorKind::Internal);
            let message = error
                .and_then(|e| match wire::get(e, "message") {
                    Some(Value::Str(m)) => Some(m.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            Err(ClientError::Server { kind, message })
        }
        _ => Err(ClientError::Malformed(
            "response lacks a boolean \"ok\" field".to_string(),
        )),
    }
}
