//! The CKSP wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Frames longer than [`MAX_FRAME_LEN`] are rejected before any payload
//! byte is read, so a hostile length prefix can never make the server
//! allocate unboundedly.
//!
//! Requests are JSON objects with an `"op"` field; every other field is
//! op-specific (see [`Request`]). Responses always carry `"ok"`: `true`
//! with op-specific result fields, or `false` with a typed
//! `{"error":{"kind":...,"message":...}}` object whose kind is one of
//! [`ErrorKind`]. Scores travel as plain JSON numbers (Rust's shortest
//! round-trip `f64` formatting, so the bits survive the wire exactly);
//! non-finite scores serialise as `null` and deserialise as NaN.

use circlekit_live::Mutation;
use circlekit_scoring::ScoringFunction;
use serde_json::Value;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload length (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Default number of random-walk baseline samples per request.
pub const DEFAULT_BASELINE_SAMPLES: usize = 10;

/// Typed failure classes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparsable or semantically invalid request.
    BadRequest,
    /// The request queue is full; retry later.
    Overloaded,
    /// Unknown snapshot id or group index.
    NotFound,
    /// The request's deadline expired before (or while) it was served.
    DeadlineExceeded,
    /// A frame announced a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLarge,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// A write (or a replication subscription) was sent to a replica —
    /// only the primary accepts mutations.
    NotPrimary,
    /// A replication handshake or stream does not match this server's
    /// history (wrong base CRC, or an offset that is not a committed
    /// frame boundary).
    ReplicationMismatch,
    /// A coordinator could not gather every shard's partial result; the
    /// message names the unreachable shard. Scatter-gather answers are
    /// exact or refused — never silently partial.
    ShardUnavailable,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The stable wire name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::NotFound => "not-found",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::FrameTooLarge => "frame-too-large",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::NotPrimary => "not-primary",
            ErrorKind::ReplicationMismatch => "replication-mismatch",
            ErrorKind::ShardUnavailable => "shard-unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::NotFound,
            ErrorKind::DeadlineExceeded,
            ErrorKind::FrameTooLarge,
            ErrorKind::ShuttingDown,
            ErrorKind::NotPrimary,
            ErrorKind::ReplicationMismatch,
            ErrorKind::ShardUnavailable,
            ErrorKind::Internal,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A request-level failure: the typed kind plus a human-readable message.
pub type RequestError = (ErrorKind, String);

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Health,
    /// Service counters (queue, cache, batching).
    Stats,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Enumerate loaded snapshots.
    ListSnapshots,
    /// Enumerate the group sizes of one snapshot.
    ListGroups {
        /// Snapshot id.
        snapshot: String,
    },
    /// Score one stored group of a snapshot.
    ScoreGroup {
        /// Snapshot id.
        snapshot: String,
        /// Group index within the snapshot.
        group: usize,
        /// Functions to evaluate (defaults to the paper's four).
        functions: Vec<ScoringFunction>,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Score an ad-hoc vertex set.
    ScoreSet {
        /// Snapshot id.
        snapshot: String,
        /// The set's members (validated against the snapshot's graph).
        members: Vec<u32>,
        /// Functions to evaluate (defaults to the paper's four).
        functions: Vec<ScoringFunction>,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Score a stored group against its size-matched random-walk
    /// baseline (the paper's §V-A comparison), seeded so the response is
    /// deterministic.
    Baseline {
        /// Snapshot id.
        snapshot: String,
        /// Group index within the snapshot.
        group: usize,
        /// Functions to evaluate (defaults to the paper's four).
        functions: Vec<ScoringFunction>,
        /// Number of size-matched random-walk sets to draw.
        samples: usize,
        /// Root seed of the per-walk RNG streams.
        seed: u64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Apply a batch of live mutations to a snapshot. The batch is
    /// WAL-committed atomically up to the first rejection; a commit bumps
    /// the snapshot's materialization version and invalidates the cached
    /// scores it touched.
    ApplyMutations {
        /// Snapshot id.
        snapshot: String,
        /// The mutations, in application order.
        mutations: Vec<Mutation>,
    },
    /// Fold a snapshot's WAL back into its CKS1 file (atomic tmp +
    /// rename). The composed graph is unchanged, so no cache entry is
    /// invalidated.
    Compact {
        /// Snapshot id.
        snapshot: String,
    },
    /// Read one group's paper scores straight from the incrementally
    /// maintained aggregates — O(1), no scoring job, no queueing — along
    /// with the snapshot's current mutation version.
    WatchScores {
        /// Snapshot id.
        snapshot: String,
        /// Group index within the snapshot.
        group: usize,
    },
    /// Suggest circles for one ego: seeded structural discovery over the
    /// ego-induced subgraph (live overlay when the snapshot has one,
    /// otherwise the materialized graph). Responses are cached per
    /// `(snapshot, ego, parameters)` under the version-keyed scheme;
    /// mutations touching an ego's neighbourhood evict only that ego.
    SuggestCircles {
        /// Snapshot id.
        snapshot: String,
        /// The ego whose neighbourhood is clustered.
        ego: u32,
        /// Root seed of the tie-break streams.
        seed: u64,
        /// Smallest candidate circle returned.
        min_size: usize,
        /// Ranked candidates returned (0 = all).
        top: usize,
    },
    /// Subscribe this connection to a snapshot's WAL stream. The
    /// subscriber presents the CRC of its own base snapshot file and the
    /// offset (committed record bytes past the WAL header) it has
    /// already applied; the primary replays from that offset, then tails
    /// live batches on the same connection until either side closes.
    Replicate {
        /// Snapshot id.
        snapshot: String,
        /// CRC-32 of the subscriber's base snapshot file. Must equal the
        /// primary's — otherwise the two WALs describe different
        /// histories and the stream is refused (`replication-mismatch`).
        base_crc: u32,
        /// Last WAL offset the subscriber has durably applied.
        wal_offset: u64,
    },
    /// Acknowledges a replication batch: sent by the subscriber, on the
    /// subscription connection, after the batch is applied and durably
    /// appended to its own WAL.
    ReplAck {
        /// The `next_offset` of the acknowledged batch.
        offset: u64,
    },
    /// Replication status: the server's role, per-snapshot stream
    /// positions and, on a primary, the offsets its subscribers acked.
    ReplStatus,
    /// The scatter half of coordinator scoring: return this shard's raw
    /// partial `SetStats` terms for one *global* vertex set (only owned
    /// members contribute). The set is named either by a group index
    /// (every shard sub-snapshot carries the full group list) or by
    /// explicit members — exactly one of the two. The response echoes
    /// the shard manifest so the gatherer can refuse mismatched
    /// topologies.
    ShardStats {
        /// Snapshot id.
        snapshot: String,
        /// Group index naming the set (mutually exclusive with
        /// `members`).
        group: Option<usize>,
        /// The global set's members (mutually exclusive with `group`).
        members: Option<Vec<u32>>,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Test-only: occupy a worker for `millis`. Rejected unless the
    /// server was started with `debug_ops` (integration tests use it to
    /// fill the queue deterministically).
    DebugSleep {
        /// How long the worker sleeps.
        millis: u64,
    },
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_LEN`] with
/// `InvalidInput`.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds {MAX_FRAME_LEN}", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Why [`read_frame`] stopped without producing a payload.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload is not UTF-8.
    NotUtf8,
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// [`FrameError::Closed`] on EOF at a frame boundary, and the other
/// [`FrameError`] variants for every malformed input class.
pub fn read_frame<R: Read>(r: &mut R) -> Result<String, FrameError> {
    match read_frame_patiently(r, |_| true) {
        Ok(Some(payload)) => Ok(payload),
        Ok(None) => unreachable!("keep_waiting never gives up"),
        Err(e) => Err(e),
    }
}

/// Like [`read_frame`], but tolerant of read timeouts (`WouldBlock` /
/// `TimedOut`): partial progress is preserved and `keep_waiting` decides
/// whether to keep going. Its argument says whether the frame has
/// started (any byte consumed); returning `false` abandons the read and
/// yields `Ok(None)`.
///
/// This is what lets a server poll a shutdown flag between timeouts
/// without ever desynchronising the stream on a slow writer.
///
/// # Errors
///
/// As [`read_frame`], except timeouts are routed to `keep_waiting`
/// instead of surfacing as [`FrameError::Io`].
pub fn read_frame_patiently<R: Read>(
    r: &mut R,
    mut keep_waiting: impl FnMut(bool) -> bool,
) -> Result<Option<String>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if !keep_waiting(filled > 0) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if !keep_waiting(true) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::NotUtf8)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Field-extraction helpers over the JSON [`Value`] tree.
pub mod wire {
    use super::*;

    /// Looks a key up in a JSON object.
    pub fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
        match value {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required string field.
    pub fn get_str(value: &Value, key: &str) -> Result<String, RequestError> {
        match get(value, key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(other) => Err(bad(format!("field {key:?} must be a string, got {other}"))),
            None => Err(bad(format!("missing field {key:?}"))),
        }
    }

    /// An optional unsigned integer field.
    pub fn get_u64_opt(value: &Value, key: &str) -> Result<Option<u64>, RequestError> {
        match get(value, key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::UInt(u)) => Ok(Some(*u)),
            Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
            Some(other) => {
                Err(bad(format!("field {key:?} must be a non-negative integer, got {other}")))
            }
        }
    }

    /// A required unsigned integer field.
    pub fn get_u64(value: &Value, key: &str) -> Result<u64, RequestError> {
        get_u64_opt(value, key)?.ok_or_else(|| bad(format!("missing field {key:?}")))
    }

    /// A numeric field widened to `f64`; `null` decodes as NaN (the wire
    /// encoding of non-finite scores).
    pub fn as_f64(value: &Value) -> Option<f64> {
        match value {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// A required array of scores (`f64`, `null` ⇒ NaN).
    pub fn get_scores(value: &Value, key: &str) -> Result<Vec<f64>, RequestError> {
        let Some(Value::Seq(items)) = get(value, key) else {
            return Err(bad(format!("missing array field {key:?}")));
        };
        items
            .iter()
            .map(|v| as_f64(v).ok_or_else(|| bad(format!("field {key:?} holds a non-number"))))
            .collect()
    }

    /// A required array of `u32` vertex ids.
    pub fn get_u32_array(value: &Value, key: &str) -> Result<Vec<u32>, RequestError> {
        let Some(Value::Seq(items)) = get(value, key) else {
            return Err(bad(format!("missing array field {key:?}")));
        };
        items
            .iter()
            .map(|v| match v {
                Value::UInt(u) if *u <= u64::from(u32::MAX) => Ok(*u as u32),
                Value::Int(i) if *i >= 0 && *i <= i64::from(u32::MAX) => Ok(*i as u32),
                other => Err(bad(format!("field {key:?} holds a non-vertex-id value {other}"))),
            })
            .collect()
    }

    /// Encodes one score: finite values stay numbers, non-finite become
    /// `null` (NaN on the way back in).
    pub fn score_value(score: f64) -> Value {
        if score.is_finite() {
            Value::Float(score)
        } else {
            Value::Null
        }
    }

    /// Encodes a score slice as a JSON array.
    pub fn score_array(scores: &[f64]) -> Value {
        Value::Seq(scores.iter().map(|&s| score_value(s)).collect())
    }

    pub(super) fn bad(message: String) -> RequestError {
        (ErrorKind::BadRequest, message)
    }
}

/// Parses the scoring-function list of a request: absent or `null` means
/// the paper's four functions; `"all"` as a string means the full
/// 13-function suite.
fn parse_functions(value: &Value) -> Result<Vec<ScoringFunction>, RequestError> {
    match wire::get(value, "functions") {
        None | Some(Value::Null) => Ok(ScoringFunction::PAPER.to_vec()),
        Some(Value::Str(s)) if s == "all" => Ok(ScoringFunction::ALL.to_vec()),
        Some(Value::Str(s)) if s == "paper" => Ok(ScoringFunction::PAPER.to_vec()),
        Some(Value::Seq(items)) => {
            if items.is_empty() {
                return Err(wire::bad("field \"functions\" must not be empty".to_string()));
            }
            items
                .iter()
                .map(|item| match item {
                    Value::Str(name) => ScoringFunction::from_name(name).ok_or_else(|| {
                        wire::bad(format!("unknown scoring function {name:?}"))
                    }),
                    other => Err(wire::bad(format!(
                        "field \"functions\" holds a non-string value {other}"
                    ))),
                })
                .collect()
        }
        Some(other) => Err(wire::bad(format!(
            "field \"functions\" must be an array of names, \"paper\", or \"all\", got {other}"
        ))),
    }
}

/// Parses the `mutations` array of an `apply_mutations` request. Each
/// element is either the one-line text form (`"add-edge 3 17"`) or an
/// object form (`{"op":"add_edge","u":3,"v":17}`, with `group`/`node`
/// for membership ops); hyphens and underscores in op names are
/// interchangeable.
fn parse_mutations(value: &Value) -> Result<Vec<Mutation>, RequestError> {
    let Some(Value::Seq(items)) = wire::get(value, "mutations") else {
        return Err(wire::bad("missing array field \"mutations\"".to_string()));
    };
    if items.is_empty() {
        return Err(wire::bad("field \"mutations\" must not be empty".to_string()));
    }
    items.iter().enumerate().map(|(i, item)| parse_mutation(item, i)).collect()
}

fn parse_mutation(item: &Value, index: usize) -> Result<Mutation, RequestError> {
    let node_arg = |key: &str| -> Result<u32, RequestError> {
        let n = wire::get_u64(item, key)
            .map_err(|(k, m)| (k, format!("mutation {index}: {m}")))?;
        u32::try_from(n).map_err(|_| {
            wire::bad(format!("mutation {index}: field {key:?} exceeds u32 range"))
        })
    };
    match item {
        Value::Str(line) => match Mutation::parse_line(line) {
            Ok(Some(m)) => Ok(m),
            Ok(None) => {
                Err(wire::bad(format!("mutation {index}: blank or comment line {line:?}")))
            }
            Err(why) => Err(wire::bad(format!("mutation {index}: {why}"))),
        },
        Value::Map(_) => {
            let op = wire::get_str(item, "op")
                .map_err(|(k, m)| (k, format!("mutation {index}: {m}")))?;
            match op.replace('-', "_").as_str() {
                "add_edge" => Ok(Mutation::AddEdge { u: node_arg("u")?, v: node_arg("v")? }),
                "remove_edge" => {
                    Ok(Mutation::RemoveEdge { u: node_arg("u")?, v: node_arg("v")? })
                }
                "add_vertex" => Ok(Mutation::AddVertex),
                "add_member" => {
                    Ok(Mutation::AddMember { group: node_arg("group")?, node: node_arg("node")? })
                }
                "remove_member" => Ok(Mutation::RemoveMember {
                    group: node_arg("group")?,
                    node: node_arg("node")?,
                }),
                other => Err(wire::bad(format!("mutation {index}: unknown op {other:?}"))),
            }
        }
        other => Err(wire::bad(format!(
            "mutation {index}: expected a line or an object, got {other}"
        ))),
    }
}

impl Request {
    /// Parses a request frame's JSON payload.
    ///
    /// # Errors
    ///
    /// `(ErrorKind::BadRequest, message)` naming the first defect: bad
    /// JSON, a missing/ill-typed field, or an unknown op.
    pub fn parse(payload: &str) -> Result<Request, RequestError> {
        let value: Value = serde_json::from_str(payload)
            .map_err(|e| wire::bad(format!("invalid JSON: {e}")))?;
        Request::parse_value(&value)
    }

    /// Parses a request from an already-decoded [`Value`] tree — the
    /// shared back half of [`Request::parse`], also reached by the CKP1
    /// binary decoder ([`crate::binary::decode_request`]) so both wire
    /// encodings accept exactly the same requests.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`].
    pub fn parse_value(value: &Value) -> Result<Request, RequestError> {
        if !matches!(value, Value::Map(_)) {
            return Err(wire::bad("request must be a JSON object".to_string()));
        }
        let op = wire::get_str(value, "op")?;
        match op.as_str() {
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "list_snapshots" => Ok(Request::ListSnapshots),
            "list_groups" => Ok(Request::ListGroups {
                snapshot: wire::get_str(value, "snapshot")?,
            }),
            "score_group" => Ok(Request::ScoreGroup {
                snapshot: wire::get_str(value, "snapshot")?,
                group: wire::get_u64(value, "group")? as usize,
                functions: parse_functions(value)?,
                deadline_ms: wire::get_u64_opt(value, "deadline_ms")?,
            }),
            "score_set" => Ok(Request::ScoreSet {
                snapshot: wire::get_str(value, "snapshot")?,
                members: wire::get_u32_array(value, "members")?,
                functions: parse_functions(value)?,
                deadline_ms: wire::get_u64_opt(value, "deadline_ms")?,
            }),
            "baseline" => Ok(Request::Baseline {
                snapshot: wire::get_str(value, "snapshot")?,
                group: wire::get_u64(value, "group")? as usize,
                functions: parse_functions(value)?,
                samples: wire::get_u64_opt(value, "samples")?
                    .map_or(DEFAULT_BASELINE_SAMPLES, |s| s as usize),
                seed: wire::get_u64_opt(value, "seed")?.unwrap_or(2014),
                deadline_ms: wire::get_u64_opt(value, "deadline_ms")?,
            }),
            "apply_mutations" => Ok(Request::ApplyMutations {
                snapshot: wire::get_str(value, "snapshot")?,
                mutations: parse_mutations(value)?,
            }),
            "compact" => Ok(Request::Compact {
                snapshot: wire::get_str(value, "snapshot")?,
            }),
            "watch_scores" => Ok(Request::WatchScores {
                snapshot: wire::get_str(value, "snapshot")?,
                group: wire::get_u64(value, "group")? as usize,
            }),
            "suggest_circles" => {
                let ego = wire::get_u64(value, "ego")?;
                let ego = u32::try_from(ego)
                    .map_err(|_| wire::bad(format!("field \"ego\" {ego} exceeds u32 range")))?;
                Ok(Request::SuggestCircles {
                    snapshot: wire::get_str(value, "snapshot")?,
                    ego,
                    seed: wire::get_u64_opt(value, "seed")?
                        .unwrap_or(circlekit_discover::DEFAULT_SEED),
                    min_size: wire::get_u64_opt(value, "min_size")?
                        .map_or(circlekit_discover::DEFAULT_MIN_SIZE, |v| v as usize),
                    top: wire::get_u64_opt(value, "top")?
                        .map_or(circlekit_discover::DEFAULT_TOP, |v| v as usize),
                })
            }
            "replicate" => {
                let crc = wire::get_u64(value, "base_crc")?;
                let base_crc = u32::try_from(crc).map_err(|_| {
                    wire::bad(format!("field \"base_crc\" {crc} exceeds u32 range"))
                })?;
                Ok(Request::Replicate {
                    snapshot: wire::get_str(value, "snapshot")?,
                    base_crc,
                    wal_offset: wire::get_u64(value, "wal_offset")?,
                })
            }
            "repl_ack" => Ok(Request::ReplAck {
                offset: wire::get_u64(value, "offset")?,
            }),
            "repl_status" => Ok(Request::ReplStatus),
            "shard_stats" => {
                let group = wire::get_u64_opt(value, "group")?.map(|g| g as usize);
                let members = match wire::get(value, "members") {
                    None | Some(Value::Null) => None,
                    Some(_) => Some(wire::get_u32_array(value, "members")?),
                };
                if group.is_some() == members.is_some() {
                    return Err(wire::bad(
                        "shard_stats takes exactly one of \"group\" or \"members\"".to_string(),
                    ));
                }
                Ok(Request::ShardStats {
                    snapshot: wire::get_str(value, "snapshot")?,
                    group,
                    members,
                    deadline_ms: wire::get_u64_opt(value, "deadline_ms")?,
                })
            }
            "debug_sleep" => Ok(Request::DebugSleep {
                millis: wire::get_u64(value, "millis")?,
            }),
            other => Err(wire::bad(format!("unknown op {other:?}"))),
        }
    }
}

/// Renders the standard error response payload.
pub fn error_payload(kind: ErrorKind, message: &str) -> String {
    Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Map(vec![
                ("kind".to_string(), Value::Str(kind.name().to_string())),
                ("message".to_string(), Value::Str(message.to_string())),
            ]),
        ),
    ])
    .to_string()
}

/// Renders a success response: `{"ok":true, ...fields}`.
pub fn ok_payload(fields: Vec<(String, Value)>) -> String {
    let mut entries = vec![("ok".to_string(), Value::Bool(true))];
    entries.extend(fields);
    Value::Map(entries).to_string()
}

/// Encodes raw bytes as lowercase hex — how CKW1 replication frames ride
/// inside JSON batch messages (the workspace vendors no base64).
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes [`to_hex`] output; `None` on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

/// FNV-1a 64-bit digest of a vertex set, the cache key component that
/// identifies the set independently of how the request named it.
pub fn set_digest(members: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in (members.len() as u64).to_le_bytes() {
        step(b);
    }
    for &m in members {
        for b in m.to_le_bytes() {
            step(b);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"health\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), "{\"op\":\"health\"}");
        assert_eq!(read_frame(&mut cursor).unwrap(), "second");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated)));
        // A torn length prefix is also truncation, not a clean close.
        let mut cursor = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated)));
    }

    #[test]
    fn non_utf8_payload_is_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn requests_parse_with_defaults() {
        assert_eq!(Request::parse("{\"op\":\"health\"}").unwrap(), Request::Health);
        let req = Request::parse(
            "{\"op\":\"score_group\",\"snapshot\":\"gp\",\"group\":3}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::ScoreGroup {
                snapshot: "gp".to_string(),
                group: 3,
                functions: ScoringFunction::PAPER.to_vec(),
                deadline_ms: None,
            }
        );
        let req = Request::parse(
            "{\"op\":\"score_set\",\"snapshot\":\"gp\",\"members\":[2,1,1],\
             \"functions\":\"all\",\"deadline_ms\":50}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::ScoreSet {
                snapshot: "gp".to_string(),
                members: vec![2, 1, 1],
                functions: ScoringFunction::ALL.to_vec(),
                deadline_ms: Some(50),
            }
        );
    }

    #[test]
    fn mutation_requests_parse_both_forms() {
        let req = Request::parse(
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\"mutations\":[\
             \"add-edge 3 17\",\
             {\"op\":\"remove-edge\",\"u\":1,\"v\":2},\
             {\"op\":\"add_vertex\"},\
             {\"op\":\"add_member\",\"group\":0,\"node\":5}]}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::ApplyMutations {
                snapshot: "gp".to_string(),
                mutations: vec![
                    Mutation::AddEdge { u: 3, v: 17 },
                    Mutation::RemoveEdge { u: 1, v: 2 },
                    Mutation::AddVertex,
                    Mutation::AddMember { group: 0, node: 5 },
                ],
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"compact\",\"snapshot\":\"gp\"}").unwrap(),
            Request::Compact { snapshot: "gp".to_string() }
        );
        assert_eq!(
            Request::parse("{\"op\":\"watch_scores\",\"snapshot\":\"gp\",\"group\":2}").unwrap(),
            Request::WatchScores { snapshot: "gp".to_string(), group: 2 }
        );
    }

    #[test]
    fn suggest_circles_parses_defaults_and_overrides() {
        assert_eq!(
            Request::parse("{\"op\":\"suggest_circles\",\"snapshot\":\"gp\",\"ego\":42}")
                .unwrap(),
            Request::SuggestCircles {
                snapshot: "gp".to_string(),
                ego: 42,
                seed: circlekit_discover::DEFAULT_SEED,
                min_size: circlekit_discover::DEFAULT_MIN_SIZE,
                top: circlekit_discover::DEFAULT_TOP,
            }
        );
        assert_eq!(
            Request::parse(
                "{\"op\":\"suggest_circles\",\"snapshot\":\"gp\",\"ego\":7,\
                 \"seed\":9,\"min_size\":2,\"top\":0}"
            )
            .unwrap(),
            Request::SuggestCircles {
                snapshot: "gp".to_string(),
                ego: 7,
                seed: 9,
                min_size: 2,
                top: 0,
            }
        );
    }

    #[test]
    fn malformed_requests_are_typed_bad_requests() {
        for payload in [
            "not json at all",
            "[1,2,3]",
            "{\"no_op\":1}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"score_group\",\"snapshot\":\"gp\"}",
            "{\"op\":\"score_group\",\"snapshot\":\"gp\",\"group\":-1}",
            "{\"op\":\"score_set\",\"snapshot\":\"gp\",\"members\":[\"x\"]}",
            "{\"op\":\"score_group\",\"snapshot\":\"gp\",\"group\":1,\"functions\":[]}",
            "{\"op\":\"score_group\",\"snapshot\":\"gp\",\"group\":1,\"functions\":[\"nope\"]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\"}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\"mutations\":[]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\"mutations\":[\"add-edge 1\"]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\"mutations\":[\"# nope\"]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\"mutations\":[7]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\
             \"mutations\":[{\"op\":\"add_edge\",\"u\":1}]}",
            "{\"op\":\"apply_mutations\",\"snapshot\":\"gp\",\
             \"mutations\":[{\"op\":\"add_edge\",\"u\":1,\"v\":4294967296}]}",
            "{\"op\":\"watch_scores\",\"snapshot\":\"gp\"}",
            "{\"op\":\"compact\"}",
            "{\"op\":\"suggest_circles\",\"snapshot\":\"gp\"}",
            "{\"op\":\"suggest_circles\",\"snapshot\":\"gp\",\"ego\":4294967296}",
            "{\"op\":\"suggest_circles\",\"ego\":1}",
            "{\"op\":\"shard_stats\",\"snapshot\":\"gp\"}",
            "{\"op\":\"shard_stats\",\"members\":[1]}",
            "{\"op\":\"shard_stats\",\"snapshot\":\"gp\",\"members\":[\"x\"]}",
            "{\"op\":\"shard_stats\",\"snapshot\":\"gp\",\"group\":0,\"members\":[1]}",
        ] {
            let (kind, _) = Request::parse(payload).unwrap_err();
            assert_eq!(kind, ErrorKind::BadRequest, "{payload}");
        }
    }

    #[test]
    fn error_kinds_roundtrip_their_names() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::NotFound,
            ErrorKind::DeadlineExceeded,
            ErrorKind::FrameTooLarge,
            ErrorKind::ShuttingDown,
            ErrorKind::NotPrimary,
            ErrorKind::ReplicationMismatch,
            ErrorKind::ShardUnavailable,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("nope"), None);
    }

    #[test]
    fn replication_requests_parse() {
        assert_eq!(
            Request::parse(
                "{\"op\":\"replicate\",\"snapshot\":\"gp\",\"base_crc\":7,\"wal_offset\":96}"
            )
            .unwrap(),
            Request::Replicate { snapshot: "gp".to_string(), base_crc: 7, wal_offset: 96 }
        );
        assert_eq!(
            Request::parse("{\"op\":\"repl_ack\",\"offset\":128}").unwrap(),
            Request::ReplAck { offset: 128 }
        );
        assert_eq!(Request::parse("{\"op\":\"repl_status\"}").unwrap(), Request::ReplStatus);
        assert_eq!(
            Request::parse(
                "{\"op\":\"shard_stats\",\"snapshot\":\"gp\",\"members\":[3,1],\
                 \"deadline_ms\":250}"
            )
            .unwrap(),
            Request::ShardStats {
                snapshot: "gp".to_string(),
                group: None,
                members: Some(vec![3, 1]),
                deadline_ms: Some(250),
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"shard_stats\",\"snapshot\":\"gp\",\"group\":2}").unwrap(),
            Request::ShardStats {
                snapshot: "gp".to_string(),
                group: Some(2),
                members: None,
                deadline_ms: None,
            }
        );
        for payload in [
            "{\"op\":\"replicate\",\"snapshot\":\"gp\"}",
            "{\"op\":\"replicate\",\"snapshot\":\"gp\",\"base_crc\":4294967296,\
             \"wal_offset\":0}",
            "{\"op\":\"repl_ack\"}",
        ] {
            let (kind, _) = Request::parse(payload).unwrap_err();
            assert_eq!(kind, ErrorKind::BadRequest, "{payload}");
        }
    }

    #[test]
    fn hex_roundtrips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(from_hex("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn scores_survive_the_wire_bit_exactly() {
        let scores = [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300, -0.0, 17.0];
        let rendered = wire::score_array(&scores).to_string();
        let parsed: Value = serde_json::from_str(&rendered).unwrap();
        let Value::Seq(items) = parsed else { panic!("expected array") };
        for (i, item) in items.iter().enumerate() {
            let back = wire::as_f64(item).unwrap();
            assert_eq!(back.to_bits(), scores[i].to_bits(), "index {i}");
        }
        // Non-finite scores degrade to null ⇒ NaN, by design.
        let rendered = wire::score_array(&[f64::NAN, f64::INFINITY]).to_string();
        assert_eq!(rendered, "[null,null]");
    }

    #[test]
    fn set_digest_distinguishes_sets_and_lengths() {
        assert_eq!(set_digest(&[1, 2, 3]), set_digest(&[1, 2, 3]));
        assert_ne!(set_digest(&[1, 2, 3]), set_digest(&[1, 2, 4]));
        assert_ne!(set_digest(&[]), set_digest(&[0]));
        // A trailing zero must not collide with the shorter set.
        assert_ne!(set_digest(&[1, 2]), set_digest(&[1, 2, 0]));
    }

    #[test]
    fn payload_renderers_shape_the_envelope() {
        let ok = ok_payload(vec![("x".to_string(), Value::UInt(1))]);
        assert_eq!(ok, "{\"ok\":true,\"x\":1}");
        let err = error_payload(ErrorKind::Overloaded, "queue full");
        assert!(err.contains("\"ok\":false"), "{err}");
        assert!(err.contains("\"overloaded\""), "{err}");
    }
}
