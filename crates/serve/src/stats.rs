//! Service counters, exposed through the `stats` op and returned by
//! [`crate::Server::join`] for post-run reporting (the `loadgen` harness
//! records them next to its latency percentiles).

use crate::cache::CacheStats;
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters shared by every server thread.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames parsed into requests (well- or ill-formed).
    pub requests: AtomicU64,
    /// `ok:true` responses written.
    pub ok_responses: AtomicU64,
    /// `ok:false` responses written.
    pub error_responses: AtomicU64,
    /// Requests refused because the queue was full.
    pub overloaded: AtomicU64,
    /// Requests refused because their deadline had expired.
    pub deadline_expired: AtomicU64,
    /// Micro-batches executed by the workers.
    pub batches: AtomicU64,
    /// Scoring jobs carried by those batches.
    pub batched_jobs: AtomicU64,
    /// Largest single batch observed.
    pub max_batch: AtomicU64,
    /// Vertex sets actually scored (batch jobs + baseline samples).
    pub scored_sets: AtomicU64,
    /// Deepest the queue has ever been (raised at enqueue time).
    pub queue_depth_max: AtomicU64,
    /// Mutations applied by committed `apply_mutations` batches.
    pub mutations_applied: AtomicU64,
    /// `apply_mutations` batches that stopped at a rejected mutation.
    pub mutations_rejected: AtomicU64,
    /// WAL compactions performed via the `compact` op.
    pub compactions: AtomicU64,
    /// Replication batches shipped to subscribers (primary side).
    pub repl_batches_sent: AtomicU64,
    /// Raw WAL bytes shipped inside those batches (primary side).
    pub repl_bytes_sent: AtomicU64,
    /// Replication batches applied from a primary (replica side).
    pub repl_batches_applied: AtomicU64,
    /// Times the replica tailer (re)connected to its primary.
    pub repl_connects: AtomicU64,
    /// `shard_stats` partials served (shard side of scatter-gather).
    pub shard_partials: AtomicU64,
    /// Connections negotiated to the CKP1 binary protocol.
    pub binary_connections: AtomicU64,
    /// Most requests one connection has had undelivered at once
    /// (event-loop front end only; the threaded path is serial).
    pub pipelined_peak: AtomicU64,
}

impl ServeStats {
    /// Adds `1` to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water-mark counter to at least `n`.
    pub fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// Captures the counters together with the cache's and the queue's
    /// instantaneous state.
    pub fn snapshot(&self, cache: CacheStats, queue_depth: usize) -> StatsSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: read(&self.connections),
            requests: read(&self.requests),
            ok_responses: read(&self.ok_responses),
            error_responses: read(&self.error_responses),
            overloaded: read(&self.overloaded),
            deadline_expired: read(&self.deadline_expired),
            batches: read(&self.batches),
            batched_jobs: read(&self.batched_jobs),
            max_batch: read(&self.max_batch),
            scored_sets: read(&self.scored_sets),
            queue_depth_max: read(&self.queue_depth_max),
            mutations_applied: read(&self.mutations_applied),
            mutations_rejected: read(&self.mutations_rejected),
            compactions: read(&self.compactions),
            repl_batches_sent: read(&self.repl_batches_sent),
            repl_bytes_sent: read(&self.repl_bytes_sent),
            repl_batches_applied: read(&self.repl_batches_applied),
            repl_connects: read(&self.repl_connects),
            shard_partials: read(&self.shard_partials),
            binary_connections: read(&self.binary_connections),
            pipelined_peak: read(&self.pipelined_peak),
            cache,
            queue_depth,
        }
    }
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames parsed into requests.
    pub requests: u64,
    /// `ok:true` responses written.
    pub ok_responses: u64,
    /// `ok:false` responses written.
    pub error_responses: u64,
    /// Requests refused with `overloaded`.
    pub overloaded: u64,
    /// Requests refused with `deadline-exceeded`.
    pub deadline_expired: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Scoring jobs carried by those batches.
    pub batched_jobs: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Vertex sets scored.
    pub scored_sets: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_max: u64,
    /// Mutations applied via `apply_mutations`.
    pub mutations_applied: u64,
    /// `apply_mutations` batches stopped by a rejection.
    pub mutations_rejected: u64,
    /// WAL compactions performed.
    pub compactions: u64,
    /// Replication batches shipped (primary side).
    pub repl_batches_sent: u64,
    /// Raw WAL bytes shipped (primary side).
    pub repl_bytes_sent: u64,
    /// Replication batches applied (replica side).
    pub repl_batches_applied: u64,
    /// Replica tailer (re)connects.
    pub repl_connects: u64,
    /// `shard_stats` partials served.
    pub shard_partials: u64,
    /// Connections negotiated to the CKP1 binary protocol.
    pub binary_connections: u64,
    /// Most requests one connection has had undelivered at once.
    pub pipelined_peak: u64,
    /// Cache counters at snapshot time.
    pub cache: CacheStats,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
}

impl StatsSnapshot {
    /// Renders the snapshot as the `stats` response's field list.
    pub fn to_fields(&self) -> Vec<(String, Value)> {
        let u = |n: u64| Value::UInt(n);
        vec![
            ("connections".to_string(), u(self.connections)),
            ("requests".to_string(), u(self.requests)),
            ("ok_responses".to_string(), u(self.ok_responses)),
            ("error_responses".to_string(), u(self.error_responses)),
            ("overloaded".to_string(), u(self.overloaded)),
            ("deadline_expired".to_string(), u(self.deadline_expired)),
            ("batches".to_string(), u(self.batches)),
            ("batched_jobs".to_string(), u(self.batched_jobs)),
            ("max_batch".to_string(), u(self.max_batch)),
            ("scored_sets".to_string(), u(self.scored_sets)),
            ("mutations_applied".to_string(), u(self.mutations_applied)),
            ("mutations_rejected".to_string(), u(self.mutations_rejected)),
            ("compactions".to_string(), u(self.compactions)),
            ("repl_batches_sent".to_string(), u(self.repl_batches_sent)),
            ("repl_bytes_sent".to_string(), u(self.repl_bytes_sent)),
            ("repl_batches_applied".to_string(), u(self.repl_batches_applied)),
            ("repl_connects".to_string(), u(self.repl_connects)),
            ("shard_partials".to_string(), u(self.shard_partials)),
            ("binary_connections".to_string(), u(self.binary_connections)),
            ("pipelined_peak".to_string(), u(self.pipelined_peak)),
            ("cache_hits".to_string(), u(self.cache.hits)),
            ("cache_misses".to_string(), u(self.cache.misses)),
            ("cache_hit_ratio".to_string(), Value::Float(self.cache.hit_ratio())),
            ("cache_evictions".to_string(), u(self.cache.evictions)),
            ("cache_invalidations".to_string(), u(self.cache.invalidations)),
            ("cache_entries".to_string(), u(self.cache.entries as u64)),
            ("queue_depth".to_string(), u(self.queue_depth as u64)),
            ("queue_depth_max".to_string(), u(self.queue_depth_max)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ServeStats::default();
        ServeStats::bump(&stats.requests);
        ServeStats::add(&stats.batched_jobs, 5);
        ServeStats::raise(&stats.max_batch, 3);
        ServeStats::raise(&stats.max_batch, 2);
        ServeStats::raise(&stats.queue_depth_max, 9);
        ServeStats::add(&stats.mutations_applied, 4);
        let snap = stats.snapshot(CacheStats::default(), 7);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.batched_jobs, 5);
        assert_eq!(snap.max_batch, 3);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.queue_depth_max, 9);
        assert_eq!(snap.mutations_applied, 4);
        let fields = snap.to_fields();
        assert!(fields.iter().any(|(k, v)| k == "max_batch" && *v == Value::UInt(3)));
        assert!(fields.iter().any(|(k, _)| k == "cache_hits"));
        assert!(fields.iter().any(|(k, v)| k == "queue_depth_max" && *v == Value::UInt(9)));
        assert!(fields.iter().any(|(k, _)| k == "cache_invalidations"));
    }

    #[test]
    fn hit_ratio_is_rendered_as_a_float() {
        let cache = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
        let snap = ServeStats::default().snapshot(cache, 0);
        let fields = snap.to_fields();
        let ratio = fields.iter().find(|(k, _)| k == "cache_hit_ratio").unwrap();
        assert_eq!(ratio.1, Value::Float(0.75));
        // No lookups yet ⇒ ratio 0.0, not NaN.
        let empty = ServeStats::default().snapshot(CacheStats::default(), 0);
        let fields = empty.to_fields();
        let ratio = fields.iter().find(|(k, _)| k == "cache_hit_ratio").unwrap();
        assert_eq!(ratio.1, Value::Float(0.0));
    }
}
