//! Signal-to-flag plumbing for graceful shutdown.
//!
//! The workspace vendors no `libc`/`signal-hook`, so handlers are
//! installed through a minimal `extern "C"` binding to `signal(2)` — the
//! same approach `circlekit-store` uses for `mmap`. The handler itself
//! only stores into an [`AtomicBool`] (async-signal-safe); the server's
//! acceptor polls the flag and promotes it to a cooperative drain. Both
//! SIGINT (interactive ^C) and SIGTERM (the `kill` default, what service
//! managers send) raise the same flag: either way the daemon drains
//! queued work and exits cleanly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static TERMINATION_SEEN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
mod ffi {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub type Handler = extern "C" fn(i32);

    extern "C" {
        pub fn signal(signum: i32, handler: Handler) -> usize;
        pub fn raise(signum: i32) -> i32;
    }
}

#[cfg(unix)]
extern "C" fn on_termination(_signum: i32) {
    TERMINATION_SEEN.store(true, Ordering::Release);
}

/// Installs the SIGINT and SIGTERM handlers (once per process) and
/// returns the flag they raise. On non-Unix targets the handlers are
/// skipped and the flag simply never fires.
pub fn install_termination_handlers() -> &'static AtomicBool {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        unsafe {
            ffi::signal(ffi::SIGINT, on_termination);
            ffi::signal(ffi::SIGTERM, on_termination);
        }
    });
    &TERMINATION_SEEN
}

/// The termination flag without installing handlers (used by pollers
/// that must not change process-wide signal disposition).
pub fn termination_flag() -> &'static AtomicBool {
    &TERMINATION_SEEN
}

/// Test hook: raises the flag as the real handlers would.
pub fn raise_for_test() {
    TERMINATION_SEEN.store(true, Ordering::Release);
}

/// Test hook: clears the flag.
pub fn reset_for_test() {
    TERMINATION_SEEN.store(false, Ordering::Release);
}

/// Test hook: delivers a *real* SIGTERM to this process via `raise(3)`,
/// exercising the installed handler end-to-end. Call
/// [`install_termination_handlers`] first — an unhandled SIGTERM kills
/// the process.
#[cfg(unix)]
pub fn deliver_sigterm_for_test() {
    unsafe {
        ffi::raise(ffi::SIGTERM);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag is process-global, and parallel
    // tests resetting it would race each other.
    #[test]
    fn flag_roundtrip_and_real_sigterm() {
        reset_for_test();
        assert!(!termination_flag().load(Ordering::Acquire));
        raise_for_test();
        assert!(termination_flag().load(Ordering::Acquire));
        reset_for_test();
        // Installing is idempotent and returns the same flag.
        let a = install_termination_handlers() as *const AtomicBool;
        let b = install_termination_handlers() as *const AtomicBool;
        assert_eq!(a, b);
        #[cfg(unix)]
        {
            deliver_sigterm_for_test();
            assert!(
                termination_flag().load(Ordering::Acquire),
                "SIGTERM must be caught and flagged, not kill the process"
            );
            reset_for_test();
        }
    }
}
