//! SIGINT-to-flag plumbing for graceful shutdown.
//!
//! The workspace vendors no `libc`/`signal-hook`, so the handler is
//! installed through a minimal `extern "C"` binding to `signal(2)` — the
//! same approach `circlekit-store` uses for `mmap`. The handler itself
//! only stores into an [`AtomicBool`] (async-signal-safe); the server's
//! acceptor polls the flag and promotes it to a cooperative drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
mod ffi {
    pub const SIGINT: i32 = 2;
    pub type Handler = extern "C" fn(i32);

    extern "C" {
        pub fn signal(signum: i32, handler: Handler) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    SIGINT_SEEN.store(true, Ordering::Release);
}

/// Installs the SIGINT handler (once per process) and returns the flag it
/// raises. On non-Unix targets the handler is skipped and the flag simply
/// never fires.
pub fn install_sigint_handler() -> &'static AtomicBool {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        unsafe {
            ffi::signal(ffi::SIGINT, on_sigint);
        }
    });
    &SIGINT_SEEN
}

/// The SIGINT flag without installing a handler (used by pollers that
/// must not change process-wide signal disposition).
pub fn sigint_flag() -> &'static AtomicBool {
    &SIGINT_SEEN
}

/// Test hook: raises the flag as the real handler would.
pub fn raise_for_test() {
    SIGINT_SEEN.store(true, Ordering::Release);
}

/// Test hook: clears the flag.
pub fn reset_for_test() {
    SIGINT_SEEN.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        reset_for_test();
        assert!(!sigint_flag().load(Ordering::Acquire));
        raise_for_test();
        assert!(sigint_flag().load(Ordering::Acquire));
        reset_for_test();
        // Installing is idempotent and returns the same flag.
        let a = install_sigint_handler() as *const AtomicBool;
        let b = install_sigint_handler() as *const AtomicBool;
        assert_eq!(a, b);
    }
}
