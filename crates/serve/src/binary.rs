//! CKP1: the binary wire protocol, negotiated per connection.
//!
//! JSON framing ([`crate::protocol`]) stays the compat mode; CKP1 is the
//! compact encoding the event-loop front end and the nonblocking load
//! generator speak. It reuses the workspace's binary-format conventions
//! from CKS1/CKW1 (`circlekit-store`): a fixed magic, little-endian
//! integers, and a CRC-32-guarded payload.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CKP1"
//!      4     1  kind: 0 = request, 1 = response
//!      5     1  reserved, must be 0
//!      6     2  op id, u16 LE (response frames echo the request's op;
//!               0xFFFF when the op could not be decoded)
//!      8     4  payload length, u32 LE (≤ MAX_FRAME_LEN)
//!     12     4  CRC-32 of the payload, u32 LE (CKS1 polynomial)
//!     16     …  payload
//! ```
//!
//! The first byte of every CKP1 frame is `b'C'` (0x43). A JSON frame
//! starts with its 4-byte big-endian length, whose first byte is ≤ 0x01
//! for any payload within the 16 MiB ceiling — so the server sniffs one
//! byte to pick the connection's mode, and the two protocols can share
//! a port without ambiguity.
//!
//! # Payloads
//!
//! A request payload is the op's argument map in the *bval* encoding
//! below (the `"op"` key travels in the header, not the map). A response
//! payload is the entire response envelope (`{"ok":…}`) in bval, so a
//! binary client decodes the exact [`Value`] tree a JSON client parses
//! — score tables render byte-identically by construction.
//!
//! *bval* is a tagged little-endian encoding of the [`Value`] tree:
//!
//! ```text
//! tag  value      encoding after the tag byte
//!   0  Null       —
//!   1  Bool false —
//!   2  Bool true  —
//!   3  UInt       u64 LE
//!   4  Int        i64 LE
//!   5  Float      f64 bits LE (bit-exact, no decimal round-trip)
//!   6  Str        u32 LE byte length + UTF-8 bytes
//!   7  Seq        u32 LE count + elements
//!   8  Map        u32 LE count + (Str-encoded key, value) pairs
//! ```

use crate::protocol::{ErrorKind, FrameError, Request, RequestError, MAX_FRAME_LEN};
use circlekit_store::crc32;
use serde_json::Value;
use std::io::{self, Read, Write};

/// Every CKP1 frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"CKP1";

/// Fixed frame header length.
pub const HEADER_LEN: usize = 16;

/// Header `kind` of a request frame.
pub const KIND_REQUEST: u8 = 0;

/// Header `kind` of a response frame.
pub const KIND_RESPONSE: u8 = 1;

/// The op id a response echoes when the request's op was undecodable.
pub const OP_UNKNOWN: u16 = 0xFFFF;

/// The stable op-id table. Ids are append-only: new ops take the next
/// number, existing numbers never change meaning.
pub const OPS: &[(u16, &str)] = &[
    (1, "health"),
    (2, "stats"),
    (3, "shutdown"),
    (4, "list_snapshots"),
    (5, "list_groups"),
    (6, "score_group"),
    (7, "score_set"),
    (8, "baseline"),
    (9, "apply_mutations"),
    (10, "compact"),
    (11, "watch_scores"),
    (12, "suggest_circles"),
    (13, "replicate"),
    (14, "repl_ack"),
    (15, "repl_status"),
    (16, "shard_stats"),
    (17, "debug_sleep"),
];

/// The wire name of an op id.
pub fn op_name(id: u16) -> Option<&'static str> {
    OPS.iter().find(|(i, _)| *i == id).map(|(_, name)| *name)
}

/// The op id of a wire name.
pub fn op_id(name: &str) -> Option<u16> {
    OPS.iter().find(|(_, n)| *n == name).map(|(id, _)| *id)
}

/// Why a byte sequence is not a CKP1 frame. Every variant means the
/// stream can no longer be trusted — the server answers once with a
/// typed error and closes the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The kind byte is neither request nor response.
    BadKind(u8),
    /// The reserved byte is non-zero.
    BadReserved(u8),
    /// The payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload's CRC-32 does not match the header.
    BadCrc {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes that arrived.
        actual: u32,
    },
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::BadMagic(bytes) => {
                write!(f, "bad CKP1 magic {bytes:02x?}")
            }
            BinaryError::BadKind(kind) => write!(f, "bad CKP1 frame kind {kind}"),
            BinaryError::BadReserved(byte) => {
                write!(f, "CKP1 reserved byte is {byte}, must be 0")
            }
            BinaryError::TooLarge(len) => {
                write!(f, "CKP1 payload length {len} exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            BinaryError::BadCrc { expected, actual } => {
                write!(f, "CKP1 payload CRC {actual:#010x}, header promised {expected:#010x}")
            }
        }
    }
}

impl std::error::Error for BinaryError {}

/// One parsed CKP1 frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// [`KIND_REQUEST`] or [`KIND_RESPONSE`].
    pub kind: u8,
    /// The op id (see [`OPS`]).
    pub op: u16,
    /// The raw bval payload, CRC-verified.
    pub payload: Vec<u8>,
}

/// Encodes a complete frame.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_FRAME_LEN`] — callers build payloads from
/// requests/responses that are framed-size-checked on the JSON path too.
pub fn encode_frame(kind: u8, op: u16, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "CKP1 payload exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&op.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental parse for nonblocking readers: examines the front of
/// `buf` and returns the first complete frame plus the byte count to
/// drain, or `None` when more bytes are needed.
///
/// # Errors
///
/// [`BinaryError`] as soon as the prefix is provably malformed — a bad
/// magic or oversized length is rejected from the header alone, without
/// waiting for (or allocating) the payload.
pub fn try_parse(buf: &[u8]) -> Result<Option<(Frame, usize)>, BinaryError> {
    if buf.len() < 4 {
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            let mut seen = [0u8; 4];
            seen[..buf.len()].copy_from_slice(buf);
            return Err(BinaryError::BadMagic(seen));
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(BinaryError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let kind = buf[4];
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(BinaryError::BadKind(kind));
    }
    if buf[5] != 0 {
        return Err(BinaryError::BadReserved(buf[5]));
    }
    let op = u16::from_le_bytes([buf[6], buf[7]]);
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(BinaryError::TooLarge(len));
    }
    let expected = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let actual = crc32(payload);
    if actual != expected {
        return Err(BinaryError::BadCrc { expected, actual });
    }
    Ok(Some((Frame { kind, op, payload: payload.to_vec() }, HEADER_LEN + len)))
}

/// Blocking frame read for clients, tolerant of read timeouts exactly
/// like [`crate::protocol::read_frame_patiently`]: `keep_waiting(started)`
/// decides whether to keep going after a timeout; returning `false`
/// abandons the read with `Ok(None)`.
///
/// # Errors
///
/// `Ok`-wrapped malformedness is impossible — a malformed prefix is
/// `Err(Malformed)`, transport trouble is `Err(Frame)` with the same
/// [`FrameError`] classes the JSON reader uses.
pub fn read_frame_patiently<R: Read>(
    r: &mut R,
    mut keep_waiting: impl FnMut(bool) -> bool,
) -> Result<Option<Frame>, ReadError> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    let mut chunk = [0u8; 4096];
    loop {
        match try_parse(&buf) {
            Ok(Some((frame, consumed))) => {
                debug_assert_eq!(consumed, buf.len(), "client reads stop at frame end");
                return Ok(Some(frame));
            }
            Ok(None) => {}
            Err(e) => return Err(ReadError::Malformed(e)),
        }
        // Read only up to the next known boundary (header end, then
        // payload end) so we never consume bytes of the following frame.
        let want = if buf.len() < HEADER_LEN {
            HEADER_LEN - buf.len()
        } else {
            let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
            HEADER_LEN + len - buf.len()
        };
        let want = want.min(chunk.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) if buf.is_empty() => return Err(ReadError::Frame(FrameError::Closed)),
            Ok(0) => return Err(ReadError::Frame(FrameError::Truncated)),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                if !keep_waiting(!buf.is_empty()) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(ReadError::Frame(FrameError::Io(e))),
        }
    }
}

/// Why [`read_frame_patiently`] failed.
#[derive(Debug)]
pub enum ReadError {
    /// Transport-level trouble (close, truncation, I/O error).
    Frame(FrameError),
    /// The peer sent bytes that are not a CKP1 frame.
    Malformed(BinaryError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Frame(e) => e.fmt(f),
            ReadError::Malformed(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ReadError {}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized payloads with `InvalidInput`
/// before writing anything.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, op: u16, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("CKP1 payload of {} bytes exceeds {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    w.write_all(&encode_frame(kind, op, payload))?;
    w.flush()
}

// ---------------------------------------------------------------------
// bval: the tagged binary Value encoding.
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

/// Appends the bval encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::UInt(n) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Int(n) => {
            out.push(TAG_INT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, item) in entries {
                encode_str(key, out);
                encode_value(item, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!(
                "bval truncated: need {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len() - self.at
            ));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "bval string is not UTF-8".to_string())
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > 64 {
            return Err("bval nesting exceeds 64 levels".to_string());
        }
        let tag = self.take(1)?[0];
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_UINT => Ok(Value::UInt(self.u64()?)),
            TAG_INT => Ok(Value::Int(self.u64()? as i64)),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.str()?)),
            TAG_SEQ => {
                let count = self.u32()? as usize;
                // Guard against a hostile count: every element costs at
                // least a tag byte, so cap by the bytes that remain.
                if count > self.bytes.len() - self.at {
                    return Err(format!("bval sequence count {count} exceeds payload"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let count = self.u32()? as usize;
                if count > self.bytes.len() - self.at {
                    return Err(format!("bval map count {count} exceeds payload"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.str()?;
                    entries.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Map(entries))
            }
            other => Err(format!("bval tag {other} is unknown")),
        }
    }
}

/// Decodes one bval value, requiring the payload to be exactly consumed.
///
/// # Errors
///
/// A message naming the first defect (truncation, bad tag, bad UTF-8,
/// trailing bytes).
pub fn decode_value(bytes: &[u8]) -> Result<Value, String> {
    let mut cursor = Cursor { bytes, at: 0 };
    let value = cursor.value(0)?;
    if cursor.at != bytes.len() {
        return Err(format!(
            "bval payload has {} trailing bytes after the value",
            bytes.len() - cursor.at
        ));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Request / response codecs on top of bval.
// ---------------------------------------------------------------------

/// Encodes a request as `(op id, bval argument map)` — the inverse of
/// [`decode_request`]. The argument map mirrors the JSON request object
/// exactly, minus the `"op"` key the header carries.
pub fn encode_request(request: &Request) -> (u16, Vec<u8>) {
    let (op, fields) = request_fields(request);
    let mut payload = Vec::new();
    encode_value(&Value::Map(fields), &mut payload);
    (op_id(op).expect("every Request variant has an op id"), payload)
}

/// Renders `request` in the JSON wire form: the same argument map the
/// CKP1 payload carries, plus the `"op"` key the JSON framing needs.
/// Lets one in-memory [`Request`] drive either protocol mode.
pub fn encode_request_json(request: &Request) -> String {
    let (op, mut fields) = request_fields(request);
    fields.insert(0, ("op".to_string(), Value::Str(op.to_string())));
    Value::Map(fields).to_string()
}

fn request_fields(request: &Request) -> (&'static str, Vec<(String, Value)>) {
    let s = |v: &str| Value::Str(v.to_string());
    let u = |v: u64| Value::UInt(v);
    let functions = |fns: &[circlekit_scoring::ScoringFunction]| {
        Value::Seq(fns.iter().map(|f| s(f.name())).collect())
    };
    let field = |k: &str, v: Value| (k.to_string(), v);
    match request {
        Request::Health => ("health", vec![]),
        Request::Stats => ("stats", vec![]),
        Request::Shutdown => ("shutdown", vec![]),
        Request::ListSnapshots => ("list_snapshots", vec![]),
        Request::ReplStatus => ("repl_status", vec![]),
        Request::ListGroups { snapshot } => ("list_groups", vec![field("snapshot", s(snapshot))]),
        Request::ScoreGroup { snapshot, group, functions: fns, deadline_ms } => {
            let mut fields = vec![
                field("snapshot", s(snapshot)),
                field("group", u(*group as u64)),
                field("functions", functions(fns)),
            ];
            if let Some(ms) = deadline_ms {
                fields.push(field("deadline_ms", u(*ms)));
            }
            ("score_group", fields)
        }
        Request::ScoreSet { snapshot, members, functions: fns, deadline_ms } => {
            let mut fields = vec![
                field("snapshot", s(snapshot)),
                field(
                    "members",
                    Value::Seq(members.iter().map(|m| u(u64::from(*m))).collect()),
                ),
                field("functions", functions(fns)),
            ];
            if let Some(ms) = deadline_ms {
                fields.push(field("deadline_ms", u(*ms)));
            }
            ("score_set", fields)
        }
        Request::Baseline { snapshot, group, functions: fns, samples, seed, deadline_ms } => {
            let mut fields = vec![
                field("snapshot", s(snapshot)),
                field("group", u(*group as u64)),
                field("functions", functions(fns)),
                field("samples", u(*samples as u64)),
                field("seed", u(*seed)),
            ];
            if let Some(ms) = deadline_ms {
                fields.push(field("deadline_ms", u(*ms)));
            }
            ("baseline", fields)
        }
        Request::ApplyMutations { snapshot, mutations } => (
            "apply_mutations",
            vec![
                field("snapshot", s(snapshot)),
                field(
                    "mutations",
                    Value::Seq(mutations.iter().map(|m| Value::Str(m.to_line())).collect()),
                ),
            ],
        ),
        Request::Compact { snapshot } => ("compact", vec![field("snapshot", s(snapshot))]),
        Request::WatchScores { snapshot, group } => (
            "watch_scores",
            vec![field("snapshot", s(snapshot)), field("group", u(*group as u64))],
        ),
        Request::SuggestCircles { snapshot, ego, seed, min_size, top } => (
            "suggest_circles",
            vec![
                field("snapshot", s(snapshot)),
                field("ego", u(u64::from(*ego))),
                field("seed", u(*seed)),
                field("min_size", u(*min_size as u64)),
                field("top", u(*top as u64)),
            ],
        ),
        Request::Replicate { snapshot, base_crc, wal_offset } => (
            "replicate",
            vec![
                field("snapshot", s(snapshot)),
                field("base_crc", u(u64::from(*base_crc))),
                field("wal_offset", u(*wal_offset)),
            ],
        ),
        Request::ReplAck { offset } => ("repl_ack", vec![field("offset", u(*offset))]),
        Request::ShardStats { snapshot, group, members, deadline_ms } => {
            let mut fields = vec![field("snapshot", s(snapshot))];
            if let Some(g) = group {
                fields.push(field("group", u(*g as u64)));
            }
            if let Some(ms) = members {
                fields.push(field(
                    "members",
                    Value::Seq(ms.iter().map(|m| u(u64::from(*m))).collect()),
                ));
            }
            if let Some(ms) = deadline_ms {
                fields.push(field("deadline_ms", u(*ms)));
            }
            ("shard_stats", fields)
        }
        Request::DebugSleep { millis } => ("debug_sleep", vec![field("millis", u(*millis))]),
    }
}

/// Decodes a CKP1 request frame's payload back into a [`Request`] —
/// the header's op id picks the wire name, the bval map supplies the
/// arguments, and validation is shared with the JSON path through
/// [`Request::parse_value`].
///
/// # Errors
///
/// `(ErrorKind::BadRequest, message)`: unknown op id, undecodable bval,
/// a non-map payload, or any argument defect the JSON parser would also
/// reject. The framing was already CRC-verified, so these errors keep
/// the connection alive.
pub fn decode_request(op: u16, payload: &[u8]) -> Result<Request, RequestError> {
    let name = op_name(op)
        .ok_or_else(|| (ErrorKind::BadRequest, format!("unknown op id {op}")))?;
    let value = decode_value(payload).map_err(|e| (ErrorKind::BadRequest, e))?;
    let Value::Map(mut entries) = value else {
        return Err((ErrorKind::BadRequest, "request payload must be a bval map".to_string()));
    };
    entries.insert(0, ("op".to_string(), Value::Str(name.to_string())));
    let request = Request::parse_value(&Value::Map(entries))?;
    // The header op must agree with itself by construction; guard the
    // invariant cheaply in debug builds.
    debug_assert_eq!(encode_request(&request).0, op);
    Ok(request)
}

/// Encodes a rendered JSON response envelope as a CKP1 response payload.
/// Parsing then re-encoding (rather than a second render path) keeps the
/// binary response the *same tree* the JSON client would decode: Rust's
/// shortest-round-trip float formatting makes the parse lossless, and
/// bval carries the bits verbatim from there.
///
/// # Errors
///
/// A message if `rendered` is not valid JSON (server responses always
/// are).
pub fn encode_response_payload(rendered: &str) -> Result<Vec<u8>, String> {
    let value: Value =
        serde_json::from_str(rendered).map_err(|e| format!("unencodable response: {e}"))?;
    let mut payload = Vec::new();
    encode_value(&value, &mut payload);
    Ok(payload)
}

/// Decodes a CKP1 response payload into the envelope [`Value`].
///
/// # Errors
///
/// A message naming the bval defect.
pub fn decode_response_payload(payload: &[u8]) -> Result<Value, String> {
    decode_value(payload)
}

/// Renders a typed error envelope as a ready-to-send response frame.
pub fn error_frame(op: u16, kind: ErrorKind, message: &str) -> Vec<u8> {
    let envelope = crate::protocol::error_payload(kind, message);
    let payload = encode_response_payload(&envelope).expect("error envelopes are valid JSON");
    encode_frame(KIND_RESPONSE, op, &payload)
}

/// True when a connection's first byte announces CKP1 rather than a
/// JSON length prefix (see the module docs for why this is unambiguous).
pub fn sniff_binary(first_byte: u8) -> bool {
    first_byte == MAGIC[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::wire;

    fn roundtrip(value: &Value) -> Value {
        let mut bytes = Vec::new();
        encode_value(value, &mut bytes);
        decode_value(&bytes).expect("roundtrip decode")
    }

    #[test]
    fn scalar_values_roundtrip_bit_exactly() {
        for value in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::UInt(0),
            Value::UInt(u64::MAX),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Float(0.1 + 0.2),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("snapshot-α".to_string()),
        ] {
            assert_eq!(roundtrip(&value), value);
        }
        // Negative zero keeps its sign bit (JSON would lose it on some
        // formatters; bval is bit-exact).
        let Value::Float(z) = roundtrip(&Value::Float(-0.0)) else { panic!("float") };
        assert!(z.to_bits() == (-0.0f64).to_bits());
    }

    #[test]
    fn trees_roundtrip() {
        let tree = Value::Map(vec![
            ("ok".to_string(), Value::Bool(true)),
            (
                "scores".to_string(),
                Value::Seq(vec![Value::Float(1.5), Value::Null, Value::UInt(7)]),
            ),
            ("nested".to_string(), Value::Map(vec![("k".to_string(), Value::Str("v".into()))])),
        ]);
        assert_eq!(roundtrip(&tree), tree);
    }

    #[test]
    fn decode_rejects_defects() {
        // Trailing bytes.
        let mut bytes = Vec::new();
        encode_value(&Value::Null, &mut bytes);
        bytes.push(0);
        assert!(decode_value(&bytes).unwrap_err().contains("trailing"));
        // Unknown tag.
        assert!(decode_value(&[200]).unwrap_err().contains("unknown"));
        // Truncation at every prefix of a small map.
        let mut map = Vec::new();
        encode_value(
            &Value::Map(vec![("key".to_string(), Value::UInt(9))]),
            &mut map,
        );
        for cut in 0..map.len() {
            assert!(decode_value(&map[..cut]).is_err(), "prefix {cut} must not decode");
        }
        // Hostile element count.
        let mut seq = vec![TAG_SEQ];
        seq.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_value(&seq).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn frames_roundtrip_and_sniff() {
        let frame = encode_frame(KIND_REQUEST, 6, b"payload");
        assert!(sniff_binary(frame[0]));
        assert!(!sniff_binary(0x00));
        let (parsed, consumed) = try_parse(&frame).unwrap().expect("complete");
        assert_eq!(consumed, frame.len());
        assert_eq!(parsed, Frame { kind: KIND_REQUEST, op: 6, payload: b"payload".to_vec() });
        // Incremental: every proper prefix wants more bytes.
        for cut in 0..frame.len() {
            assert!(try_parse(&frame[..cut]).unwrap().is_none(), "prefix {cut}");
        }
        // Two frames back to back: the first parse reports its length.
        let mut two = frame.clone();
        two.extend_from_slice(&encode_frame(KIND_RESPONSE, 6, b"x"));
        let (first, consumed) = try_parse(&two).unwrap().expect("first frame");
        assert_eq!(first.payload, b"payload");
        let (second, _) = try_parse(&two[consumed..]).unwrap().expect("second frame");
        assert_eq!(second.kind, KIND_RESPONSE);
    }

    #[test]
    fn malformed_frames_are_typed() {
        let good = encode_frame(KIND_REQUEST, 1, b"abc");
        // Bad magic is detected from the very first wrong byte.
        assert!(matches!(try_parse(b"X"), Err(BinaryError::BadMagic(_))));
        assert!(matches!(try_parse(b"CKP2"), Err(BinaryError::BadMagic(_))));
        // JSON-looking bytes are a bad magic too, not a hang.
        assert!(matches!(try_parse(b"\x00\x00\x00\x05hello"), Err(BinaryError::BadMagic(_))));
        // Bad kind / reserved.
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(try_parse(&bad), Err(BinaryError::BadKind(9))));
        let mut bad = good.clone();
        bad[5] = 1;
        assert!(matches!(try_parse(&bad), Err(BinaryError::BadReserved(1))));
        // Oversized length is rejected from the header alone.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(try_parse(&bad), Err(BinaryError::TooLarge(_))));
        // A flipped payload bit fails the CRC.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(try_parse(&bad), Err(BinaryError::BadCrc { .. })));
    }

    #[test]
    fn requests_roundtrip_through_the_codec() {
        use circlekit_live::Mutation;
        use circlekit_scoring::ScoringFunction;
        let requests = vec![
            Request::Health,
            Request::ListGroups { snapshot: "gplus".to_string() },
            Request::ScoreGroup {
                snapshot: "gplus".to_string(),
                group: 3,
                functions: ScoringFunction::ALL.to_vec(),
                deadline_ms: Some(250),
            },
            Request::ApplyMutations {
                snapshot: "gplus".to_string(),
                mutations: vec![
                    Mutation::AddEdge { u: 1, v: 2 },
                    Mutation::AddVertex,
                    Mutation::RemoveMember { group: 0, node: 7 },
                ],
            },
            Request::ShardStats {
                snapshot: "gplus".to_string(),
                group: None,
                members: Some(vec![1, 2, 3]),
                deadline_ms: None,
            },
        ];
        for request in requests {
            let (op, payload) = encode_request(&request);
            let decoded = decode_request(op, &payload).expect("decode");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn unknown_op_id_is_a_bad_request() {
        let mut payload = Vec::new();
        encode_value(&Value::Map(vec![]), &mut payload);
        let err = decode_request(999, &payload).unwrap_err();
        assert_eq!(err.0, ErrorKind::BadRequest);
        assert!(err.1.contains("unknown op id"));
    }

    #[test]
    fn response_payload_is_the_parsed_json_tree() {
        let rendered = crate::protocol::ok_payload(vec![
            ("size".to_string(), Value::UInt(12)),
            ("score".to_string(), Value::Float(0.1 + 0.2)),
        ]);
        let payload = encode_response_payload(&rendered).unwrap();
        let tree = decode_response_payload(&payload).unwrap();
        let reparsed: Value = serde_json::from_str(&rendered).unwrap();
        assert_eq!(tree, reparsed);
    }

    #[test]
    fn op_table_is_bijective() {
        for (id, name) in OPS {
            assert_eq!(op_name(*id), Some(*name));
            assert_eq!(op_id(name), Some(*id));
        }
        assert_eq!(op_name(0), None);
        assert_eq!(op_name(OP_UNKNOWN), None);
        assert_eq!(op_id("nope"), None);
    }

    #[test]
    fn wire_helpers_read_binary_decoded_trees() {
        // Sanity: the wire::get helpers work on bval-decoded trees just
        // as on JSON-parsed ones (same Value type).
        let mut payload = Vec::new();
        encode_value(
            &Value::Map(vec![("groups".to_string(), Value::UInt(4))]),
            &mut payload,
        );
        let tree = decode_response_payload(&payload).unwrap();
        assert_eq!(wire::get_u64(&tree, "groups").unwrap(), 4);
    }
}
