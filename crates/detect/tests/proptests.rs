//! Property tests for the detection baselines: outputs must always be
//! valid partitions/covers of the input graph.

use circlekit_detect::{
    girvan_newman, k_core, label_propagation, louvain, modularity_of_partition,
    normalized_mutual_information,
};
use circlekit_graph::{Graph, GraphBuilder, VertexSet};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MAX_NODE: u32 = 20;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 0..80).prop_map(|edges| {
        let mut b = GraphBuilder::undirected();
        b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
        b.build()
    })
}

fn is_partition(parts: &[VertexSet], n: usize) -> bool {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total != n {
        return false;
    }
    let union = parts.iter().fold(VertexSet::new(), |acc, p| acc.union(p));
    union.len() == n
}

proptest! {
    #[test]
    fn louvain_outputs_partition(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts = louvain(&g, &mut rng);
        prop_assert!(is_partition(&parts, g.node_count()));
        // Louvain's result never has worse modularity than all-singletons.
        let singletons: Vec<VertexSet> = (0..g.node_count() as u32)
            .map(|v| VertexSet::from_vec(vec![v]))
            .collect();
        prop_assert!(
            modularity_of_partition(&g, &parts)
                >= modularity_of_partition(&g, &singletons) - 1e-9
        );
    }

    #[test]
    fn lpa_outputs_partition(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts = label_propagation(&g, 15, &mut rng);
        prop_assert!(is_partition(&parts, g.node_count()));
    }

    #[test]
    fn girvan_newman_outputs_partition(g in arbitrary_graph(), target in 1usize..5) {
        let parts = girvan_newman(&g, target);
        if g.node_count() > 0 {
            prop_assert!(is_partition(&parts, g.node_count()));
            // GN either reaches the target or ran out of edges trying.
            prop_assert!(
                parts.len() >= target.min(g.node_count())
                    || parts
                        .iter()
                        .all(|p| g.subgraph(p).unwrap().graph().edge_count() == 0)
                    || parts.len() >= circlekit_graph::connected_components(&g).component_count()
            );
        } else {
            prop_assert!(parts.is_empty());
        }
    }

    #[test]
    fn k_core_members_have_internal_degree_k(g in arbitrary_graph(), k in 0usize..5) {
        let core = k_core(&g, k);
        let sub = g.subgraph(&core).unwrap();
        for v in 0..sub.graph().node_count() as u32 {
            prop_assert!(sub.graph().degree(v) >= k);
        }
        // Maximality-lite: the (k+1)-core is contained in the k-core.
        let tighter = k_core(&g, k + 1);
        prop_assert_eq!(tighter.intersection(&core).len(), tighter.len());
    }

    #[test]
    fn nmi_bounds_and_identity(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = louvain(&g, &mut rng);
        let b = label_propagation(&g, 15, &mut rng);
        let n = g.node_count();
        if n == 0 {
            return Ok(());
        }
        let nmi = normalized_mutual_information(&a, &b, n);
        prop_assert!((0.0..=1.0).contains(&nmi));
        prop_assert!((normalized_mutual_information(&a, &a, n) - 1.0).abs() < 1e-9
            // A single-block partition carries no information; NMI(a, a)
            // is defined as 1 there via the equal-block-count convention.
            || a.len() <= 1);
    }

    #[test]
    fn modularity_is_bounded(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts = louvain(&g, &mut rng);
        let q = modularity_of_partition(&g, &parts);
        prop_assert!((-1.0..=1.0).contains(&q), "q = {q}");
    }
}
