//! Girvan–Newman divisive community detection — the algorithm from the
//! paper's reference [23] (Newman & Girvan 2004), which also supplies the
//! Modularity null model.

use circlekit_graph::{connected_components, Direction, Graph, GraphBuilder, VertexSet};
use circlekit_metrics::edge_betweenness;

/// Girvan–Newman: repeatedly remove the highest-edge-betweenness edge and
/// split on the emerging connected components, until at least
/// `target_communities` components exist (or no edges remain). The
/// classic divisive benchmark against which modularity methods were
/// developed.
///
/// Recomputes betweenness after every removal (`O(n·m)` each), so this is
/// meant for graphs up to a few thousand edges — the regime of individual
/// ego networks.
///
/// Returns the components as communities, largest first.
pub fn girvan_newman(graph: &Graph, target_communities: usize) -> Vec<VertexSet> {
    let und = graph.to_undirected();
    let n = und.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut edges: Vec<(u32, u32)> = und.edges().collect();
    let mut current = und.clone();
    loop {
        let cc = connected_components(&current);
        if cc.component_count() >= target_communities || edges.is_empty() {
            let mut out: Vec<VertexSet> = (0..cc.component_count() as u32)
                .map(|id| cc.members(id))
                .collect();
            out.sort_by_key(|g| std::cmp::Reverse((g.len(), g.as_slice().first().copied())));
            return out;
        }
        // Remove the highest-betweenness edge.
        let eb = edge_betweenness(&current, Direction::Both);
        let (&worst, _) = eb
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite centralities"))
            .expect("graph still has edges");
        edges.retain(|&e| e != worst);
        let mut b = GraphBuilder::undirected();
        b.reserve_nodes(n);
        b.add_edges(edges.iter().copied());
        current = b.build();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(base: u32, k: u32) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((base + i, base + j));
            }
        }
        edges
    }

    #[test]
    fn splits_two_cliques_at_the_bridge() {
        let mut edges = clique(0, 5);
        edges.extend(clique(5, 5));
        edges.push((0, 5));
        let g = Graph::from_edges(false, edges);
        let communities = girvan_newman(&g, 2);
        assert_eq!(communities.len(), 2);
        assert_eq!(communities[0].len(), 5);
        assert_eq!(communities[1].len(), 5);
        // The split is exactly at the bridge.
        assert!(communities.iter().any(|c| c.contains(0) && !c.contains(5)));
    }

    #[test]
    fn splits_three_cliques() {
        let mut edges = clique(0, 4);
        edges.extend(clique(4, 4));
        edges.extend(clique(8, 4));
        edges.push((0, 4));
        edges.push((4, 8));
        let g = Graph::from_edges(false, edges);
        let communities = girvan_newman(&g, 3);
        assert_eq!(communities.len(), 3);
        assert!(communities.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn target_one_returns_whole_components() {
        let g = Graph::from_edges(false, clique(0, 4));
        let communities = girvan_newman(&g, 1);
        assert_eq!(communities.len(), 1);
        assert_eq!(communities[0].len(), 4);
    }

    #[test]
    fn disconnected_input_needs_no_removals() {
        let mut edges = clique(0, 3);
        edges.extend(clique(3, 3));
        let g = Graph::from_edges(false, edges);
        let communities = girvan_newman(&g, 2);
        assert_eq!(communities.len(), 2);
    }

    #[test]
    fn unreachable_target_stops_at_edgeless_graph() {
        let g = Graph::from_edges(false, [(0u32, 1u32)]);
        let communities = girvan_newman(&g, 10);
        assert_eq!(communities.len(), 2); // singletons after the only removal
    }

    #[test]
    fn directed_input_uses_undirected_view() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 0), (1, 2)]);
        let communities = girvan_newman(&g, 2);
        assert_eq!(communities.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected().build();
        assert!(girvan_newman(&g, 2).is_empty());
    }

    #[test]
    fn agrees_with_louvain_on_planted_structure() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut edges = clique(0, 6);
        edges.extend(clique(6, 6));
        edges.push((1, 7));
        let g = Graph::from_edges(false, edges);
        let gn = girvan_newman(&g, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let lv = crate::louvain(&g, &mut rng);
        let nmi = crate::normalized_mutual_information(&gn, &lv, g.node_count());
        assert!(nmi > 0.99, "nmi = {nmi}");
    }
}
