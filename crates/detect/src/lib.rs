//! Detection baselines.
//!
//! The paper only *scores* given groups, but two of its reference points
//! are detection systems: McAuley–Leskovec's automatic circle discovery in
//! ego networks, and the community-detection literature behind the scoring
//! functions. This crate provides light-weight baselines used in the
//! extension experiments ("do *detected* communities score like circles or
//! like classical communities?"):
//!
//! * [`label_propagation`] — asynchronous label propagation over the
//!   undirected view,
//! * [`detect_circles`] — LPA applied inside one ego network, the
//!   McAuley–Leskovec-style clustering baseline,
//! * [`k_core`] — the maximal subgraph of minimum degree `k`,
//! * [`louvain`] — Louvain modularity optimisation, with
//!   [`modularity_of_partition`] and [`normalized_mutual_information`]
//!   for evaluating detected partitions against planted ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod girvan_newman;
mod louvain;

pub use girvan_newman::girvan_newman;
pub use louvain::{louvain, modularity_of_partition, normalized_mutual_information};

use circlekit_graph::{Direction, Graph, NodeId, VertexSet};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Asynchronous label propagation (Raghavan et al.): every node adopts the
/// most frequent label among its neighbours (ties broken at random) until
/// labels stabilise or `max_sweeps` is reached.
///
/// Orientation is ignored. Returns the detected communities, largest
/// first; isolated vertices come back as singletons.
pub fn label_propagation<R: Rng + ?Sized>(
    graph: &Graph,
    max_sweeps: usize,
    rng: &mut R,
) -> Vec<VertexSet> {
    let n = graph.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..max_sweeps {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            let mut freq: HashMap<u32, usize> = HashMap::new();
            for w in graph.neighbors(v, Direction::Both) {
                *freq.entry(labels[w as usize]).or_insert(0) += 1;
            }
            if freq.is_empty() {
                continue;
            }
            let best_count = *freq.values().max().expect("non-empty");
            let mut winners: Vec<u32> = freq
                .into_iter()
                .filter(|&(_, c)| c == best_count)
                .map(|(l, _)| l)
                .collect();
            winners.sort_unstable(); // determinism before the random tie-break
            let new = *winners.choose(rng).expect("non-empty winners");
            if labels[v as usize] != new {
                labels[v as usize] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    group_by_label(&labels)
}

/// Groups nodes by label, returning communities sorted largest-first.
fn group_by_label(labels: &[u32]) -> Vec<VertexSet> {
    let mut groups: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(v as NodeId);
    }
    let mut out: Vec<VertexSet> = groups.into_values().map(VertexSet::from_vec).collect();
    out.sort_by_key(|g| std::cmp::Reverse((g.len(), g.as_slice().first().copied())));
    out
}

/// Detects circles in the ego network of `owner` by clustering the ego
/// network *minus the owner* with label propagation (the owner links to
/// every alter and would otherwise glue all clusters together) — the
/// McAuley–Leskovec problem statement with an LPA solver.
///
/// Returns detected circles of at least `min_size` members, largest first,
/// as vertex sets in the parent graph's id space.
///
/// # Panics
///
/// Panics if `owner >= node_count()`.
pub fn detect_circles<R: Rng + ?Sized>(
    graph: &Graph,
    owner: NodeId,
    min_size: usize,
    rng: &mut R,
) -> Vec<VertexSet> {
    let mut ego = graph.ego_network(owner);
    ego.remove(owner);
    let sub = graph.subgraph(&ego).expect("ego members are valid ids");
    let clusters = label_propagation(sub.graph(), 20, rng);
    clusters
        .into_iter()
        .filter(|c| c.len() >= min_size)
        .map(|c| c.iter().map(|local| sub.to_parent(local)).collect())
        .collect()
}

/// The `k`-core: the maximal vertex set in which every member has at least
/// `k` neighbours (undirected view) inside the set. Returns an empty set
/// when no such subgraph exists.
pub fn k_core(graph: &Graph, k: usize) -> VertexSet {
    let n = graph.node_count();
    let mut degree: Vec<usize> = (0..n as NodeId)
        .map(|v| graph.neighbors(v, Direction::Both).count())
        .collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| degree[v as usize] < k)
        .collect();
    while let Some(v) = stack.pop() {
        if removed[v as usize] {
            continue;
        }
        removed[v as usize] = true;
        for w in graph.neighbors(v, Direction::Both) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
                if degree[w as usize] < k {
                    stack.push(w);
                }
            }
        }
    }
    (0..n as NodeId).filter(|&v| !removed[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two 5-cliques joined by a single bridge edge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        Graph::from_edges(false, edges)
    }

    #[test]
    fn lpa_splits_two_cliques() {
        let g = two_cliques();
        let mut rng = SmallRng::seed_from_u64(1);
        let communities = label_propagation(&g, 50, &mut rng);
        // LPA should find exactly the two cliques (occasionally one blob;
        // the seed is chosen so it splits).
        assert_eq!(communities.len(), 2, "{communities:?}");
        assert_eq!(communities[0].len(), 5);
        assert_eq!(communities[1].len(), 5);
    }

    #[test]
    fn lpa_partitions_all_nodes() {
        let g = two_cliques();
        let mut rng = SmallRng::seed_from_u64(2);
        let communities = label_propagation(&g, 50, &mut rng);
        let total: usize = communities.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn lpa_isolated_nodes_are_singletons() {
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.add_edge(0, 1).reserve_nodes(4);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(3);
        let communities = label_propagation(&g, 10, &mut rng);
        assert_eq!(communities.len(), 3); // {0,1}, {2}, {3}
    }

    #[test]
    fn detect_circles_in_planted_ego() {
        // Owner 0 points at two 4-cliques of alters.
        let mut edges: Vec<(u32, u32)> = (1u32..=8).map(|v| (0, v)).collect();
        for base in [1u32, 5] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::from_edges(true, edges);
        let mut rng = SmallRng::seed_from_u64(4);
        let circles = detect_circles(&g, 0, 2, &mut rng);
        assert_eq!(circles.len(), 2, "{circles:?}");
        assert!(circles.iter().all(|c| c.len() == 4));
        assert!(circles.iter().all(|c| !c.contains(0)));
    }

    #[test]
    fn k_core_of_clique_plus_tail() {
        let mut edges = vec![(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        edges.push((4, 5));
        let g = Graph::from_edges(false, edges);
        assert_eq!(k_core(&g, 3).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(k_core(&g, 1).len(), 6);
        assert!(k_core(&g, 4).is_empty());
    }

    #[test]
    fn k_core_zero_is_everything() {
        let g = two_cliques();
        assert_eq!(k_core(&g, 0).len(), g.node_count());
    }

    #[test]
    fn k_core_directed_uses_total_neighbourhood() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        assert_eq!(k_core(&g, 2).len(), 3);
    }
}
