//! Louvain modularity optimisation and partition-comparison metrics.

use circlekit_graph::{Direction, Graph, NodeId, VertexSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// Newman–Girvan modularity of a disjoint partition:
/// `Q = Σ_c (m_c / m - (d_c / 2m)²)` on the undirected view.
///
/// Nodes missing from every part are treated as singletons. Returns `0.0`
/// for an edgeless graph.
///
/// ```
/// use circlekit_detect::modularity_of_partition;
/// use circlekit_graph::{Graph, VertexSet};
/// // Two triangles joined by one edge, split at the bridge.
/// let g = Graph::from_edges(false, [
///     (0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3),
/// ]);
/// let parts = vec![
///     VertexSet::from_vec(vec![0, 1, 2]),
///     VertexSet::from_vec(vec![3, 4, 5]),
/// ];
/// let q = modularity_of_partition(&g, &parts);
/// assert!(q > 0.3, "q = {q}");
/// ```
pub fn modularity_of_partition(graph: &Graph, parts: &[VertexSet]) -> f64 {
    let und;
    let g = if graph.is_directed() {
        und = graph.to_undirected();
        &und
    } else {
        graph
    };
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    // Node -> community label (singletons for uncovered nodes).
    let mut label = vec![u32::MAX; g.node_count()];
    for (c, part) in parts.iter().enumerate() {
        for v in part.iter() {
            label[v as usize] = c as u32;
        }
    }
    let mut next = parts.len() as u32;
    for l in label.iter_mut() {
        if *l == u32::MAX {
            *l = next;
            next += 1;
        }
    }
    let communities = next as usize;
    let mut internal = vec![0usize; communities];
    let mut degree = vec![0usize; communities];
    for v in 0..g.node_count() as NodeId {
        degree[label[v as usize] as usize] += g.degree(v);
    }
    for (u, v) in g.edges() {
        if label[u as usize] == label[v as usize] {
            internal[label[u as usize] as usize] += 1;
        }
    }
    (0..communities)
        .map(|c| internal[c] as f64 / m - (degree[c] as f64 / (2.0 * m)).powi(2))
        .sum()
}

/// Louvain community detection (Blondel et al. 2008): greedy local moving
/// plus graph aggregation, repeated until modularity stops improving.
///
/// Operates on the undirected view; returns the detected communities,
/// largest first. Deterministic given the RNG (node visiting order is
/// shuffled per sweep).
pub fn louvain<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Vec<VertexSet> {
    let und;
    let g = if graph.is_directed() {
        und = graph.to_undirected();
        &und
    } else {
        graph
    };
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }

    // Weighted multigraph state: adjacency (neighbour, weight), self-loop
    // weights, and the mapping super-node -> original nodes.
    let mut adjacency: Vec<Vec<(u32, f64)>> = (0..n as NodeId)
        .map(|v| {
            g.neighbors(v, Direction::Both)
                .map(|w| (w, 1.0))
                .collect()
        })
        .collect();
    let mut self_loops: Vec<f64> = vec![0.0; n];
    let mut members: Vec<Vec<NodeId>> = (0..n as NodeId).map(|v| vec![v]).collect();
    let total_weight = g.edge_count() as f64; // m (undirected)
    if total_weight == 0.0 {
        return members.into_iter().map(VertexSet::from_vec).collect();
    }

    for _level in 0..32 {
        let count = adjacency.len();
        // Node strengths: weighted degree + 2 * self-loop.
        let strength: Vec<f64> = (0..count)
            .map(|v| adjacency[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self_loops[v])
            .collect();
        let mut community: Vec<u32> = (0..count as u32).collect();
        let mut community_strength = strength.clone();

        // Local moving until a full sweep makes no move.
        let mut order: Vec<usize> = (0..count).collect();
        let mut moved_any = false;
        for _sweep in 0..64 {
            order.shuffle(rng);
            let mut moved = false;
            for &v in &order {
                let current = community[v];
                // Weight from v to each adjacent community. BTreeMap, not
                // HashMap: the best-gain scan below iterates the keys, and
                // per-instance hash seeds would make tie-breaking (and thus
                // the whole run) nondeterministic under a fixed RNG.
                let mut to_comm: std::collections::BTreeMap<u32, f64> =
                    std::collections::BTreeMap::new();
                for &(w, weight) in &adjacency[v] {
                    to_comm
                        .entry(community[w as usize])
                        .and_modify(|x| *x += weight)
                        .or_insert(weight);
                }
                community_strength[current as usize] -= strength[v];
                let k_v = strength[v];
                let two_m = 2.0 * total_weight;
                // Gain of joining community c: k_{v,c}/m - Σ_c k_v / 2m².
                let gain = |c: u32| {
                    let k_vc = to_comm.get(&c).copied().unwrap_or(0.0);
                    k_vc / total_weight
                        - community_strength[c as usize] * k_v / (two_m * total_weight)
                };
                let mut best = current;
                let mut best_gain = gain(current);
                for &c in to_comm.keys() {
                    let g = gain(c);
                    if g > best_gain + 1e-12 {
                        best = c;
                        best_gain = g;
                    }
                }
                community[v] = best;
                community_strength[best as usize] += strength[v];
                if best != current {
                    moved = true;
                    moved_any = true;
                }
            }
            if !moved {
                break;
            }
        }
        if !moved_any {
            break;
        }

        // Compact community labels.
        let mut relabel: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &c in &community {
            let next = relabel.len() as u32;
            relabel.entry(c).or_insert(next);
        }
        let new_count = relabel.len();
        if new_count == count {
            break; // no aggregation possible
        }

        // Aggregate: new adjacency/self-loops/membership.
        let mut new_members: Vec<Vec<NodeId>> = vec![Vec::new(); new_count];
        let mut new_self: Vec<f64> = vec![0.0; new_count];
        // BTreeMap so the aggregated adjacency lists come out in sorted
        // order; their order feeds the next level's float accumulation.
        let mut edge_weights: std::collections::BTreeMap<(u32, u32), f64> =
            std::collections::BTreeMap::new();
        for v in 0..count {
            let cv = relabel[&community[v]];
            new_members[cv as usize].append(&mut members[v]);
            new_self[cv as usize] += self_loops[v];
            for &(w, weight) in &adjacency[v] {
                let cw = relabel[&community[w as usize]];
                if cv == cw {
                    // Each internal edge visited from both endpoints.
                    new_self[cv as usize] += weight / 2.0;
                } else {
                    let key = (cv.min(cw), cv.max(cw));
                    *edge_weights.entry(key).or_insert(0.0) += weight / 2.0;
                }
            }
        }
        let mut new_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); new_count];
        for (&(a, b), &w) in &edge_weights {
            new_adj[a as usize].push((b, w));
            new_adj[b as usize].push((a, w));
        }
        adjacency = new_adj;
        self_loops = new_self;
        members = new_members;
        if new_count == 1 {
            break;
        }
    }

    let mut out: Vec<VertexSet> = members
        .into_iter()
        .filter(|m| !m.is_empty())
        .map(VertexSet::from_vec)
        .collect();
    out.sort_by_key(|g| std::cmp::Reverse((g.len(), g.as_slice().first().copied())));
    out
}

/// Normalized mutual information between two disjoint partitions of
/// `0..n`: `2 I(A; B) / (H(A) + H(B))`.
///
/// Nodes missing from a partition are treated as singletons. Returns `1.0`
/// for identical partitions and `0.0` when either partition carries no
/// information (a single block) or `n == 0`.
pub fn normalized_mutual_information(a: &[VertexSet], b: &[VertexSet], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let label = |parts: &[VertexSet]| -> Vec<u32> {
        let mut l = vec![u32::MAX; n];
        for (c, part) in parts.iter().enumerate() {
            for v in part.iter() {
                if (v as usize) < n {
                    l[v as usize] = c as u32;
                }
            }
        }
        let mut next = parts.len() as u32;
        for x in l.iter_mut() {
            if *x == u32::MAX {
                *x = next;
                next += 1;
            }
        }
        l
    };
    let la = label(a);
    let lb = label(b);
    let ka = 1 + *la.iter().max().expect("n > 0") as usize;
    let kb = 1 + *lb.iter().max().expect("n > 0") as usize;
    let mut joint = vec![0u32; ka * kb];
    let mut ca = vec![0u32; ka];
    let mut cb = vec![0u32; kb];
    for i in 0..n {
        joint[la[i] as usize * kb + lb[i] as usize] += 1;
        ca[la[i] as usize] += 1;
        cb[lb[i] as usize] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..ka {
        for j in 0..kb {
            let nij = joint[i * kb + j] as f64;
            if nij > 0.0 {
                mi += (nij / nf) * ((nij * nf) / (ca[i] as f64 * cb[j] as f64)).ln();
            }
        }
    }
    let entropy = |counts: &[u32]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (entropy(&ca), entropy(&cb));
    if ha + hb == 0.0 {
        return if ka == kb { 1.0 } else { 0.0 };
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_cliques(bridges: usize) -> Graph {
        let mut edges = Vec::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for k in 0..bridges as u32 {
            edges.push((k, 6 + k));
        }
        Graph::from_edges(false, edges)
    }

    #[test]
    fn louvain_splits_two_cliques() {
        let g = two_cliques(1);
        let mut rng = SmallRng::seed_from_u64(1);
        let communities = louvain(&g, &mut rng);
        assert_eq!(communities.len(), 2, "{communities:?}");
        assert_eq!(communities[0].len(), 6);
        assert_eq!(communities[1].len(), 6);
    }

    #[test]
    fn louvain_partitions_all_nodes() {
        let g = two_cliques(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let communities = louvain(&g, &mut rng);
        let total: usize = communities.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.node_count());
        // Disjointness.
        for i in 0..communities.len() {
            for j in (i + 1)..communities.len() {
                assert!(!communities[i].overlaps(&communities[j]));
            }
        }
    }

    #[test]
    fn louvain_modularity_beats_trivial_partitions() {
        let g = two_cliques(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let communities = louvain(&g, &mut rng);
        let q = modularity_of_partition(&g, &communities);
        let whole = vec![(0u32..12).collect::<VertexSet>()];
        let singletons: Vec<VertexSet> =
            (0u32..12).map(|v| VertexSet::from_vec(vec![v])).collect();
        assert!(q > modularity_of_partition(&g, &whole));
        assert!(q > modularity_of_partition(&g, &singletons));
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn modularity_of_whole_graph_is_zero() {
        let g = two_cliques(1);
        let whole = vec![(0u32..12).collect::<VertexSet>()];
        assert!(modularity_of_partition(&g, &whole).abs() < 1e-12);
    }

    #[test]
    fn louvain_on_edgeless_graph_gives_singletons() {
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.reserve_nodes(5);
        let mut rng = SmallRng::seed_from_u64(4);
        let communities = louvain(&b.build(), &mut rng);
        assert_eq!(communities.len(), 5);
    }

    #[test]
    fn nmi_identity_and_independence() {
        let a = vec![
            VertexSet::from_vec(vec![0, 1, 2]),
            VertexSet::from_vec(vec![3, 4, 5]),
        ];
        assert!((normalized_mutual_information(&a, &a, 6) - 1.0).abs() < 1e-12);
        // A partition vs the whole set: no shared information.
        let whole = vec![(0u32..6).collect::<VertexSet>()];
        assert_eq!(normalized_mutual_information(&a, &whole, 6), 0.0);
    }

    #[test]
    fn nmi_is_symmetric_and_bounded() {
        let a = vec![
            VertexSet::from_vec(vec![0, 1, 2, 3]),
            VertexSet::from_vec(vec![4, 5]),
        ];
        let b = vec![
            VertexSet::from_vec(vec![0, 1]),
            VertexSet::from_vec(vec![2, 3, 4, 5]),
        ];
        let ab = normalized_mutual_information(&a, &b, 6);
        let ba = normalized_mutual_information(&b, &a, 6);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn louvain_recovers_planted_partition_with_high_nmi() {
        // Four planted 8-cliques with sparse noise between them.
        let mut edges = Vec::new();
        let mut truth = Vec::new();
        for c in 0..4u32 {
            let base = c * 8;
            truth.push((base..base + 8).collect::<VertexSet>());
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.extend([(0u32, 8u32), (8, 16), (16, 24), (24, 0)]);
        let g = Graph::from_edges(false, edges);
        let mut rng = SmallRng::seed_from_u64(5);
        let detected = louvain(&g, &mut rng);
        let nmi = normalized_mutual_information(&detected, &truth, 32);
        assert!(nmi > 0.9, "nmi = {nmi}, detected = {detected:?}");
    }
}
