//! Minimal `extern "C"` bindings to the handful of Linux syscalls the
//! event loop needs. The workspace vendors no `libc`/`mio`, so these are
//! declared directly — the same approach `circlekit-serve` takes for
//! `signal(2)` and `circlekit-store` for `mmap(2)`. Everything here is
//! Linux-specific (`epoll(7)` has no portable equivalent); the crate
//! compiles only on Linux targets, which is where the daemon runs.

#![allow(non_camel_case_types)]

pub type c_int = i32;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const IPPROTO_TCP: c_int = 6;
pub const TCP_NODELAY: c_int = 1;

pub const O_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event` with the kernel's layout. On x86-64 the kernel
/// declares it `__attribute__((packed))` (12 bytes, data word at offset
/// 4); on other architectures it is naturally aligned.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

/// See the x86-64 variant above.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout_ms: c_int,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    pub fn listen(fd: c_int, backlog: c_int) -> c_int;
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
}

/// `pipe2(2)`'s `O_NONBLOCK` is the same bit as `fcntl`'s.
pub const PIPE_NONBLOCK: c_int = O_NONBLOCK;

/// The last syscall error as an [`std::io::Error`].
pub fn last_error() -> std::io::Error {
    std::io::Error::last_os_error()
}
