//! [`Poller`]: a level-triggered `epoll(7)` readiness queue, plus the
//! [`WakePipe`] other threads use to interrupt a blocked wait.
//!
//! Level-triggered (the default, no `EPOLLET`) keeps the state machine
//! simple: a socket with unread bytes or writable space keeps reporting
//! ready, so a handler that drains *some* of the data never strands the
//! rest — there is no "must read to EAGAIN or lose the edge" obligation.

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd has writable buffer space.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (includes a half-closed peer: reads will
    /// return the buffered tail, then 0).
    pub readable: bool,
    /// The fd has writable space.
    pub writable: bool,
    /// The peer closed (EPOLLHUP/EPOLLRDHUP) — drain reads, then close.
    pub hangup: bool,
    /// The fd is in an error state — close it.
    pub error: bool,
}

/// A level-triggered epoll instance.
///
/// Registrations map an fd to a caller-chosen `u64` token; [`Poller::wait`]
/// reports readiness as [`Event`]s carrying that token back. The instance
/// owns only its own epoll fd — registered sockets stay owned by the
/// caller.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The `epoll_create1(2)` errno.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(sys::last_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = sys::epoll_event { events: interest.mask(), u64: token };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(sys::last_error());
        }
        Ok(())
    }

    /// Adds `fd` under `token`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno (e.g. `EEXIST` for a duplicate add).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's interest (and token).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno (e.g. `ENOENT` if never registered).
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the instance. Closing an fd deregisters it
    /// implicitly, but an explicit removal is required when the fd is
    /// being handed to another owner (e.g. a replication thread) rather
    /// than closed.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut event = sys::epoll_event { events: 0, u64: 0 };
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
        if rc < 0 {
            return Err(sys::last_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), replacing `events`'s
    /// contents with the notifications. Interrupted waits (`EINTR`, e.g.
    /// a SIGTERM arriving) return an empty set rather than an error so
    /// callers fall through to their flag polls.
    ///
    /// # Errors
    ///
    /// The `epoll_wait(2)` errno (never `EINTR`).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [sys::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        let timeout_ms: sys::c_int = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps instead of spinning.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = unsafe {
            sys::epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as sys::c_int, timeout_ms)
        };
        events.clear();
        if n < 0 {
            let err = sys::last_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for slot in raw.iter().take(n as usize) {
            let mask = slot.events;
            events.push(Event {
                token: { slot.u64 },
                readable: mask & sys::EPOLLIN != 0,
                writable: mask & sys::EPOLLOUT != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                error: mask & sys::EPOLLERR != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// A self-pipe: worker threads [`WakePipe::wake`] the loop out of
/// `epoll_wait` when they finish a request, so completions are written
/// promptly instead of at the next poll timeout.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe, both ends nonblocking and close-on-exec.
    ///
    /// # Errors
    ///
    /// The `pipe2(2)` errno.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [sys::c_int; 2] = [0; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::PIPE_NONBLOCK | sys::EPOLL_CLOEXEC) };
        if rc < 0 {
            return Err(sys::last_error());
        }
        Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The end to register with a [`Poller`] (read interest).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Nudges the poller. A full pipe means a wakeup is already pending,
    /// so `EAGAIN` is success; any byte in the pipe wakes the loop.
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe {
            sys::write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Drains every pending wakeup byte (call on read-readiness so the
    /// level-triggered poller stops reporting the pipe).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// The pipe is written from worker threads and drained on the loop; both
// operations are raw fd syscalls with no interior state.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_carries_the_token() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(server_side.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| !e.readable));

        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().find(|e| e.token == 7).expect("readiness event");
        assert!(event.readable);

        // Level-triggered: still ready until drained.
        poller.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 16];
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // Peer close reports readable (EOF) + hangup.
        drop(client);
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().find(|e| e.token == 7).expect("hangup event");
        assert!(event.readable || event.hangup);
        poller.deregister(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn reregister_switches_interest() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let fd = server_side.as_raw_fd();
        poller.register(fd, 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 1 || !e.writable));
        // An idle socket is immediately writable once we ask.
        poller.reregister(fd, 2, Interest::BOTH).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().find(|e| e.token == 2).expect("writable event");
        assert!(event.writable);
        drop(client);
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.register(pipe.read_fd(), 99, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Wake from another thread interrupts an indefinite-ish wait.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                pipe.wake();
                pipe.wake(); // coalesces, never blocks
            });
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        });
        assert!(events.iter().any(|e| e.token == 99 && e.readable));

        pipe.drain();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 99));
    }
}
