//! Socket tuning applied consistently on every accept and connect path.
//!
//! Two knobs matter for the 10k-connection target:
//!
//! * **Listen backlog.** The default backlog the daemon inherited
//!   (std's 128) overflows under a burst of simultaneous connects and
//!   the kernel silently drops or resets the excess SYNs. [`tune_listener`]
//!   re-issues `listen(2)` with [`LISTEN_BACKLOG`] — on Linux, calling
//!   `listen` again on a listening socket just resizes the queue.
//! * **`TCP_NODELAY`.** Request/response frames are small; Nagle's
//!   algorithm would stall the tail of a frame behind an unacked
//!   segment. [`tune_stream`] disables it on every accepted and every
//!   dialed connection.
//!
//! `SO_REUSEADDR` is also (re)asserted on listeners so restarts never
//! fight TIME_WAIT — std sets it at bind on Unix, but the explicit call
//! keeps the guarantee local and covers listeners adopted from raw fds.

use crate::sys;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

/// The listen queue depth requested for every circlekit listener.
pub const LISTEN_BACKLOG: i32 = 1024;

fn set_int_opt(fd: i32, level: sys::c_int, opt: sys::c_int, value: sys::c_int) -> io::Result<()> {
    let rc = unsafe {
        sys::setsockopt(fd, level, opt, &value, std::mem::size_of::<sys::c_int>() as u32)
    };
    if rc < 0 {
        return Err(sys::last_error());
    }
    Ok(())
}

/// Asserts `SO_REUSEADDR` and raises the backlog to [`LISTEN_BACKLOG`].
///
/// # Errors
///
/// The `setsockopt(2)`/`listen(2)` errno.
pub fn tune_listener(listener: &TcpListener) -> io::Result<()> {
    let fd = listener.as_raw_fd();
    set_int_opt(fd, sys::SOL_SOCKET, sys::SO_REUSEADDR, 1)?;
    let rc = unsafe { sys::listen(fd, LISTEN_BACKLOG) };
    if rc < 0 {
        return Err(sys::last_error());
    }
    Ok(())
}

/// Disables Nagle (`TCP_NODELAY`) on a connection.
///
/// # Errors
///
/// The `setsockopt(2)` errno.
pub fn tune_stream(stream: &TcpStream) -> io::Result<()> {
    set_int_opt(stream.as_raw_fd(), sys::IPPROTO_TCP, sys::TCP_NODELAY, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_listener_still_accepts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        tune_listener(&listener).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        tune_stream(&client).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        tune_stream(&accepted).unwrap();
        assert!(accepted.nodelay().unwrap());
    }

    #[test]
    fn backlog_absorbs_a_connect_burst() {
        // With the raised backlog, a burst of simultaneous connects all
        // land in the accept queue even though nothing accepts yet.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        tune_listener(&listener).unwrap();
        let addr = listener.local_addr().unwrap();
        let burst: Vec<TcpStream> = (0..200)
            .map(|i| {
                TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i} refused: {e}"))
            })
            .collect();
        for _ in 0..burst.len() {
            listener.accept().expect("queued connection");
        }
    }
}
