//! `circlekit-net`: the nonblocking substrate under `circlekit-serve`'s
//! event-loop front end.
//!
//! The serving daemon's original design was thread-per-connection; the
//! path to the ROADMAP's 10k-connection target is readiness-driven I/O.
//! This crate provides exactly the primitives that front end needs and
//! nothing more, through raw `extern "C"` bindings (the workspace
//! vendors no `libc`/`mio`/`tokio` — the same idiom as `signal(2)` in
//! `circlekit-serve` and `mmap(2)` in `circlekit-store`):
//!
//! * [`Poller`] — a level-triggered `epoll(7)` instance mapping fds to
//!   caller-chosen `u64` tokens.
//! * [`WakePipe`] — a nonblocking self-pipe so worker threads can
//!   interrupt a blocked `epoll_wait` when a completion is ready.
//! * [`tune_listener`] / [`tune_stream`] — the socket knobs every
//!   circlekit accept and connect path applies: `SO_REUSEADDR`, a
//!   [`LISTEN_BACKLOG`]-deep accept queue, and `TCP_NODELAY`.
//!
//! Policy (protocol framing, connection state machines, dispatch) stays
//! in `circlekit-serve`; this crate is mechanism only, so the load
//! generator can drive thousands of client connections through the same
//! [`Poller`] the server uses.

#![warn(missing_docs)]

mod poller;
mod sys;
mod tune;

pub use poller::{Event, Interest, Poller, WakePipe};
pub use tune::{tune_listener, tune_stream, LISTEN_BACKLOG};
