//! `circlekit` — a reproduction of *"Are Circles Communities? A
//! Comparative Analysis of Selective Sharing in Google+"* (Brauer &
//! Schmidt, ICDCS 2014).
//!
//! The paper asks whether Google+ *circles* — owner-curated contact groups
//! — are structurally the same thing as classical *communities*
//! (member-joined interest groups à la LiveJournal/Orkut). Its method is
//! to score both kinds of groups with four community scoring functions and
//! compare the score CDFs, against size-matched random baselines (its
//! Figure 5) and across data sets (its Figure 6).
//!
//! This crate is the facade: it re-exports the subsystem crates and
//! provides the end-to-end experiment drivers in [`experiments`], one per
//! table/figure of the paper.
//!
//! ```
//! use circlekit::experiments::{circles_vs_random, ModularityMode};
//! use circlekit::synth::presets;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(2014);
//! let dataset = presets::google_plus().scaled(0.004).generate(&mut rng);
//! let fig5 = circles_vs_random(&dataset, ModularityMode::ClosedForm, &mut rng);
//! // Circles are pronounced structures: internally denser than random
//! // walks of the same size.
//! let avg_deg = &fig5.per_function[0];
//! assert!(avg_deg.circles.mean > avg_deg.random.mean);
//! ```
//!
//! # Crate map
//!
//! | Module | Backing crate | Role |
//! |---|---|---|
//! | [`graph`] | `circlekit-graph` | CSR graphs, vertex sets |
//! | [`metrics`] | `circlekit-metrics` | degrees, clustering, paths, egos |
//! | [`scoring`] | `circlekit-scoring` | the 13 scoring functions |
//! | [`nullmodel`] | `circlekit-nullmodel` | degree-preserving random graphs |
//! | [`statfit`] | `circlekit-statfit` | CSN heavy-tail fitting |
//! | [`stats`] | `circlekit-stats` | ECDFs, KS, summaries |
//! | [`sampling`] | `circlekit-sampling` | random-walk baselines, crawls |
//! | [`synth`] | `circlekit-synth` | synthetic corpora |
//! | [`detect`] | `circlekit-detect` | LPA / circle-detection baselines |
//! | [`discover`] | `circlekit-discover` | Seeded circle discovery over ego networks |
//! | [`store`] | `circlekit-store` | CKS1 binary snapshots, zero-copy loads |
//! | [`live`] | `circlekit-live` | WAL-backed mutations, incremental scores |
//! | [`shard`] | `circlekit-shard` | vertex partitioning, exact partial-stats reduction |
//! | [`experiments`] | this crate | one driver per table/figure |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use circlekit_detect as detect;
pub use circlekit_discover as discover;
pub use circlekit_graph as graph;
pub use circlekit_live as live;
pub use circlekit_metrics as metrics;
pub use circlekit_nullmodel as nullmodel;
pub use circlekit_sampling as sampling;
pub use circlekit_scoring as scoring;
pub use circlekit_shard as shard;
pub use circlekit_statfit as statfit;
pub use circlekit_store as store;
pub use circlekit_stats as stats;
pub use circlekit_synth as synth;

pub mod categorize;
pub mod checkpoint;
pub mod experiments;
pub mod render;
