//! Plain-text rendering of experiment reports, in the shape of the
//! paper's tables and figure series.

use crate::experiments::{
    CharacterizationRow, CirclesVsRandom, ClusteringReport, DatasetScores, DegreeFitReport,
    RobustnessReport,
};
use circlekit_metrics::EgoStats;
use circlekit_stats::Ecdf;
use circlekit_synth::DatasetSummary;
use std::fmt::Write as _;

/// Renders a group-scoring table: header, one row per group, then the
/// per-function summary block.
///
/// This is the single rendering path for group scores — the `score` CLI
/// and the `query` client of `circlekit-serve` both call it, which is
/// what makes served output byte-identical to the offline command.
/// `rows[i]` holds group `i`'s scores in `functions` order; `sizes[i]`
/// is its member count.
pub fn render_score_table(
    functions: &[circlekit_scoring::ScoringFunction],
    sizes: &[usize],
    rows: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>6} {:>6}", "group", "size");
    for f in functions {
        let _ = write!(out, " {:>14}", f.name());
    }
    let _ = writeln!(out);
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(out, "{:>6} {:>6}", i, sizes[i]);
        for v in row {
            let _ = write!(out, " {:>14.6}", v);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    for (f_idx, f) in functions.iter().enumerate() {
        let col: Vec<f64> = rows.iter().map(|row| row[f_idx]).collect();
        let _ = writeln!(out, "{:<16} {}", f.name(), circlekit_stats::Summary::from_slice(&col));
    }
    out
}

/// Renders Table II-style characterisation rows.
pub fn render_table2(rows: &[CharacterizationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>9} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "dataset", "vertices", "edges", "diameter", "asp", "in-dist", "out-dist", "avg-in", "avg-out"
    );
    for r in rows {
        let fam = |f: &Option<circlekit_statfit::ModelKind>| {
            f.map(|m| m.to_string()).unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>9} {:>7.2} {:>12} {:>12} {:>8.1} {:>8.1}",
            r.name,
            r.vertices,
            r.edges,
            r.diameter,
            r.average_shortest_path,
            fam(&r.in_degree_family),
            fam(&r.out_degree_family),
            r.average_in_degree,
            r.average_out_degree,
        );
    }
    out
}

/// Renders Table III-style data-set summary rows.
pub fn render_table3(rows: &[DatasetSummary]) -> String {
    rows.iter().map(|r| format!("{r}\n")).collect()
}

/// Renders the Figure 1 quantification: the ego-overlap matrix summary.
pub fn render_fig1(m: &crate::experiments::EgoOverlapMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ego networks: {}   overlapping pairs: {} ({:.1}% of pairs)",
        m.ego_count,
        m.overlapping_pairs,
        100.0 * m.pair_overlap_fraction()
    );
    // Bridge-width distribution over overlapping pairs.
    let mut widths: Vec<f64> = Vec::new();
    for i in 0..m.ego_count {
        for j in (i + 1)..m.ego_count {
            if m.shared[i][j] > 0 {
                widths.push(m.shared[i][j] as f64);
            }
        }
    }
    let _ = writeln!(
        out,
        "bridge vertices per overlapping pair: {}",
        circlekit_stats::Summary::from_slice(&widths)
    );
    out
}

/// Renders the Figure 2 membership series (`membership -> vertex count`).
pub fn render_fig2(stats: &EgoStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ego networks: {}   overlap fraction: {:.1}%   covered vertices: {}",
        stats.ego_count,
        100.0 * stats.overlap_fraction,
        stats.covered_vertices()
    );
    let _ = writeln!(out, "{:>12} {:>12}", "memberships", "vertices");
    for (k, c) in stats.membership_series() {
        let _ = writeln!(out, "{k:>12} {c:>12}");
    }
    out
}

/// Renders the Figure 3 fit verdict and the log-binned series.
pub fn render_fig3(report: &DegreeFitReport) -> String {
    let mut out = String::new();
    let f = &report.fit;
    let _ = writeln!(
        out,
        "best family: {}   (ks pl={:.4} ln={:.4} exp={:.4})",
        f.best, f.ks[0], f.ks[1], f.ks[2]
    );
    let _ = writeln!(
        out,
        "scanned power law: alpha={:.3} x_min={} ks={:.4} tail={}",
        f.scanned.alpha, f.scanned.x_min, f.scanned.ks, f.scanned.tail_len
    );
    let _ = writeln!(
        out,
        "log-normal fit: mu={:.3} sigma={:.3}   llr(pl vs ln)={:+.1} p={:.3}",
        f.log_normal.mu, f.log_normal.sigma, f.pl_vs_ln.log_likelihood_ratio, f.pl_vs_ln.p_value
    );
    let _ = writeln!(out, "{:>12} {:>14}", "degree", "density");
    for (x, d) in &report.log_binned {
        let _ = writeln!(out, "{x:>12.1} {d:>14.6}");
    }
    out
}

/// Renders the Figure 4 clustering-coefficient CDF.
pub fn render_fig4(report: &ClusteringReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "average clustering coefficient: {:.4}", report.mean);
    let _ = writeln!(out, "{:>8} {:>8}", "cc", "cdf");
    for (x, f) in report.cdf.iter().step_by(10) {
        let _ = writeln!(out, "{x:>8.3} {f:>8.3}");
    }
    out
}

/// Renders the Figure 5 comparison: one block per scoring function with
/// the circle and random CDF series.
pub fn render_fig5(result: &CirclesVsRandom, cdf_points: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dataset: {}", result.dataset);
    for pair in &result.per_function {
        let _ = writeln!(
            out,
            "\n[{}] circles: {}\n{:<9} random:  {}   ks-separation={:.3}",
            pair.function, pair.circles, "", pair.random, pair.ks_separation
        );
        let circles = Ecdf::new(pair.circle_scores.clone()).sampled(cdf_points);
        let random = Ecdf::new(pair.random_scores.clone()).sampled(cdf_points);
        let _ = writeln!(out, "{:>12} {:>8} | {:>12} {:>8}", "x(circle)", "cdf", "x(random)", "cdf");
        for i in 0..cdf_points {
            let c = circles.get(i);
            let r = random.get(i);
            let _ = writeln!(
                out,
                "{:>12} {:>8} | {:>12} {:>8}",
                c.map(|p| format!("{:.4}", p.0)).unwrap_or_default(),
                c.map(|p| format!("{:.3}", p.1)).unwrap_or_default(),
                r.map(|p| format!("{:.4}", p.0)).unwrap_or_default(),
                r.map(|p| format!("{:.3}", p.1)).unwrap_or_default(),
            );
        }
    }
    let _ = writeln!(
        out,
        "\nratio-cut below random median: {:.1}%   modularity significant: {:.1}%",
        100.0 * result.ratio_cut_below_random_median,
        100.0 * result.modularity_significant_fraction
    );
    out
}

/// Renders the Figure 6 cross-data-set comparison as per-function summary
/// rows.
pub fn render_fig6(scores: &[DatasetScores]) -> String {
    let mut out = String::new();
    if scores.is_empty() {
        return out;
    }
    for (idx, (function, _, _)) in scores[0].per_function.iter().enumerate() {
        let _ = writeln!(out, "\n[{function}]");
        let _ = writeln!(
            out,
            "{:<13} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "dataset", "mean", "median", "q25", "q75", "max"
        );
        for ds in scores {
            let (_, _, s) = &ds.per_function[idx];
            let _ = writeln!(
                out,
                "{:<13} {:>11.4} {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
                ds.name, s.mean, s.median, s.q25, s.q75, s.max
            );
        }
    }
    out
}

/// Renders the circle-sharing densification report.
pub fn render_sharing(r: &crate::experiments::SharingDensification) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset: {}   join probability: {}   edges added: {}",
        r.dataset, r.join_probability, r.added_edges
    );
    let _ = writeln!(
        out,
        "internal density: {:.4} -> {:.4} (median {:.4} -> {:.4})",
        r.density_before.mean, r.density_after.mean, r.density_before.median, r.density_after.median
    );
    let _ = writeln!(
        out,
        "conductance:      {:.4} -> {:.4} (median {:.4} -> {:.4})",
        r.conductance_before.mean,
        r.conductance_after.mean,
        r.conductance_before.median,
        r.conductance_after.median
    );
    out
}

/// Renders the detection-extension comparison.
pub fn render_detection(results: &[crate::experiments::DetectionComparison]) -> String {
    let mut out = String::new();
    for r in results {
        let _ = writeln!(
            out,
            "method {:<18} detected groups: {:<5} nmi vs labels: {:.3}",
            r.method, r.detected, r.nmi
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>14} {:>14}",
            "function", "labelled mean", "detected mean"
        );
        for (f, labelled, detected) in &r.per_function {
            let _ = writeln!(
                out,
                "  {:<16} {:>14.4} {:>14.4}",
                f.name(),
                labelled.mean,
                detected.mean
            );
        }
    }
    out
}

/// Renders the ego-view comparison: per-function global vs ego-scoped
/// score summaries.
pub fn render_ego_view(cmp: &crate::experiments::EgoViewComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset: {}   circles attributed to a host ego network: {}",
        cmp.dataset, cmp.attributed
    );
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "function", "global mean", "ego mean", "global median", "ego median"
    );
    for (f, global, ego) in &cmp.per_function {
        let _ = writeln!(
            out,
            "{:<16} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            f.name(),
            global.mean,
            ego.mean,
            global.median,
            ego.median
        );
    }
    out
}

/// Renders the 13-function correlation matrix with the category grouping
/// summary.
pub fn render_correlations(corr: &crate::experiments::FunctionCorrelations) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<18}", "");
    for f in &corr.functions {
        let _ = write!(out, "{:>7}", shorten(f.name()));
    }
    let _ = writeln!(out);
    for (i, f) in corr.functions.iter().enumerate() {
        let _ = write!(out, "{:<18}", f.name());
        for j in 0..corr.functions.len() {
            match corr.matrix[i][j] {
                Some(r) => {
                    let _ = write!(out, "{r:>7.2}");
                }
                None => {
                    let _ = write!(out, "{:>7}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let (within, across) = corr.within_vs_across();
    let _ = writeln!(
        out,
        "mean |r| within categories: {within:.3}   across categories: {across:.3}"
    );
    out
}

fn shorten(name: &str) -> String {
    name.chars().take(6).collect()
}

/// Renders the robustness (directed vs undirected) report.
pub fn render_robustness(report: &RobustnessReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dataset: {}", report.dataset);
    for (f, dev) in &report.per_function {
        let _ = writeln!(out, "{f:<16} mean relative deviation {:.2}%", 100.0 * dev);
    }
    let _ = writeln!(
        out,
        "overall (scale-invariant functions): {:.2}%",
        100.0 * report.overall
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{
        characterize, circles_vs_random, clustering_report, compare_datasets, ego_overlap_report,
        in_degree_fit, summarize_datasets, ModularityMode,
    };
    use circlekit_synth::presets;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_renderers_produce_nonempty_output() {
        let mut rng = SmallRng::seed_from_u64(99);
        let ds = presets::google_plus().scaled(0.003).generate(&mut rng);

        let row = characterize(&ds, 8, &mut rng);
        assert!(render_table2(&[row]).contains("dataset"));

        let rows = summarize_datasets(&[&ds]);
        assert!(render_table3(&rows).contains("google+"));

        let ego = ego_overlap_report(&ds);
        assert!(render_fig2(&ego).contains("overlap"));

        if let Ok(fit) = in_degree_fit(&ds) {
            assert!(render_fig3(&fit).contains("best family"));
        }

        let cc = clustering_report(&ds);
        assert!(render_fig4(&cc).contains("clustering"));

        let fig5 = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
        let text = render_fig5(&fig5, 5);
        assert!(text.contains("average-degree"));
        assert!(text.contains("modularity"));

        let fig6 = compare_datasets(&[&ds]);
        assert!(render_fig6(&fig6).contains("conductance"));

        let rob = crate::experiments::directed_vs_undirected(&ds);
        assert!(render_robustness(&rob).contains("deviation"));

        let m = crate::experiments::ego_overlap_matrix(&ds);
        assert!(render_fig1(&m).contains("overlapping pairs"));

        let ev = crate::experiments::ego_view_comparison(&ds);
        assert!(render_ego_view(&ev).contains("ego mean"));

        let corr = crate::experiments::function_correlations(&ds);
        let text = render_correlations(&corr);
        assert!(text.contains("within categories"));
        assert!(text.contains("modularity"));

        let det = crate::experiments::detection_comparison(&ds, &mut rng);
        assert!(render_detection(&det).contains("nmi"));

        let sh = crate::experiments::circle_sharing_densification(&ds, 0.2, &mut rng);
        assert!(render_sharing(&sh).contains("edges added"));
    }
}
