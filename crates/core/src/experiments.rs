//! One driver per table/figure of the paper.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`characterize`] | Table II rows (per data set) |
//! | [`summarize_datasets`] | Table III |
//! | [`ego_overlap_report`] | Figure 2 + the 93.5 % overlap statistic |
//! | [`in_degree_fit`] | Figure 3 (degree-distribution family) |
//! | [`clustering_report`] | Figure 4 (clustering-coefficient CDF) |
//! | [`circles_vs_random`] | Figure 5 (circles vs random-walk sets) |
//! | [`compare_datasets`] | Figure 6 (four-data-set comparison) |
//! | [`ego_overlap_matrix`] | Figure 1 (quantified overlap structure) |
//!
//! Extensions beyond the paper's figures: [`function_correlations`]
//! (Yang-Leskovec grouping), [`ego_view_comparison`] (the outlook's
//! ego-centred view), [`detection_comparison`] (detected vs labelled
//! groups), and [`circle_sharing_densification`] (the Fang mechanism the
//! paper cites in SV-B).
//! | [`directed_vs_undirected`] | §IV-B robustness check (≈ 2.38 %) |

use crate::checkpoint::{chunk_key, CheckpointStore, RunError, CHECKPOINT_CHUNK};
use circlekit_graph::{Direction, NodeId, RunControl, VertexSet};
use circlekit_metrics::{
    average_clustering, average_shortest_path_sampled, clustering_coefficients,
    diameter_double_sweep, DegreeKind, DegreeStats, EgoStats,
};
use circlekit_nullmodel::NullModelEnsemble;
use circlekit_sampling::{
    size_matched_random_walk_sets, size_matched_random_walk_sets_parallel,
    size_matched_random_walk_sets_parallel_with_control,
};
use circlekit_scoring::{ParallelScorer, ScoreTable, Scorer, ScoringFunction};
use circlekit_statfit::{analyze_tail, FitError, ModelKind, TailFitReport};
use circlekit_stats::{ks_two_sample, relative_deviation, Ecdf, LogHistogram, Summary};
use circlekit_synth::{DatasetSummary, GroupKind, SynthDataset};
use rand::Rng;

/// How the Modularity expectation `E(m_C)` is obtained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModularityMode {
    /// Chung–Lu closed form `(Σd)²/4m` — fast, deterministic.
    ClosedForm,
    /// Sampled from degree-preserving random graphs (the paper's
    /// Viger–Latapy procedure).
    Sampled {
        /// Number of null graphs to sample.
        samples: usize,
        /// Edge-swap budget per sample, as a multiple of `m`.
        quality: f64,
    },
}

/// Scores of one scoring function for the groups and their random
/// baseline.
#[derive(Clone, Debug)]
pub struct ScorePair {
    /// The scoring function.
    pub function: ScoringFunction,
    /// Scores of the circles, in group order.
    pub circle_scores: Vec<f64>,
    /// Scores of the size-matched random-walk sets.
    pub random_scores: Vec<f64>,
    /// Summary of the circle scores.
    pub circles: Summary,
    /// Summary of the random scores.
    pub random: Summary,
    /// Two-sample KS distance between the two score distributions — the
    /// visual separation of the paper's Figure 5 panels.
    pub ks_separation: f64,
}

/// Result of the Figure 5 experiment: circles vs size-matched random-walk
/// sets, under the paper's four scoring functions.
#[derive(Clone, Debug)]
pub struct CirclesVsRandom {
    /// Data-set name.
    pub dataset: String,
    /// One entry per function, in [`ScoringFunction::PAPER`] order.
    pub per_function: Vec<ScorePair>,
    /// Fraction of circles whose Ratio Cut is below the random sets'
    /// median (the paper reports > 70 %).
    pub ratio_cut_below_random_median: f64,
    /// Fraction of circles with modularity above the random sets' 95th
    /// percentile ("significant deviation from the null model"; the paper
    /// reports > 50 %).
    pub modularity_significant_fraction: f64,
}

/// Runs the Figure 5 experiment on one circle data set.
///
/// For every circle a random-walk vertex set of the same size is sampled
/// from the same graph (§V-A), and both collections are scored with the
/// paper's four functions.
pub fn circles_vs_random<R: Rng + ?Sized>(
    dataset: &SynthDataset,
    modularity: ModularityMode,
    rng: &mut R,
) -> CirclesVsRandom {
    let sizes = dataset.group_sizes();
    let random_sets = size_matched_random_walk_sets(&dataset.graph, &sizes, rng);
    let ensemble = match modularity {
        ModularityMode::ClosedForm => None,
        ModularityMode::Sampled { samples, quality } => Some(NullModelEnsemble::sample(
            &dataset.graph,
            samples,
            quality,
            false,
            rng,
        )),
    };

    let mut scorer = Scorer::new(&dataset.graph);
    let score_sets = |scorer: &mut Scorer<'_>, sets: &[VertexSet]| -> Vec<[f64; 4]> {
        sets.iter()
            .map(|set| {
                let stats = scorer.stats(set);
                let modularity_score = match &ensemble {
                    None => ScoringFunction::Modularity.score(&stats),
                    Some(e) => ScoringFunction::modularity_with_expectation(
                        &stats,
                        e.expected_internal_edges(set),
                    ),
                };
                [
                    ScoringFunction::AverageDegree.score(&stats),
                    ScoringFunction::RatioCut.score(&stats),
                    ScoringFunction::Conductance.score(&stats),
                    modularity_score,
                ]
            })
            .collect()
    };
    let circle_rows = score_sets(&mut scorer, &dataset.groups);
    let random_rows = score_sets(&mut scorer, &random_sets);
    assemble_circles_vs_random(dataset.name.clone(), &circle_rows, &random_rows)
}

/// Runs the Figure 5 experiment on worker threads, with closed-form
/// modularity.
///
/// The random baseline is drawn with
/// [`size_matched_random_walk_sets_parallel`], whose per-walk RNG streams
/// depend only on `root_seed` and the walk index, and both batches are
/// scored by [`ParallelScorer`] — so the result is a pure function of
/// `(dataset, root_seed)`, identical for every `threads` value.
///
/// Unlike [`circles_vs_random`], this path does not support the sampled
/// (Viger–Latapy) modularity null model: ensemble sampling is a
/// sequential RNG consumer.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn circles_vs_random_parallel(
    dataset: &SynthDataset,
    root_seed: u64,
    threads: usize,
) -> CirclesVsRandom {
    let sizes = dataset.group_sizes();
    let random_sets =
        size_matched_random_walk_sets_parallel(&dataset.graph, &sizes, root_seed, threads);
    let scorer = ParallelScorer::with_threads(&dataset.graph, threads);
    let circle_table = scorer.score_table(&ScoringFunction::PAPER, &dataset.groups);
    let random_table = scorer.score_table(&ScoringFunction::PAPER, &random_sets);
    let rows_of = |table: &ScoreTable| -> Vec<[f64; 4]> {
        (0..table.set_count())
            .map(|i| {
                let row = table.row(i);
                [row[0], row[1], row[2], row[3]]
            })
            .collect()
    };
    assemble_circles_vs_random(
        dataset.name.clone(),
        &rows_of(&circle_table),
        &rows_of(&random_table),
    )
}

/// Builds the [`CirclesVsRandom`] report from per-set score rows (in
/// [`ScoringFunction::PAPER`] order) — shared by the sequential and
/// parallel Figure 5 paths.
fn assemble_circles_vs_random(
    dataset: String,
    circle_rows: &[[f64; 4]],
    random_rows: &[[f64; 4]],
) -> CirclesVsRandom {
    let mut per_function = Vec::with_capacity(4);
    for (i, &function) in ScoringFunction::PAPER.iter().enumerate() {
        let circle_scores: Vec<f64> = circle_rows.iter().map(|r| r[i]).collect();
        let random_scores: Vec<f64> = random_rows.iter().map(|r| r[i]).collect();
        per_function.push(ScorePair {
            function,
            circles: Summary::from_slice(&circle_scores),
            random: Summary::from_slice(&random_scores),
            ks_separation: ks_two_sample(&circle_scores, &random_scores),
            circle_scores,
            random_scores,
        });
    }

    let ratio_cut_below_random_median = {
        let pair = &per_function[1];
        let median = pair.random.median;
        fraction(&pair.circle_scores, |s| s < median)
    };
    let modularity_significant_fraction = {
        let pair = &per_function[3];
        let threshold = if pair.random_scores.is_empty() {
            0.0
        } else {
            Ecdf::new(pair.random_scores.clone()).quantile(0.95)
        };
        fraction(&pair.circle_scores, |s| s > threshold)
    };

    CirclesVsRandom {
        dataset,
        per_function,
        ratio_cut_below_random_median,
        modularity_significant_fraction,
    }
}

fn fraction<F: Fn(f64) -> bool>(scores: &[f64], pred: F) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|&&s| pred(s)).count() as f64 / scores.len() as f64
}

/// Scores of one data set's groups under the paper's four functions — one
/// column group of Figure 6.
#[derive(Clone, Debug)]
pub struct DatasetScores {
    /// Data-set name.
    pub name: String,
    /// Circles or communities.
    pub kind: GroupKind,
    /// `(function, scores, summary)` triples in [`ScoringFunction::PAPER`]
    /// order.
    pub per_function: Vec<(ScoringFunction, Vec<f64>, Summary)>,
}

impl DatasetScores {
    /// The scores of one function, if present.
    pub fn scores(&self, function: ScoringFunction) -> Option<&[f64]> {
        self.per_function
            .iter()
            .find(|(f, _, _)| *f == function)
            .map(|(_, s, _)| s.as_slice())
    }

    /// The summary of one function, if present.
    pub fn summary(&self, function: ScoringFunction) -> Option<Summary> {
        self.per_function
            .iter()
            .find(|(f, _, _)| *f == function)
            .map(|(_, _, s)| *s)
    }
}

/// Scores one data set's labelled groups with the paper's four functions
/// (closed-form modularity).
pub fn score_groups(dataset: &SynthDataset) -> DatasetScores {
    let mut scorer = Scorer::new(&dataset.graph);
    let table = scorer.score_table(&ScoringFunction::PAPER, &dataset.groups);
    let per_function = ScoringFunction::PAPER
        .iter()
        .map(|&f| {
            let scores = table.column(f).expect("function was scored");
            let summary = Summary::from_slice(&scores);
            (f, scores, summary)
        })
        .collect();
    DatasetScores {
        name: dataset.name.clone(),
        kind: dataset.kind,
        per_function,
    }
}

/// Like [`score_groups`], but evaluates the groups on `threads` worker
/// threads. Scoring is deterministic, so the result equals the sequential
/// one exactly.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn score_groups_parallel(dataset: &SynthDataset, threads: usize) -> DatasetScores {
    let scorer = ParallelScorer::with_threads(&dataset.graph, threads);
    let table = scorer.score_table(&ScoringFunction::PAPER, &dataset.groups);
    let per_function = ScoringFunction::PAPER
        .iter()
        .map(|&f| {
            let scores = table.column(f).expect("function was scored");
            let summary = Summary::from_slice(&scores);
            (f, scores, summary)
        })
        .collect();
    DatasetScores {
        name: dataset.name.clone(),
        kind: dataset.kind,
        per_function,
    }
}

/// The Figure 6 experiment: the paper's four functions across several data
/// sets (two circle-type, two community-type in the paper).
pub fn compare_datasets(datasets: &[&SynthDataset]) -> Vec<DatasetScores> {
    datasets.iter().map(|ds| score_groups(ds)).collect()
}

/// [`compare_datasets`] with each data set's groups scored on `threads`
/// worker threads; bit-identical to the sequential variant.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn compare_datasets_parallel(datasets: &[&SynthDataset], threads: usize) -> Vec<DatasetScores> {
    datasets
        .iter()
        .map(|ds| score_groups_parallel(ds, threads))
        .collect()
}

/// Shifts a chunk-relative [`circlekit_scoring::BatchReport`] to
/// batch-global set indices.
fn offset_report(
    mut report: circlekit_scoring::BatchReport,
    first_set: usize,
    chunk_index: usize,
) -> circlekit_scoring::BatchReport {
    report.total_sets += first_set; // lower bound: sets before this chunk
    for f in &mut report.failures {
        f.set += first_set;
    }
    for c in &mut report.chunk_errors {
        c.first_set += first_set;
        c.chunk = chunk_index;
    }
    report
}

/// Scores `sets` under the paper's four functions in fixed
/// [`CHECKPOINT_CHUNK`]-sized chunks, reusing every chunk already in
/// `store` and persisting each newly computed one before moving on.
///
/// Chunk scoring goes through the robust scorer, so a worker panic is
/// isolated and retried; an interruption flushes the store and surfaces
/// as [`RunError::Interrupted`] with all completed chunks safely on disk.
fn score_table_checkpointed(
    experiment: &str,
    dataset_name: &str,
    collection: &str,
    scorer: &ParallelScorer<'_>,
    sets: &[VertexSet],
    control: &RunControl,
    store: &mut CheckpointStore,
) -> Result<ScoreTable, RunError> {
    let functions = ScoringFunction::PAPER;
    let width = functions.len();
    let chunk_count = sets.len().div_ceil(CHECKPOINT_CHUNK);
    let stage = format!("{experiment}/{dataset_name}/{collection}");
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(sets.len());
    for (chunk_index, chunk) in sets.chunks(CHECKPOINT_CHUNK).enumerate() {
        let key = chunk_key(experiment, dataset_name, collection, chunk_index);
        if let Some(flat) = store.get_scores(&key) {
            if flat.len() == chunk.len() * width {
                rows.extend(flat.chunks(width).map(<[f64]>::to_vec));
                control.report(&stage, chunk_index + 1, chunk_count);
                continue;
            }
            // Width mismatch: a stale sidecar from a different corpus.
            // Fall through and overwrite with a fresh computation.
        }
        if let Err(why) = control.check() {
            store.flush()?;
            return Err(RunError::Interrupted(why));
        }
        let robust = scorer.score_table_robust(&functions, chunk, control);
        if let Some(why) = robust.report.interrupted {
            store.flush()?;
            return Err(RunError::Interrupted(why));
        }
        if !robust.report.is_complete() {
            store.flush()?;
            return Err(RunError::Batch(offset_report(
                robust.report,
                chunk_index * CHECKPOINT_CHUNK,
                chunk_index,
            )));
        }
        let chunk_rows: Vec<Vec<f64>> = robust
            .rows
            .into_iter()
            .map(|r| r.expect("a complete batch has every row"))
            .collect();
        let flat: Vec<f64> = chunk_rows.iter().flatten().copied().collect();
        store.put_scores(&key, &flat);
        store.flush()?;
        rows.extend(chunk_rows);
        control.report(&stage, chunk_index + 1, chunk_count);
    }
    Ok(ScoreTable::from_rows(functions.to_vec(), rows)
        .expect("every row is one score per paper function"))
}

/// Assembles [`DatasetScores`] from a paper-function score table — shared
/// by the plain, controlled, and checkpointed Figure 6 paths.
fn dataset_scores_from_table(dataset: &SynthDataset, table: &ScoreTable) -> DatasetScores {
    let per_function = ScoringFunction::PAPER
        .iter()
        .map(|&f| {
            let scores = table.column(f).expect("function was scored");
            let summary = Summary::from_slice(&scores);
            (f, scores, summary)
        })
        .collect();
    DatasetScores {
        name: dataset.name.clone(),
        kind: dataset.kind,
        per_function,
    }
}

/// Checkpointed, cancellable Figure 5: the random baseline is sampled
/// under `control`, both collections are scored chunk-by-chunk through
/// `store`, and an uninterrupted run returns exactly what
/// [`circles_vs_random_parallel`] returns for the same
/// `(dataset, root_seed)` — resumed or not, at any thread count.
///
/// # Errors
///
/// [`RunError::SeedMismatch`] if `store` was written under a different
/// `root_seed`; [`RunError::Interrupted`] if `control` stopped the run
/// (completed chunks are flushed first); [`RunError::Batch`] if some sets
/// could not be scored.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn circles_vs_random_checkpointed(
    dataset: &SynthDataset,
    root_seed: u64,
    threads: usize,
    control: &RunControl,
    store: &mut CheckpointStore,
) -> Result<CirclesVsRandom, RunError> {
    if store.root_seed() != root_seed {
        return Err(RunError::SeedMismatch {
            checkpoint: store.root_seed(),
            requested: root_seed,
        });
    }
    let sizes = dataset.group_sizes();
    let random_sets = size_matched_random_walk_sets_parallel_with_control(
        &dataset.graph,
        &sizes,
        root_seed,
        threads,
        control,
    )?;
    let scorer = ParallelScorer::with_threads(&dataset.graph, threads);
    let circle_table = score_table_checkpointed(
        "fig5",
        &dataset.name,
        "circles",
        &scorer,
        &dataset.groups,
        control,
        store,
    )?;
    let random_table = score_table_checkpointed(
        "fig5",
        &dataset.name,
        "random",
        &scorer,
        &random_sets,
        control,
        store,
    )?;
    let rows_of = |table: &ScoreTable| -> Vec<[f64; 4]> {
        (0..table.set_count())
            .map(|i| {
                let row = table.row(i);
                [row[0], row[1], row[2], row[3]]
            })
            .collect()
    };
    Ok(assemble_circles_vs_random(
        dataset.name.clone(),
        &rows_of(&circle_table),
        &rows_of(&random_table),
    ))
}

/// Cancellable Figure 5 without a sidecar: an in-memory checkpoint store
/// gives panic isolation and clean interruption, nothing is persisted.
///
/// # Errors
///
/// As [`circles_vs_random_checkpointed`], minus the seed mismatch case.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn circles_vs_random_controlled(
    dataset: &SynthDataset,
    root_seed: u64,
    threads: usize,
    control: &RunControl,
) -> Result<CirclesVsRandom, RunError> {
    let mut store = CheckpointStore::in_memory(root_seed);
    circles_vs_random_checkpointed(dataset, root_seed, threads, control, &mut store)
}

/// Checkpointed, cancellable [`score_groups_parallel`] (Figure 6, one
/// data set). Uninterrupted runs — fresh or resumed — return exactly the
/// sequential result.
///
/// # Errors
///
/// [`RunError::Interrupted`] if `control` stopped the run (completed
/// chunks are flushed first); [`RunError::Batch`] if some groups could
/// not be scored (e.g. out-of-range members).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn score_groups_checkpointed(
    dataset: &SynthDataset,
    threads: usize,
    control: &RunControl,
    store: &mut CheckpointStore,
) -> Result<DatasetScores, RunError> {
    let scorer = ParallelScorer::with_threads(&dataset.graph, threads);
    let table = score_table_checkpointed(
        "fig6",
        &dataset.name,
        "groups",
        &scorer,
        &dataset.groups,
        control,
        store,
    )?;
    Ok(dataset_scores_from_table(dataset, &table))
}

/// Cancellable [`score_groups_parallel`] without persistence.
///
/// # Errors
///
/// As [`score_groups_checkpointed`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn score_groups_controlled(
    dataset: &SynthDataset,
    threads: usize,
    control: &RunControl,
) -> Result<DatasetScores, RunError> {
    let mut store = CheckpointStore::in_memory(0);
    score_groups_checkpointed(dataset, threads, control, &mut store)
}

/// Checkpointed, cancellable [`compare_datasets_parallel`] (Figure 6).
/// Data sets are processed in order; an interruption mid-corpus leaves
/// every completed chunk in `store`, so the resumed run recomputes only
/// the tail.
///
/// # Errors
///
/// As [`score_groups_checkpointed`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn compare_datasets_checkpointed(
    datasets: &[&SynthDataset],
    threads: usize,
    control: &RunControl,
    store: &mut CheckpointStore,
) -> Result<Vec<DatasetScores>, RunError> {
    datasets
        .iter()
        .map(|ds| score_groups_checkpointed(ds, threads, control, store))
        .collect()
}

/// Cancellable [`compare_datasets_parallel`] without persistence.
///
/// # Errors
///
/// As [`score_groups_checkpointed`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn compare_datasets_controlled(
    datasets: &[&SynthDataset],
    threads: usize,
    control: &RunControl,
) -> Result<Vec<DatasetScores>, RunError> {
    let mut store = CheckpointStore::in_memory(0);
    compare_datasets_checkpointed(datasets, threads, control, &mut store)
}

/// Table III: summary rows of the evaluated data sets.
pub fn summarize_datasets(datasets: &[&SynthDataset]) -> Vec<DatasetSummary> {
    datasets.iter().map(|ds| ds.summary()).collect()
}

/// Figure 2: ego-network membership counts and the overlap fraction.
pub fn ego_overlap_report(dataset: &SynthDataset) -> EgoStats {
    EgoStats::new(&dataset.egos)
}

/// Quantification of the paper's Figure 1 schematic: which ego networks
/// overlap and through how many bridge vertices.
#[derive(Clone, Debug)]
pub struct EgoOverlapMatrix {
    /// Number of ego networks.
    pub ego_count: usize,
    /// `shared[i][j]`: number of vertices the ego networks of owners `i`
    /// and `j` have in common (diagonal: the ego-network size).
    pub shared: Vec<Vec<u32>>,
    /// Number of unordered ego pairs sharing at least one vertex.
    pub overlapping_pairs: usize,
}

impl EgoOverlapMatrix {
    /// Fraction of ego pairs that overlap.
    pub fn pair_overlap_fraction(&self) -> f64 {
        let pairs = self.ego_count * self.ego_count.saturating_sub(1) / 2;
        if pairs == 0 {
            0.0
        } else {
            self.overlapping_pairs as f64 / pairs as f64
        }
    }
}

/// Computes the pairwise ego-overlap structure of Figure 1.
// Index loops express the symmetric fill more clearly than iterators here.
#[allow(clippy::needless_range_loop)]
pub fn ego_overlap_matrix(dataset: &SynthDataset) -> EgoOverlapMatrix {
    let k = dataset.egos.len();
    let mut shared = vec![vec![0u32; k]; k];
    let mut overlapping_pairs = 0usize;
    for i in 0..k {
        shared[i][i] = dataset.egos[i].len() as u32;
        for j in (i + 1)..k {
            let common = dataset.egos[i].intersection(&dataset.egos[j]).len() as u32;
            shared[i][j] = common;
            shared[j][i] = common;
            if common > 0 {
                overlapping_pairs += 1;
            }
        }
    }
    EgoOverlapMatrix {
        ego_count: k,
        shared,
        overlapping_pairs,
    }
}

/// Figure 3 output: the CSN fitting report for a degree sequence plus the
/// log-binned distribution series for plotting.
#[derive(Clone, Debug)]
pub struct DegreeFitReport {
    /// Which degree sequence was analysed.
    pub kind: DegreeKind,
    /// Mean of the degree sequence.
    pub average_degree: f64,
    /// The full CSN fitting report.
    pub fit: TailFitReport,
    /// Log-binned `(degree, density)` series (the Figure 3 scatter).
    pub log_binned: Vec<(f64, f64)>,
}

impl DegreeFitReport {
    /// The judged distribution family (Table II's "degree distribution"
    /// row).
    pub fn family(&self) -> ModelKind {
        self.fit.best
    }
}

/// Runs the Figure 3 analysis on one degree sequence of the data set.
///
/// # Errors
///
/// Propagates [`FitError`] for degenerate degree sequences.
pub fn degree_fit(dataset: &SynthDataset, kind: DegreeKind) -> Result<DegreeFitReport, FitError> {
    let stats = DegreeStats::new(&dataset.graph, kind);
    let degrees = stats.positive_as_f64();
    let fit = analyze_tail(&degrees)?;
    let hist: LogHistogram = degrees.iter().map(|&d| d as u64).collect();
    Ok(DegreeFitReport {
        kind,
        average_degree: stats.average(),
        fit,
        log_binned: hist.densities(),
    })
}

/// Convenience: the in-degree analysis the paper's Figure 3 shows.
///
/// # Errors
///
/// Propagates [`FitError`] for degenerate degree sequences.
pub fn in_degree_fit(dataset: &SynthDataset) -> Result<DegreeFitReport, FitError> {
    degree_fit(dataset, DegreeKind::In)
}

/// Figure 4 output: the clustering-coefficient distribution.
#[derive(Clone, Debug)]
pub struct ClusteringReport {
    /// Mean local clustering coefficient over degree-≥2 nodes (the paper
    /// reports 0.4901).
    pub mean: f64,
    /// Summary over all nodes.
    pub summary: Summary,
    /// Sampled CDF points `(cc, F(cc))` for plotting.
    pub cdf: Vec<(f64, f64)>,
}

/// Runs the Figure 4 analysis.
pub fn clustering_report(dataset: &SynthDataset) -> ClusteringReport {
    let cc = clustering_coefficients(&dataset.graph);
    let ecdf = Ecdf::new(cc.clone());
    ClusteringReport {
        mean: average_clustering(&dataset.graph),
        summary: Summary::from_slice(&cc),
        cdf: ecdf.sampled(101),
    }
}

/// One row of Table II.
#[derive(Clone, Debug)]
pub struct CharacterizationRow {
    /// Data-set name.
    pub name: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Diameter estimate (double-sweep lower bound, maximised over sampled
    /// BFS sources).
    pub diameter: u32,
    /// Average shortest path over sampled sources.
    pub average_shortest_path: f64,
    /// Judged in-degree distribution family.
    pub in_degree_family: Option<ModelKind>,
    /// Judged out-degree distribution family.
    pub out_degree_family: Option<ModelKind>,
    /// Mean in-degree.
    pub average_in_degree: f64,
    /// Mean out-degree.
    pub average_out_degree: f64,
}

/// Computes one Table II row. `bfs_sources` controls the sampling effort
/// of the path statistics (BFS from that many random sources).
pub fn characterize<R: Rng + ?Sized>(
    dataset: &SynthDataset,
    bfs_sources: usize,
    rng: &mut R,
) -> CharacterizationRow {
    let g = &dataset.graph;
    let paths = average_shortest_path_sampled(g, Direction::Both, bfs_sources, rng);
    // Tighten the diameter with a double sweep from the max-degree vertex.
    let diameter = if g.node_count() > 0 {
        let hub = (0..g.node_count() as NodeId)
            .max_by_key(|&v| g.degree(v))
            .expect("non-empty");
        paths.diameter.max(diameter_double_sweep(g, hub, Direction::Both))
    } else {
        0
    };
    let in_stats = DegreeStats::new(g, DegreeKind::In);
    let out_stats = DegreeStats::new(g, DegreeKind::Out);
    CharacterizationRow {
        name: dataset.name.clone(),
        vertices: g.node_count(),
        edges: g.edge_count(),
        diameter,
        average_shortest_path: paths.average,
        in_degree_family: analyze_tail(&in_stats.positive_as_f64()).ok().map(|r| r.best),
        out_degree_family: analyze_tail(&out_stats.positive_as_f64()).ok().map(|r| r.best),
        average_in_degree: in_stats.average(),
        average_out_degree: out_stats.average(),
    }
}

/// Correlation structure of the full 13-function suite over one data
/// set's groups — the Yang–Leskovec analysis ("the scoring functions
/// correlate and can be grouped in four subsets") that the paper bases
/// its four-function selection on.
#[derive(Clone, Debug)]
pub struct FunctionCorrelations {
    /// Functions, in [`ScoringFunction::ALL`] order.
    pub functions: Vec<ScoringFunction>,
    /// Pearson correlation matrix; `None` where a column is constant.
    pub matrix: Vec<Vec<Option<f64>>>,
}

impl FunctionCorrelations {
    /// Correlation between two functions, if defined.
    pub fn get(&self, a: ScoringFunction, b: ScoringFunction) -> Option<f64> {
        let ia = self.functions.iter().position(|&f| f == a)?;
        let ib = self.functions.iter().position(|&f| f == b)?;
        self.matrix[ia][ib]
    }

    /// Mean absolute correlation between function pairs *within* the same
    /// taxonomy category vs *across* categories. Yang–Leskovec's grouping
    /// claim predicts `within > across`.
    pub fn within_vs_across(&self) -> (f64, f64) {
        let mut within = Vec::new();
        let mut across = Vec::new();
        for (i, &a) in self.functions.iter().enumerate() {
            for (j, &b) in self.functions.iter().enumerate().skip(i + 1) {
                if let Some(r) = self.matrix[i][j] {
                    if a.category() == b.category() {
                        within.push(r.abs());
                    } else {
                        across.push(r.abs());
                    }
                }
            }
        }
        (circlekit_stats::mean(&within), circlekit_stats::mean(&across))
    }
}

/// Computes the pairwise Pearson correlations of all 13 scoring functions
/// across the data set's groups.
pub fn function_correlations(dataset: &SynthDataset) -> FunctionCorrelations {
    let mut scorer = Scorer::new(&dataset.graph);
    let table = scorer.score_table(&ScoringFunction::ALL, &dataset.groups);
    let functions = ScoringFunction::ALL.to_vec();
    let matrix = functions
        .iter()
        .map(|&a| {
            functions
                .iter()
                .map(|&b| table.correlation(a, b))
                .collect()
        })
        .collect();
    FunctionCorrelations { functions, matrix }
}

/// Result of the circle-sharing densification simulation.
///
/// §V-B of the paper explains circles' external connectivity via Fang et
/// al.: "sharing a circle leads to a densification of community circles,
/// because missing members of the community can create connections to
/// users they did not connect yet". This experiment simulates that
/// mechanism and measures its structural effect.
#[derive(Clone, Debug)]
pub struct SharingDensification {
    /// Data-set name.
    pub dataset: String,
    /// Pairwise join probability used in the simulation.
    pub join_probability: f64,
    /// Number of edges added by sharing.
    pub added_edges: usize,
    /// Circle internal-density summary before sharing.
    pub density_before: Summary,
    /// Circle internal-density summary after sharing.
    pub density_after: Summary,
    /// Circle conductance summary before sharing.
    pub conductance_before: Summary,
    /// Circle conductance summary after sharing.
    pub conductance_after: Summary,
}

/// Simulates the circle-sharing densification of Fang et al.: every
/// unlinked ordered pair inside a shared circle connects with probability
/// `join_probability` (a member "found" via the share follows the other).
/// Returns before/after density and conductance of the circles.
pub fn circle_sharing_densification<R: Rng + ?Sized>(
    dataset: &SynthDataset,
    join_probability: f64,
    rng: &mut R,
) -> SharingDensification {
    assert!(
        (0.0..=1.0).contains(&join_probability),
        "join probability must be in [0, 1]"
    );
    let graph = &dataset.graph;
    let mut scorer = Scorer::new(graph);
    let mut density_before = Vec::with_capacity(dataset.groups.len());
    let mut conductance_before = Vec::with_capacity(dataset.groups.len());
    let mut added: Vec<(NodeId, NodeId)> = Vec::new();
    for circle in &dataset.groups {
        let stats = scorer.stats(circle);
        density_before.push(ScoringFunction::InternalDensity.score(&stats));
        conductance_before.push(ScoringFunction::Conductance.score(&stats));
        let members = circle.as_slice();
        for &u in members {
            for &v in members {
                if u != v && !graph.has_edge(u, v) && rng.gen::<f64>() < join_probability {
                    added.push((u, v));
                }
            }
        }
    }

    // Rebuild the graph once with all sharing edges applied.
    let mut b = if graph.is_directed() {
        circlekit_graph::GraphBuilder::directed()
    } else {
        circlekit_graph::GraphBuilder::undirected()
    };
    b.reserve_nodes(graph.node_count());
    b.add_edges(graph.edges());
    b.add_edges(added.iter().copied());
    let densified = b.build();
    let added_edges = densified.edge_count() - graph.edge_count();

    let mut scorer_after = Scorer::new(&densified);
    let mut density_after = Vec::with_capacity(dataset.groups.len());
    let mut conductance_after = Vec::with_capacity(dataset.groups.len());
    for circle in &dataset.groups {
        let stats = scorer_after.stats(circle);
        density_after.push(ScoringFunction::InternalDensity.score(&stats));
        conductance_after.push(ScoringFunction::Conductance.score(&stats));
    }

    SharingDensification {
        dataset: dataset.name.clone(),
        join_probability,
        added_edges,
        density_before: Summary::from_slice(&density_before),
        density_after: Summary::from_slice(&density_after),
        conductance_before: Summary::from_slice(&conductance_before),
        conductance_after: Summary::from_slice(&conductance_after),
    }
}

/// Result of the detection extension: a community-detection baseline run
/// against the data set's labelled groups.
#[derive(Clone, Debug)]
pub struct DetectionComparison {
    /// Data-set name.
    pub dataset: String,
    /// Detection method name.
    pub method: &'static str,
    /// Number of detected groups (size ≥ 3).
    pub detected: usize,
    /// Normalized mutual information between the detected partition and
    /// the labelled groups (treating labels as a partition; overlapping
    /// labels keep their first assignment).
    pub nmi: f64,
    /// Per function: (function, labelled-group summary, detected-group
    /// summary).
    pub per_function: Vec<(ScoringFunction, Summary, Summary)>,
}

/// Runs Louvain and label propagation on the data set and compares the
/// detected communities with the labelled groups: partition agreement
/// (NMI) plus the paper's four scores on both collections. The question
/// this answers for circle data sets: do *detected* groups inherit the
/// circle signature (they do — they live in the same dense crawl)?
pub fn detection_comparison<R: Rng + ?Sized>(
    dataset: &SynthDataset,
    rng: &mut R,
) -> Vec<DetectionComparison> {
    let n = dataset.graph.node_count();
    let mut scorer = Scorer::new(&dataset.graph);
    let labelled_table = scorer.score_table(&ScoringFunction::PAPER, &dataset.groups);

    let mut results = Vec::new();
    let louvain_groups = circlekit_detect::louvain(&dataset.graph, rng);
    let lpa_groups = circlekit_detect::label_propagation(&dataset.graph, 20, rng);
    for (method, groups) in [("louvain", louvain_groups), ("label-propagation", lpa_groups)] {
        let kept: Vec<VertexSet> = groups.into_iter().filter(|g| g.len() >= 3).collect();
        let detected_table = scorer.score_table(&ScoringFunction::PAPER, &kept);
        let per_function = ScoringFunction::PAPER
            .iter()
            .map(|&f| {
                (
                    f,
                    Summary::from_slice(&labelled_table.column(f).expect("scored")),
                    Summary::from_slice(&detected_table.column(f).expect("scored")),
                )
            })
            .collect();
        results.push(DetectionComparison {
            dataset: dataset.name.clone(),
            method,
            detected: kept.len(),
            nmi: circlekit_detect::normalized_mutual_information(&kept, &dataset.groups, n),
            per_function,
        });
    }
    results
}

/// Result of the ego-centred-view extension (the paper's outlook:
/// "extend our research on group structures from a global to an
/// ego-centred view").
///
/// Each circle is scored twice: against the full joint graph (the paper's
/// method) and against the induced subgraph of its *host ego network*
/// alone. The gap quantifies how much of a circle's external connectivity
/// comes from the rest of the crawl rather than from its owner's own
/// neighbourhood.
#[derive(Clone, Debug)]
pub struct EgoViewComparison {
    /// Data-set name.
    pub dataset: String,
    /// Number of circles that could be attributed to a host ego network.
    pub attributed: usize,
    /// Per function: (function, global-view summary, ego-view summary).
    pub per_function: Vec<(ScoringFunction, Summary, Summary)>,
}

/// Runs the ego-view comparison. Circles not fully contained in any ego
/// network are skipped (they cannot be given an ego-local score).
pub fn ego_view_comparison(dataset: &SynthDataset) -> EgoViewComparison {
    let mut global_scorer = Scorer::new(&dataset.graph);
    let functions = ScoringFunction::PAPER;
    let mut global_scores: Vec<Vec<f64>> = vec![Vec::new(); functions.len()];
    let mut ego_scores: Vec<Vec<f64>> = vec![Vec::new(); functions.len()];
    let mut attributed = 0usize;

    for circle in &dataset.groups {
        // Host ego: the smallest ego network fully containing the circle
        // (the tightest neighbourhood that could have produced it).
        let host = dataset
            .egos
            .iter()
            .filter(|ego| circle.intersection(ego).len() == circle.len())
            .min_by_key(|ego| ego.len());
        let Some(host) = host else { continue };
        attributed += 1;

        let global_stats = global_scorer.stats(circle);
        let sub = dataset
            .graph
            .subgraph(host)
            .expect("ego members are valid ids");
        let local_circle: VertexSet = circle
            .iter()
            .filter_map(|v| sub.to_local(v))
            .collect();
        let mut ego_scorer = Scorer::new(sub.graph());
        let ego_stats = ego_scorer.stats(&local_circle);

        for (i, f) in functions.iter().enumerate() {
            global_scores[i].push(f.score(&global_stats));
            ego_scores[i].push(f.score(&ego_stats));
        }
    }

    EgoViewComparison {
        dataset: dataset.name.clone(),
        attributed,
        per_function: functions
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                (
                    f,
                    Summary::from_slice(&global_scores[i]),
                    Summary::from_slice(&ego_scores[i]),
                )
            })
            .collect(),
    }
}

/// Result of the §IV-B robustness check: how much the four scores change
/// when a directed graph is collapsed to an undirected one.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    /// Data-set name.
    pub dataset: String,
    /// Mean relative deviation per function.
    pub per_function: Vec<(ScoringFunction, f64)>,
    /// Mean deviation across the scale-invariant functions (Conductance
    /// and Modularity — the paper's ≈ 2.38 % figure; Average Degree and
    /// Ratio Cut change by exactly the edge-convention factor and are
    /// reported but not averaged).
    pub overall: f64,
}

/// Scores the groups on the directed graph and on its undirected collapse,
/// reporting the mean relative deviation per function.
pub fn directed_vs_undirected(dataset: &SynthDataset) -> RobustnessReport {
    let undirected = dataset.graph.to_undirected();
    let mut scorer_d = Scorer::new(&dataset.graph);
    let mut scorer_u = Scorer::new(&undirected);
    let mut per_function = Vec::with_capacity(4);
    let mut overall = Vec::new();
    for &f in &ScoringFunction::PAPER {
        let mut deviations = Vec::with_capacity(dataset.groups.len());
        for set in &dataset.groups {
            let a = scorer_d.score(f, set);
            let b = scorer_u.score(f, set);
            deviations.push(relative_deviation(a, b));
        }
        let mean = Summary::from_slice(&deviations).mean;
        if matches!(f, ScoringFunction::Conductance | ScoringFunction::Modularity) {
            overall.push(mean);
        }
        per_function.push((f, mean));
    }
    RobustnessReport {
        dataset: dataset.name.clone(),
        per_function,
        overall: circlekit_stats::mean(&overall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_synth::presets;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_gplus() -> SynthDataset {
        let mut rng = SmallRng::seed_from_u64(2014);
        presets::google_plus().scaled(0.004).generate(&mut rng)
    }

    /// Compares two Figure 5 results bit-for-bit (f64 equality is exact
    /// by the determinism contract).
    fn assert_fig5_identical(a: &CirclesVsRandom, b: &CirclesVsRandom) {
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.per_function.len(), b.per_function.len());
        for (pa, pb) in a.per_function.iter().zip(&b.per_function) {
            assert_eq!(pa.function, pb.function);
            assert_eq!(pa.circle_scores, pb.circle_scores);
            assert_eq!(pa.random_scores, pb.random_scores);
        }
        assert_eq!(a.ratio_cut_below_random_median, b.ratio_cut_below_random_median);
        assert_eq!(a.modularity_significant_fraction, b.modularity_significant_fraction);
    }

    #[test]
    fn checkpointed_fig5_matches_parallel_fresh_and_resumed() {
        let ds = tiny_gplus();
        let reference = circles_vs_random_parallel(&ds, 7, 2);

        // Fresh run through the checkpointed path.
        let mut store = CheckpointStore::in_memory(7);
        let fresh =
            circles_vs_random_checkpointed(&ds, 7, 2, &RunControl::new(), &mut store).unwrap();
        assert_fig5_identical(&reference, &fresh);
        assert!(!store.is_empty());

        // Resumed run: every chunk already cached, different thread count.
        let resumed =
            circles_vs_random_checkpointed(&ds, 7, 3, &RunControl::new(), &mut store).unwrap();
        assert_fig5_identical(&reference, &resumed);
    }

    #[test]
    fn checkpointed_fig5_refuses_seed_mismatch() {
        let ds = tiny_gplus();
        let mut store = CheckpointStore::in_memory(1);
        match circles_vs_random_checkpointed(&ds, 2, 1, &RunControl::new(), &mut store) {
            Err(RunError::SeedMismatch { checkpoint: 1, requested: 2 }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_fig5_keeps_completed_chunks_and_resumes_identically() {
        let ds = tiny_gplus();
        let reference = circles_vs_random_parallel(&ds, 11, 2);

        // Cancel after the first progress report from the circles stage.
        let mut store = CheckpointStore::in_memory(11);
        let control = RunControl::new();
        let flag = control.cancel_flag();
        let control = control.with_progress(move |p| {
            if p.stage.starts_with("fig5/") {
                flag.cancel();
            }
        });
        let interrupted = circles_vs_random_checkpointed(&ds, 11, 2, &control, &mut store);
        match interrupted {
            Err(RunError::Interrupted(circlekit_graph::Interrupted::Cancelled)) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }

        // Resume with the partially filled store: identical final result.
        let resumed =
            circles_vs_random_checkpointed(&ds, 11, 2, &RunControl::new(), &mut store).unwrap();
        assert_fig5_identical(&reference, &resumed);
    }

    #[test]
    fn controlled_fig6_matches_parallel() {
        let ds = tiny_gplus();
        let reference = score_groups_parallel(&ds, 2);
        let controlled = score_groups_controlled(&ds, 2, &RunControl::new()).unwrap();
        assert_eq!(reference.name, controlled.name);
        for ((fa, sa, _), (fb, sb, _)) in
            reference.per_function.iter().zip(&controlled.per_function)
        {
            assert_eq!(fa, fb);
            assert_eq!(sa, sb);
        }
        let many = compare_datasets_controlled(&[&ds], 2, &RunControl::new()).unwrap();
        assert_eq!(many.len(), 1);
        assert_eq!(many[0].per_function[0].1, reference.per_function[0].1);
    }

    #[test]
    fn deadline_zero_interrupts_fig6() {
        let ds = tiny_gplus();
        let control = RunControl::new().with_deadline(std::time::Duration::ZERO);
        match score_groups_controlled(&ds, 2, &control) {
            Err(RunError::Interrupted(circlekit_graph::Interrupted::DeadlineExceeded)) => {}
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_fig6_survives_out_of_range_groups_with_batch_error() {
        let mut ds = tiny_gplus();
        let n = ds.graph.node_count() as u32;
        ds.groups.push(VertexSet::from_vec(vec![0, n + 5]));
        let mut store = CheckpointStore::in_memory(0);
        match score_groups_checkpointed(&ds, 2, &RunControl::new(), &mut store) {
            Err(RunError::Batch(report)) => {
                assert_eq!(report.failures.len(), 1);
                assert_eq!(report.failures[0].set, ds.groups.len() - 1);
                assert!(report.failures[0].message.contains("out of range"));
            }
            other => panic!("expected batch error, got {other:?}"),
        }
    }

    #[test]
    fn fig5_circles_beat_random_on_internal_density() {
        let ds = tiny_gplus();
        let mut rng = SmallRng::seed_from_u64(1);
        let result = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
        let avg_deg = &result.per_function[0];
        assert_eq!(avg_deg.function, ScoringFunction::AverageDegree);
        assert!(
            avg_deg.circles.mean > avg_deg.random.mean,
            "circles {} vs random {}",
            avg_deg.circles.mean,
            avg_deg.random.mean
        );
        // Modularity separates circles from the null model. (The paper's
        // ">50 % significant" claim is asserted at realistic scale in
        // tests/paper_shape.rs; this tiny fixture only checks direction.)
        let modularity = &result.per_function[3];
        assert!(modularity.circles.mean > modularity.random.mean);
        assert!(result.modularity_significant_fraction > 0.2);
    }

    #[test]
    fn fig5_score_vectors_are_size_consistent() {
        let ds = tiny_gplus();
        let mut rng = SmallRng::seed_from_u64(2);
        let result = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
        for pair in &result.per_function {
            assert_eq!(pair.circle_scores.len(), ds.groups.len());
            assert_eq!(pair.random_scores.len(), ds.groups.len());
            assert!((0.0..=1.0).contains(&pair.ks_separation));
        }
    }

    #[test]
    fn fig5_sampled_modularity_close_to_closed_form() {
        let ds = presets::google_plus()
            .scaled(0.002)
            .generate(&mut SmallRng::seed_from_u64(3));
        let mut rng = SmallRng::seed_from_u64(4);
        let closed = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
        let mut rng = SmallRng::seed_from_u64(4);
        let sampled = circles_vs_random(
            &ds,
            ModularityMode::Sampled { samples: 3, quality: 2.0 },
            &mut rng,
        );
        let a = closed.per_function[3].circles.mean;
        let b = sampled.per_function[3].circles.mean;
        assert!(
            relative_deviation(a, b) < 0.5,
            "closed {a} vs sampled {b} modularity diverge"
        );
    }

    #[test]
    fn fig5_parallel_is_thread_count_invariant() {
        let ds = tiny_gplus();
        let reference = circles_vs_random_parallel(&ds, 17, 1);
        for threads in [2usize, 3, 8] {
            let got = circles_vs_random_parallel(&ds, 17, threads);
            assert_eq!(
                format!("{reference:?}"),
                format!("{got:?}"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fig6_parallel_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(5);
        let gp = tiny_gplus();
        let lj = presets::livejournal().scaled(0.001).generate(&mut rng);
        let sequential = compare_datasets(&[&gp, &lj]);
        for threads in [1usize, 2, 7] {
            let parallel = compare_datasets_parallel(&[&gp, &lj], threads);
            assert_eq!(
                format!("{sequential:?}"),
                format!("{parallel:?}"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fig6_communities_have_lower_conductance_than_circles() {
        let mut rng = SmallRng::seed_from_u64(5);
        let gp = tiny_gplus();
        let lj = presets::livejournal().scaled(0.001).generate(&mut rng);
        let scores = compare_datasets(&[&gp, &lj]);
        let c_gp = scores[0].summary(ScoringFunction::Conductance).unwrap();
        let c_lj = scores[1].summary(ScoringFunction::Conductance).unwrap();
        assert!(
            c_gp.median > c_lj.median,
            "circles {} should out-conduct communities {}",
            c_gp.median,
            c_lj.median
        );
    }

    #[test]
    fn table3_summaries_match_datasets() {
        let ds = tiny_gplus();
        let rows = summarize_datasets(&[&ds]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].vertices, ds.graph.node_count());
        assert_eq!(rows[0].group_count, ds.groups.len());
    }

    #[test]
    fn fig1_overlap_matrix_is_symmetric_and_consistent() {
        let ds = tiny_gplus();
        let m = ego_overlap_matrix(&ds);
        assert_eq!(m.ego_count, ds.egos.len());
        for i in 0..m.ego_count {
            assert_eq!(m.shared[i][i] as usize, ds.egos[i].len());
            for j in 0..m.ego_count {
                assert_eq!(m.shared[i][j], m.shared[j][i]);
            }
        }
        assert!((0.0..=1.0).contains(&m.pair_overlap_fraction()));
        // The generator's overlapping pools should make most pairs touch.
        assert!(m.pair_overlap_fraction() > 0.5, "{}", m.pair_overlap_fraction());
    }

    #[test]
    fn fig2_ego_overlap_is_high() {
        let ds = tiny_gplus();
        let stats = ego_overlap_report(&ds);
        assert_eq!(stats.ego_count, ds.egos.len());
        // The paper reports 93.5 %; the generator's overlapping pools put
        // essentially every ego in overlap.
        assert!(stats.overlap_fraction > 0.7, "{}", stats.overlap_fraction);
    }

    #[test]
    fn fig4_clustering_mean_in_unit_interval() {
        let ds = tiny_gplus();
        let report = clustering_report(&ds);
        assert!((0.0..=1.0).contains(&report.mean));
        assert!(!report.cdf.is_empty());
        assert!((report.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_characterization_row_is_sane() {
        let ds = tiny_gplus();
        let mut rng = SmallRng::seed_from_u64(6);
        let row = characterize(&ds, 16, &mut rng);
        assert_eq!(row.vertices, ds.graph.node_count());
        assert!(row.diameter >= 1);
        assert!(row.average_shortest_path > 1.0);
        assert!(row.average_in_degree > 1.0);
    }

    #[test]
    fn sharing_densifies_circles_and_lowers_conductance() {
        let ds = tiny_gplus();
        let mut rng = SmallRng::seed_from_u64(13);
        let report = circle_sharing_densification(&ds, 0.5, &mut rng);
        assert!(report.added_edges > 0);
        assert!(
            report.density_after.mean > report.density_before.mean,
            "density {} -> {}",
            report.density_before.mean,
            report.density_after.mean
        );
        assert!(
            report.conductance_after.mean < report.conductance_before.mean,
            "conductance {} -> {}",
            report.conductance_before.mean,
            report.conductance_after.mean
        );
    }

    #[test]
    fn sharing_with_zero_probability_is_identity() {
        let ds = tiny_gplus();
        let mut rng = SmallRng::seed_from_u64(14);
        let report = circle_sharing_densification(&ds, 0.0, &mut rng);
        assert_eq!(report.added_edges, 0);
        assert_eq!(report.density_before, report.density_after);
        assert_eq!(report.conductance_before, report.conductance_after);
    }

    #[test]
    fn detection_comparison_runs_both_methods() {
        let mut rng = SmallRng::seed_from_u64(12);
        let ds = presets::livejournal()
            .scaled(0.0005)
            .generate(&mut rng);
        let results = detection_comparison(&ds, &mut rng);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!((0.0..=1.0).contains(&r.nmi), "{}: nmi {}", r.method, r.nmi);
            assert_eq!(r.per_function.len(), 4);
        }
        // Louvain on a planted-community graph should recover real
        // structure: nonzero agreement with the planted labels.
        let louvain = &results[0];
        assert_eq!(louvain.method, "louvain");
        assert!(louvain.detected > 1);
        assert!(louvain.nmi > 0.1, "nmi {}", louvain.nmi);
    }

    #[test]
    fn ego_view_attributes_circles_and_tightens_ratio_cut() {
        let ds = tiny_gplus();
        let cmp = ego_view_comparison(&ds);
        // The generator always places circles inside one ego network.
        assert_eq!(cmp.attributed, ds.groups.len());
        // Ratio Cut: within the (much smaller) ego graph the denominator
        // n_C (n - n_C) shrinks drastically, so the ego-view value rises.
        let (f, global, ego) = &cmp.per_function[1];
        assert_eq!(*f, ScoringFunction::RatioCut);
        assert!(
            ego.mean > global.mean,
            "ego {} vs global {}",
            ego.mean,
            global.mean
        );
        // Conductance can only drop or stay: all of a circle's internal
        // edges survive, while boundary edges to other ego networks are
        // cut away.
        let (_, global_c, ego_c) = &cmp.per_function[2];
        assert!(ego_c.mean <= global_c.mean + 1e-9);
    }

    #[test]
    fn correlations_are_symmetric_and_self_one() {
        let ds = tiny_gplus();
        let corr = function_correlations(&ds);
        let n = corr.functions.len();
        for i in 0..n {
            for j in 0..n {
                match (corr.matrix[i][j], corr.matrix[j][i]) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                    (None, None) => {}
                    other => panic!("asymmetric definedness {other:?}"),
                }
            }
            if let Some(r) = corr.matrix[i][i] {
                assert!((r - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn within_category_correlation_beats_across() {
        // The Yang-Leskovec grouping claim, on our synthetic circles.
        let ds = presets::google_plus()
            .scaled(0.008)
            .generate(&mut SmallRng::seed_from_u64(2014));
        let corr = function_correlations(&ds);
        let (within, across) = corr.within_vs_across();
        assert!(
            within > across,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn robustness_deviation_is_small_for_scale_invariant_functions() {
        let ds = tiny_gplus();
        let report = directed_vs_undirected(&ds);
        assert_eq!(report.per_function.len(), 4);
        // Conductance/modularity shift only through reciprocity asymmetry;
        // the paper reports ≈ 2.38 %, we allow a loose band.
        assert!(report.overall < 0.35, "overall deviation {}", report.overall);
    }
}
