//! Checkpoint–resume for experiment runs.
//!
//! Scoring the paper's Figure 5/6 batches at Orkut scale takes long
//! enough that a crash or an operator kill must not discard hours of
//! finished work. A [`CheckpointStore`] records completed score chunks
//! under stable string keys (`{experiment}/{dataset}/{collection}/paper/{chunk}`)
//! and persists them to a JSON sidecar file after every chunk; a resumed
//! run loads the sidecar, skips every finished chunk, and recomputes only
//! the rest.
//!
//! Scores are stored as `u64` bit patterns ([`f64::to_bits`]), not as
//! decimal floats, so the round-trip through the sidecar is bit-exact —
//! a resumed run's final tables are *identical* to an uninterrupted
//! run's, which `tests/fault_injection.rs` and the CI kill/resume smoke
//! step verify. Chunk granularity is fixed ([`CHECKPOINT_CHUNK`]) and
//! independent of the worker-thread count, so a run checkpointed with 8
//! threads can resume with 1 and vice versa.

use circlekit_graph::Interrupted;
use circlekit_scoring::BatchReport;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Number of sets per checkpoint chunk. Fixed — never derived from the
/// thread count — so checkpoint keys are stable across hardware.
pub const CHECKPOINT_CHUNK: usize = 64;

/// Version tag of the sidecar format; bumped on layout changes.
const CHECKPOINT_VERSION: u64 = 1;

/// Why a controlled or checkpointed experiment run did not complete.
#[derive(Debug)]
pub enum RunError {
    /// The run was cancelled or hit its soft deadline; completed chunks
    /// are already in the checkpoint store.
    Interrupted(Interrupted),
    /// Scoring finished but some sets failed (panicked twice or carried
    /// out-of-range members); the report names them.
    Batch(BatchReport),
    /// Reading or writing the checkpoint sidecar failed.
    Io(std::io::Error),
    /// The sidecar file exists but does not parse as a checkpoint.
    Corrupt(String),
    /// The sidecar was written by a run with a different root seed, so
    /// its cached scores describe different random sets.
    SeedMismatch {
        /// Seed recorded in the sidecar.
        checkpoint: u64,
        /// Seed of the run trying to resume.
        requested: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Interrupted(why) => write!(f, "run interrupted: {why}"),
            RunError::Batch(report) => write!(f, "batch incomplete: {report}"),
            RunError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            RunError::Corrupt(why) => write!(f, "checkpoint file corrupt: {why}"),
            RunError::SeedMismatch { checkpoint, requested } => write!(
                f,
                "checkpoint was written with root seed {checkpoint}, \
                 but this run uses {requested}; delete the file or rerun with --seed {checkpoint}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Io(e) => Some(e),
            RunError::Interrupted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Interrupted> for RunError {
    fn from(why: Interrupted) -> RunError {
        RunError::Interrupted(why)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> RunError {
        RunError::Io(e)
    }
}

/// One persisted chunk: its key and the chunk's scores as `f64` bit
/// patterns, row-major (`set-major, function-minor`).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CheckpointEntry {
    key: String,
    bits: Vec<u64>,
}

/// The sidecar file layout.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CheckpointFile {
    version: u64,
    root_seed: u64,
    entries: Vec<CheckpointEntry>,
}

/// Store of completed score chunks, optionally persisted to a sidecar
/// file after every insertion via [`CheckpointStore::flush`].
#[derive(Debug)]
pub struct CheckpointStore {
    path: Option<PathBuf>,
    root_seed: u64,
    entries: BTreeMap<String, Vec<u64>>,
    dirty: bool,
}

impl CheckpointStore {
    /// A store that lives only in memory — checkpoint bookkeeping without
    /// a sidecar file (useful in tests and for pure cancellation runs).
    pub fn in_memory(root_seed: u64) -> CheckpointStore {
        CheckpointStore { path: None, root_seed, entries: BTreeMap::new(), dirty: false }
    }

    /// Opens (or creates) a sidecar-backed store. If `path` exists its
    /// entries are loaded, making a subsequent run a resume.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] on read failure, [`RunError::Corrupt`] if the file
    /// is not a valid checkpoint, and [`RunError::SeedMismatch`] if it was
    /// written under a different `root_seed`.
    pub fn at_path(path: impl Into<PathBuf>, root_seed: u64) -> Result<CheckpointStore, RunError> {
        let path = path.into();
        let mut store = CheckpointStore {
            path: Some(path.clone()),
            root_seed,
            entries: BTreeMap::new(),
            dirty: false,
        };
        if path.exists() {
            let bytes = std::fs::read(&path)?;
            let text = String::from_utf8(bytes).map_err(|_| {
                RunError::Corrupt(format!(
                    "{}: not UTF-8 text — is this really a checkpoint sidecar?",
                    path.display()
                ))
            })?;
            // Classify the defect instead of leaking serde_json's debug
            // representation: the message must tell an operator whether
            // the sidecar was cut off mid-write (safe to delete and
            // restart) or is some other file entirely.
            let file: CheckpointFile = serde_json::from_str(&text).map_err(|e| {
                let msg = e.to_string();
                let what = if text.trim().is_empty() {
                    "file is empty — truncated before the first flush?".to_string()
                } else if msg.contains("unexpected end of JSON input") {
                    format!("JSON ends unexpectedly ({msg}) — truncated write?")
                } else if msg.contains("missing field")
                    || msg.contains("invalid type")
                    || msg.contains("unknown field")
                {
                    format!("valid JSON but not a checkpoint ({msg})")
                } else {
                    format!("not valid JSON ({msg})")
                };
                RunError::Corrupt(format!("{}: {what}", path.display()))
            })?;
            if file.version != CHECKPOINT_VERSION {
                return Err(RunError::Corrupt(format!(
                    "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                    file.version
                )));
            }
            if file.root_seed != root_seed {
                return Err(RunError::SeedMismatch {
                    checkpoint: file.root_seed,
                    requested: root_seed,
                });
            }
            for entry in file.entries {
                store.entries.insert(entry.key, entry.bits);
            }
        }
        Ok(store)
    }

    /// The root seed this store's cached scores were computed under.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The sidecar path, if this store persists to disk.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no chunk has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a chunk is cached under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The cached scores under `key`, decoded from their bit patterns.
    pub fn get_scores(&self, key: &str) -> Option<Vec<f64>> {
        self.entries
            .get(key)
            .map(|bits| bits.iter().map(|&b| f64::from_bits(b)).collect())
    }

    /// Caches `scores` under `key`, replacing any previous entry. Call
    /// [`CheckpointStore::flush`] afterwards to persist.
    pub fn put_scores(&mut self, key: &str, scores: &[f64]) {
        self.entries
            .insert(key.to_string(), scores.iter().map(|s| s.to_bits()).collect());
        self.dirty = true;
    }

    /// Writes the store to its sidecar atomically (temp file + rename).
    /// No-op for in-memory stores or when nothing changed since the last
    /// flush.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure and [`RunError::Corrupt`]
    /// if serialisation fails (which would indicate a bug, not bad input).
    pub fn flush(&mut self) -> Result<(), RunError> {
        let Some(path) = &self.path else { return Ok(()) };
        if !self.dirty {
            return Ok(());
        }
        let file = CheckpointFile {
            version: CHECKPOINT_VERSION,
            root_seed: self.root_seed,
            entries: self
                .entries
                .iter()
                .map(|(key, bits)| CheckpointEntry { key: key.clone(), bits: bits.clone() })
                .collect(),
        };
        let text = serde_json::to_string(&file)
            .map_err(|e| RunError::Corrupt(format!("serialising checkpoint: {e:?}")))?;
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        self.dirty = false;
        Ok(())
    }
}

/// Builds the stable key of one score chunk.
pub(crate) fn chunk_key(
    experiment: &str,
    dataset: &str,
    collection: &str,
    chunk_index: usize,
) -> String {
    format!("{experiment}/{dataset}/{collection}/paper/{chunk_index}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_roundtrip_bit_exactly() {
        let mut store = CheckpointStore::in_memory(7);
        let scores = [1.5, -0.0, f64::NAN, f64::INFINITY, 1.0 / 3.0, f64::MIN_POSITIVE];
        store.put_scores("fig6/a/groups/paper/0", &scores);
        let back = store.get_scores("fig6/a/groups/paper/0").unwrap();
        assert_eq!(back.len(), scores.len());
        for (a, b) in scores.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(store.contains("fig6/a/groups/paper/0"));
        assert!(!store.contains("fig6/a/groups/paper/1"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sidecar_roundtrip_preserves_entries() {
        let dir = std::env::temp_dir().join("circlekit-ckpt-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut store = CheckpointStore::at_path(&path, 42).unwrap();
        assert!(store.is_empty());
        store.put_scores("k/0", &[0.25, f64::NAN]);
        store.put_scores("k/1", &[-1.0]);
        store.flush().unwrap();

        let resumed = CheckpointStore::at_path(&path, 42).unwrap();
        assert_eq!(resumed.len(), 2);
        let back = resumed.get_scores("k/0").unwrap();
        assert_eq!(back[0], 0.25);
        assert!(back[1].is_nan());
        assert_eq!(resumed.get_scores("k/1").unwrap(), vec![-1.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seed_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("circlekit-ckpt-test-seed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut store = CheckpointStore::at_path(&path, 1).unwrap();
        store.put_scores("k/0", &[1.0]);
        store.flush().unwrap();

        match CheckpointStore::at_path(&path, 2) {
            Err(RunError::SeedMismatch { checkpoint: 1, requested: 2 }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_sidecar_is_reported() {
        let dir = std::env::temp_dir().join("circlekit-ckpt-test-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        std::fs::write(&path, "not json at all").unwrap();
        match CheckpointStore::at_path(&path, 1) {
            Err(RunError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Every flavour of sidecar corruption must surface as a structured
    /// `Corrupt` message that classifies the defect — never serde_json's
    /// debug representation.
    #[test]
    fn corrupt_sidecar_messages_classify_the_defect() {
        let dir = std::env::temp_dir().join("circlekit-ckpt-test-classify");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let corrupt_message = |content: &[u8]| -> String {
            std::fs::write(&path, content).unwrap();
            match CheckpointStore::at_path(&path, 1) {
                Err(RunError::Corrupt(why)) => {
                    assert!(
                        !why.contains("Error(") && !why.contains("ErrorCode"),
                        "raw serde_json debug output leaked: {why}"
                    );
                    assert!(why.contains("run.ckpt"), "message must name the file: {why}");
                    why
                }
                other => panic!("expected corrupt for {content:?}, got {other:?}"),
            }
        };

        // A sidecar truncated mid-write (the crash-during-flush case).
        let mut store = CheckpointStore::at_path(dir.join("good.ckpt"), 1).unwrap();
        store.put_scores("k/0", &[1.0, 2.0]);
        store.flush().unwrap();
        let good = std::fs::read(dir.join("good.ckpt")).unwrap();
        let why = corrupt_message(&good[..good.len() / 2]);
        assert!(why.contains("truncated"), "{why}");

        // An empty file.
        let why = corrupt_message(b"");
        assert!(why.contains("empty"), "{why}");

        // Garbage that is not JSON at all.
        let why = corrupt_message(b"}{ nonsense");
        assert!(why.contains("not valid JSON"), "{why}");

        // Valid JSON of the wrong shape.
        let why = corrupt_message(b"{\"foo\": 1}");
        assert!(why.contains("not a checkpoint"), "{why}");

        // Binary garbage that is not even UTF-8.
        let why = corrupt_message(&[0xFF, 0xFE, 0x00, 0x80, 0xC3]);
        assert!(why.contains("UTF-8"), "{why}");

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(dir.join("good.ckpt")).unwrap();
    }

    #[test]
    fn flush_without_changes_is_a_noop() {
        let mut store = CheckpointStore::in_memory(0);
        store.flush().unwrap(); // in-memory: always fine
        store.put_scores("k", &[1.0]);
        store.flush().unwrap();
    }

    #[test]
    fn run_error_displays() {
        let e = RunError::SeedMismatch { checkpoint: 5, requested: 6 };
        assert!(e.to_string().contains("root seed 5"));
        let e = RunError::Interrupted(Interrupted::DeadlineExceeded);
        assert!(e.to_string().contains("soft deadline"));
    }
}
