//! Fang et al. circle categorisation (the paper's explanation for the
//! long tails of Figure 5).
//!
//! Fang, Fabrikant & LeFevre found that shared circles fall into two
//! clusters: **community-like** circles (high internal density, high
//! reciprocity) and **celebrity-like** circles (sparse, low reciprocity,
//! but very popular members). This module reproduces that clustering with
//! a small 2-means over the three features they name.

use circlekit_graph::VertexSet;
use circlekit_scoring::Scorer;
use circlekit_synth::SynthDataset;

/// Fang et al.'s two categories of shared circles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CircleCategory {
    /// Dense, reciprocated — an actual community shared as a circle.
    CommunityLike,
    /// Sparse and unreciprocated but with very popular members.
    CelebrityLike,
}

impl std::fmt::Display for CircleCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CircleCategory::CommunityLike => "community-like",
            CircleCategory::CelebrityLike => "celebrity-like",
        })
    }
}

/// A categorised circle with its feature vector.
#[derive(Clone, Debug)]
pub struct CategorizedCircle {
    /// Index into the data set's `groups`.
    pub index: usize,
    /// Assigned category.
    pub category: CircleCategory,
    /// Internal edge density (realised / possible).
    pub density: f64,
    /// Reciprocity among internal edges (1.0 for undirected graphs).
    pub reciprocity: f64,
    /// Mean graph-wide in-degree of the members (the "popularity" axis).
    pub mean_in_degree: f64,
}

/// Categorises every circle of the data set by 2-means clustering on
/// `(density, reciprocity, log in-degree)`, assigning the denser centroid
/// the community-like label.
///
/// Returns one entry per group, in group order. Data sets with fewer than
/// two groups get every circle labelled community-like.
pub fn categorize_circles(dataset: &SynthDataset) -> Vec<CategorizedCircle> {
    let mut scorer = Scorer::new(&dataset.graph);
    let features: Vec<[f64; 3]> = dataset
        .groups
        .iter()
        .map(|set| {
            let stats = scorer.stats(set);
            let density = if stats.possible_internal_edges() == 0 {
                0.0
            } else {
                stats.m_c as f64 / stats.possible_internal_edges() as f64
            };
            [
                density,
                internal_reciprocity(dataset, set),
                mean_in_degree(dataset, set).ln_1p(),
            ]
        })
        .collect();

    let assignments = two_means(&features);

    dataset
        .groups
        .iter()
        .enumerate()
        .map(|(index, set)| CategorizedCircle {
            index,
            category: assignments[index],
            density: features[index][0],
            reciprocity: features[index][1],
            mean_in_degree: mean_in_degree(dataset, set),
        })
        .collect()
}

/// Fraction of internal edges that are reciprocated (1.0 for undirected
/// graphs or edgeless sets).
fn internal_reciprocity(dataset: &SynthDataset, set: &VertexSet) -> f64 {
    if !dataset.graph.is_directed() {
        return 1.0;
    }
    let mut internal = 0usize;
    let mut mutual = 0usize;
    for u in set.iter() {
        for &v in dataset.graph.out_neighbors(u) {
            if set.contains(v) {
                internal += 1;
                if dataset.graph.has_edge(v, u) {
                    mutual += 1;
                }
            }
        }
    }
    if internal == 0 {
        1.0
    } else {
        mutual as f64 / internal as f64
    }
}

fn mean_in_degree(dataset: &SynthDataset, set: &VertexSet) -> f64 {
    if set.is_empty() {
        return 0.0;
    }
    let total: usize = set.iter().map(|v| dataset.graph.in_degree(v)).sum();
    total as f64 / set.len() as f64
}

/// Tiny deterministic 2-means on standardised features; the cluster whose
/// centroid has the higher density coordinate is community-like.
fn two_means(features: &[[f64; 3]]) -> Vec<CircleCategory> {
    let n = features.len();
    if n < 2 {
        return vec![CircleCategory::CommunityLike; n];
    }
    // Standardise each coordinate.
    let mut std_features = vec![[0.0f64; 3]; n];
    for dim in 0..3 {
        let vals: Vec<f64> = features.iter().map(|f| f[dim]).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt().max(1e-12);
        for (i, v) in vals.iter().enumerate() {
            std_features[i][dim] = (v - mean) / sd;
        }
    }
    // Deterministic init: min- and max-density points.
    let lo = (0..n)
        .min_by(|&a, &b| std_features[a][0].partial_cmp(&std_features[b][0]).expect("finite"))
        .expect("non-empty");
    let hi = (0..n)
        .max_by(|&a, &b| std_features[a][0].partial_cmp(&std_features[b][0]).expect("finite"))
        .expect("non-empty");
    let mut centroids = [std_features[lo], std_features[hi]];
    let mut assign = vec![0usize; n];
    for _ in 0..32 {
        let mut changed = false;
        for (i, f) in std_features.iter().enumerate() {
            let d0 = dist2(f, &centroids[0]);
            let d1 = dist2(f, &centroids[1]);
            let a = usize::from(d1 < d0);
            if assign[i] != a {
                assign[i] = a;
                changed = true;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&[f64; 3]> = std_features
                .iter()
                .zip(&assign)
                .filter(|&(_, &a)| a == c)
                .map(|(f, _)| f)
                .collect();
            if members.is_empty() {
                continue;
            }
            for (dim, slot) in centroid.iter_mut().enumerate() {
                *slot = members.iter().map(|f| f[dim]).sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }
    // The cluster with the higher (standardised) density centroid is the
    // community-like one.
    let community_cluster = usize::from(centroids[1][0] > centroids[0][0]);
    assign
        .into_iter()
        .map(|a| {
            if a == community_cluster {
                CircleCategory::CommunityLike
            } else {
                CircleCategory::CelebrityLike
            }
        })
        .collect()
}

fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    (0..3).map(|i| (a[i] - b[i]).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::{Graph, GraphBuilder};
    use circlekit_synth::{GroupKind, SynthDataset};

    /// A data set with one dense reciprocated circle and one star-shaped
    /// "celebrity" circle.
    fn fang_fixture() -> SynthDataset {
        let mut b = GraphBuilder::directed();
        // Dense mutual clique on 0..4.
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        // Celebrity 4: everyone (5..25) follows, no edges back or among
        // followers; the circle groups followers with the celebrity.
        for f in 5..25u32 {
            b.add_edge(f, 4);
        }
        let graph = b.build();
        SynthDataset {
            name: "fang".into(),
            graph,
            groups: vec![
                (0u32..4).collect(),
                VertexSet::from_vec((4u32..12).collect()),
            ],
            egos: vec![],
            ego_owners: vec![],
            kind: GroupKind::Circles,
        }
    }

    #[test]
    fn dense_reciprocated_circle_is_community_like() {
        let ds = fang_fixture();
        let cats = categorize_circles(&ds);
        assert_eq!(cats.len(), 2);
        assert_eq!(cats[0].category, CircleCategory::CommunityLike);
        assert_eq!(cats[1].category, CircleCategory::CelebrityLike);
        assert!(cats[0].density > cats[1].density);
        assert!(cats[0].reciprocity > cats[1].reciprocity);
        assert!(cats[1].mean_in_degree > 0.0);
    }

    #[test]
    fn single_group_defaults_to_community_like() {
        let ds = SynthDataset {
            name: "one".into(),
            graph: Graph::from_edges(true, [(0u32, 1u32), (1, 0)]),
            groups: vec![(0u32..2).collect()],
            egos: vec![],
            ego_owners: vec![],
            kind: GroupKind::Circles,
        };
        let cats = categorize_circles(&ds);
        assert_eq!(cats[0].category, CircleCategory::CommunityLike);
    }

    #[test]
    fn undirected_reciprocity_is_one() {
        let ds = SynthDataset {
            name: "und".into(),
            graph: Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (3, 4)]),
            groups: vec![(0u32..3).collect(), VertexSet::from_vec(vec![3, 4])],
            egos: vec![],
            ego_owners: vec![],
            kind: GroupKind::Communities,
        };
        let cats = categorize_circles(&ds);
        assert!(cats.iter().all(|c| c.reciprocity == 1.0));
    }

    #[test]
    fn category_display() {
        assert_eq!(CircleCategory::CommunityLike.to_string(), "community-like");
        assert_eq!(CircleCategory::CelebrityLike.to_string(), "celebrity-like");
    }
}
