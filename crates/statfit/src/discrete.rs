//! Discrete tail models for integer-valued data (degree sequences).
//!
//! Clauset–Shalizi–Newman treat degree data as genuinely discrete: the
//! power law uses the Hurwitz zeta normalisation and the alternatives are
//! the continuous densities *discretised* onto integer bins. These models
//! avoid the large spurious KS distances that continuous CDFs incur at the
//! integer mass points (e.g. at `x = 1`, where social-graph degree
//! sequences concentrate).

use crate::models::{FitError, TailModel};
use crate::special::normal_cdf;

/// Hurwitz zeta `ζ(s, q) = Σ_{k≥0} (q + k)^{-s}` for `s > 1`, `q > 0`,
/// via Euler–Maclaurin summation (relative error well below `1e-10` for
/// the parameter ranges used in fitting).
pub fn hurwitz_zeta(s: f64, q: f64) -> f64 {
    debug_assert!(s > 1.0 && q > 0.0);
    const N: usize = 24;
    let mut sum = 0.0;
    for k in 0..N {
        sum += (q + k as f64).powf(-s);
    }
    let qn = q + N as f64;
    sum += qn.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * qn.powf(-s);
    sum += s * qn.powf(-s - 1.0) / 12.0;
    sum -= s * (s + 1.0) * (s + 2.0) * qn.powf(-s - 3.0) / 720.0;
    sum
}

/// Discrete power law `p(x) = x^{-α} / ζ(α, x_min)` on integers
/// `x ≥ x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscretePowerLaw {
    /// Scaling exponent `α > 1`.
    pub alpha: f64,
    /// Integer tail cutoff (`≥ 1`).
    pub x_min: u64,
}

impl DiscretePowerLaw {
    /// Exact discrete MLE: maximises
    /// `ℓ(α) = -α Σ ln x_i - n ln ζ(α, x_min)` by golden-section search
    /// over `α ∈ (1.01, 8)`.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] for tails shorter than 2, or
    /// [`FitError::DegenerateTail`] when every value equals `x_min = 1`
    /// has no finite optimum... in practice when `Σ ln x = 0`.
    pub fn fit(tail: &[f64], x_min: u64) -> Result<DiscretePowerLaw, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let n = tail.len() as f64;
        let log_sum: f64 = tail.iter().map(|&x| x.ln()).sum();
        if log_sum <= (x_min as f64).ln() * n {
            return Err(FitError::DegenerateTail);
        }
        let ll = |alpha: f64| -alpha * log_sum - n * hurwitz_zeta(alpha, x_min as f64).ln();
        let alpha = golden_max(ll, 1.01, 8.0);
        Ok(DiscretePowerLaw { alpha, x_min })
    }
}

impl TailModel for DiscretePowerLaw {
    fn x_min(&self) -> f64 {
        self.x_min as f64
    }

    fn log_pdf(&self, x: f64) -> f64 {
        -self.alpha * x.ln() - hurwitz_zeta(self.alpha, self.x_min as f64).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min as f64 {
            return 0.0;
        }
        let z_min = hurwitz_zeta(self.alpha, self.x_min as f64);
        let z_tail = hurwitz_zeta(self.alpha, x.floor() + 1.0);
        (1.0 - z_tail / z_min).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "power-law (discrete)"
    }
}

/// Log-normal discretised onto integer bins:
/// `p(x) ∝ Φ(z(x + ½)) - Φ(z(x - ½))`, normalised on `x ≥ x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteLogNormal {
    /// Location of `ln X`.
    pub mu: f64,
    /// Scale of `ln X`.
    pub sigma: f64,
    /// Integer tail cutoff (`≥ 1`).
    pub x_min: u64,
}

impl DiscreteLogNormal {
    /// Fits by coordinate-wise golden-section ascent on the discretised,
    /// truncated likelihood, seeded with the naive `ln x` moments.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] / [`FitError::DegenerateTail`].
    pub fn fit(tail: &[f64], x_min: u64) -> Result<DiscreteLogNormal, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let logs: Vec<f64> = tail.iter().map(|&x| x.ln()).collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
        if var <= 1e-12 {
            return Err(FitError::DegenerateTail);
        }
        let mut mu = mean;
        let mut sigma = var.sqrt();
        let ll = |mu: f64, sigma: f64| {
            let model = DiscreteLogNormal { mu, sigma, x_min };
            tail.iter().map(|&x| model.log_pdf(x)).sum::<f64>()
        };
        for _ in 0..4 {
            mu = golden_max(|m| ll(m, sigma), mu - 4.0 * sigma, mu + 4.0 * sigma);
            sigma = golden_max(|s| ll(mu, s), (sigma * 0.1).max(1e-3), sigma * 6.0);
        }
        Ok(DiscreteLogNormal { mu, sigma, x_min })
    }

    fn phi(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn tail_mass(&self) -> f64 {
        (1.0 - self.phi(self.x_min as f64 - 0.5)).max(1e-300)
    }
}

impl TailModel for DiscreteLogNormal {
    fn x_min(&self) -> f64 {
        self.x_min as f64
    }

    fn log_pdf(&self, x: f64) -> f64 {
        let p = (self.phi(x + 0.5) - self.phi(x - 0.5)).max(1e-300);
        p.ln() - self.tail_mass().ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min as f64 {
            return 0.0;
        }
        let lo = self.phi(self.x_min as f64 - 0.5);
        ((self.phi(x.floor() + 0.5) - lo) / self.tail_mass()).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "log-normal (discrete)"
    }
}

/// Geometric-style discretised exponential:
/// `p(x) ∝ e^{-λ(x-½)} - e^{-λ(x+½)}`, normalised on `x ≥ x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteExponential {
    /// Rate `λ > 0`.
    pub lambda: f64,
    /// Integer tail cutoff (`≥ 1`).
    pub x_min: u64,
}

impl DiscreteExponential {
    /// Fits λ by golden-section on the discretised likelihood (which has a
    /// closed geometric form: the MLE solves
    /// `e^{-λ} = 1 - 1/(mean - x_min + 1)` — we optimise numerically for
    /// symmetry with the other fits).
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] / [`FitError::DegenerateTail`].
    pub fn fit(tail: &[f64], x_min: u64) -> Result<DiscreteExponential, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        if mean <= x_min as f64 {
            return Err(FitError::DegenerateTail);
        }
        let ll = |lambda: f64| {
            let model = DiscreteExponential { lambda, x_min };
            tail.iter().map(|&x| model.log_pdf(x)).sum::<f64>()
        };
        let lambda = golden_max(ll, 1e-6, 10.0);
        Ok(DiscreteExponential { lambda, x_min })
    }

    fn tail_mass(&self) -> f64 {
        // P(X >= x_min) for the continuous exponential on [x_min - ½, ∞)
        // is 1 by construction of the normalisation below.
        1.0
    }
}

impl TailModel for DiscreteExponential {
    fn x_min(&self) -> f64 {
        self.x_min as f64
    }

    fn log_pdf(&self, x: f64) -> f64 {
        // Normalised over integers >= x_min: geometric with support shift.
        let shift = x - self.x_min as f64;
        let p = (1.0 - (-self.lambda).exp()).max(1e-300);
        (p.ln() - self.lambda * shift) - self.tail_mass().ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min as f64 {
            return 0.0;
        }
        let k = (x.floor() - self.x_min as f64) + 1.0;
        (1.0 - (-self.lambda * k).exp()).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "exponential (discrete)"
    }
}

/// Golden-section maximisation on `[lo, hi]` (shared with the continuous
/// fits; duplicated privately to keep the modules decoupled).
fn golden_max<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..70 {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic discrete power-law sample via inverse CDF on the true
    /// zeta-normalised distribution.
    fn discrete_power_law_sample(alpha: f64, x_min: u64, n: usize) -> Vec<f64> {
        let model = DiscretePowerLaw { alpha, x_min };
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                // Invert the CDF by doubling + binary search.
                let mut lo = x_min;
                let mut hi = x_min * 2 + 1;
                while model.cdf(hi as f64) < u {
                    hi *= 2;
                    if hi > 1 << 40 {
                        break;
                    }
                }
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if model.cdf(mid as f64) < u {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo as f64
            })
            .collect()
    }

    #[test]
    fn hurwitz_zeta_reference_values() {
        // ζ(2, 1) = π²/6.
        let z = hurwitz_zeta(2.0, 1.0);
        assert!((z - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-9, "{z}");
        // ζ(2, 2) = π²/6 - 1.
        let z = hurwitz_zeta(2.0, 2.0);
        assert!((z - (std::f64::consts::PI.powi(2) / 6.0 - 1.0)).abs() < 1e-9);
        // ζ(3, 1) = Apéry's constant.
        let z = hurwitz_zeta(3.0, 1.0);
        assert!((z - 1.2020569031595943).abs() < 1e-9);
    }

    #[test]
    fn discrete_power_law_pmf_sums_to_one() {
        let m = DiscretePowerLaw { alpha: 2.5, x_min: 1 };
        let total: f64 = (1..200_000).map(|x| m.log_pdf(x as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-3, "pmf sum {total}");
    }

    #[test]
    fn discrete_power_law_cdf_matches_pmf_partial_sums() {
        let m = DiscretePowerLaw { alpha: 2.0, x_min: 2 };
        let mut acc = 0.0;
        for x in 2..50u64 {
            acc += m.log_pdf(x as f64).exp();
            assert!((m.cdf(x as f64) - acc).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn discrete_power_law_mle_recovers_alpha() {
        let data = discrete_power_law_sample(2.5, 1, 10_000);
        let fit = DiscretePowerLaw::fit(&data, 1).unwrap();
        assert!((fit.alpha - 2.5).abs() < 0.05, "alpha={}", fit.alpha);
    }

    #[test]
    fn discrete_lognormal_pmf_sums_to_one() {
        let m = DiscreteLogNormal { mu: 2.0, sigma: 0.8, x_min: 1 };
        let total: f64 = (1..100_000).map(|x| m.log_pdf(x as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-3, "pmf sum {total}");
    }

    #[test]
    fn discrete_exponential_pmf_sums_to_one() {
        let m = DiscreteExponential { lambda: 0.4, x_min: 3 };
        let total: f64 = (3..1000).map(|x| m.log_pdf(x as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sum {total}");
    }

    #[test]
    fn discrete_exponential_mle_recovers_lambda() {
        // Geometric sample with lambda = 0.3, x_min = 1.
        let m = DiscreteExponential { lambda: 0.3, x_min: 1 };
        let n = 20_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                let mut x = 1u64;
                while m.cdf(x as f64) < u && x < 1000 {
                    x += 1;
                }
                x as f64
            })
            .collect();
        let fit = DiscreteExponential::fit(&data, 1).unwrap();
        assert!((fit.lambda - 0.3).abs() < 0.02, "lambda={}", fit.lambda);
    }

    #[test]
    fn all_discrete_cdfs_monotone_bounded() {
        let pl = DiscretePowerLaw { alpha: 2.1, x_min: 1 };
        let ln = DiscreteLogNormal { mu: 1.5, sigma: 1.0, x_min: 1 };
        let ex = DiscreteExponential { lambda: 0.2, x_min: 1 };
        let models: [&dyn TailModel; 3] = [&pl, &ln, &ex];
        for m in models {
            let mut prev = -1.0;
            for x in 1..500u64 {
                let f = m.cdf(x as f64);
                assert!((0.0..=1.0).contains(&f), "{}", m.name());
                assert!(f >= prev, "{} not monotone at {x}", m.name());
                prev = f;
            }
        }
    }

    #[test]
    fn fit_errors_on_degenerate_input() {
        assert!(DiscretePowerLaw::fit(&[5.0], 1).is_err());
        assert!(DiscretePowerLaw::fit(&[1.0, 1.0, 1.0], 1).is_err());
        assert!(DiscreteLogNormal::fit(&[4.0, 4.0], 1).is_err());
        assert!(DiscreteExponential::fit(&[1.0, 1.0], 1).is_err());
    }
}
