//! Parametric bootstrap goodness-of-fit (CSN §4.1).
//!
//! The KS distance of a *fitted* model is biased low (the fit adapts to
//! the sample), so its raw value cannot be read as a significance level.
//! CSN's remedy: generate many synthetic samples from the fitted model,
//! refit each, and compare KS distances. The p-value is the fraction of
//! synthetic samples fitting *worse* than the data; `p < 0.1` rejects the
//! model family.

use crate::discrete::DiscretePowerLaw;
use crate::models::{FitError, TailModel};
use circlekit_stats::ks_statistic_discrete;
use rand::Rng;

/// Result of the bootstrap goodness-of-fit test for a discrete power law.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GoodnessOfFit {
    /// The observed KS distance of the fit on the data.
    pub observed_ks: f64,
    /// Fraction of synthetic re-fitted samples whose KS is at least the
    /// observed one. Values below ~0.1 reject the power-law hypothesis.
    pub p_value: f64,
    /// Number of bootstrap replicates drawn.
    pub replicates: usize,
}

impl GoodnessOfFit {
    /// Whether the model family is plausible at the CSN threshold
    /// (`p >= 0.1`).
    pub fn plausible(&self) -> bool {
        self.p_value >= 0.1
    }
}

/// Samples one value from a discrete power law by inverting its CDF
/// (doubling search then binary search).
pub fn sample_discrete_power_law<R: Rng + ?Sized>(
    model: &DiscretePowerLaw,
    rng: &mut R,
) -> u64 {
    let u: f64 = rng.gen();
    let mut lo = model.x_min;
    let mut hi = model.x_min.saturating_mul(2) + 1;
    let mut guard = 0;
    while model.cdf(hi as f64) < u && guard < 60 {
        hi = hi.saturating_mul(2);
        guard += 1;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if model.cdf(mid as f64) < u {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Runs the CSN parametric bootstrap for a fitted discrete power law on
/// its tail data (every element `>= model.x_min`).
///
/// # Errors
///
/// Propagates [`FitError`] if the tail is degenerate. Replicates whose
/// refit fails are skipped (they count as neither better nor worse).
pub fn bootstrap_power_law_gof<R: Rng + ?Sized>(
    model: &DiscretePowerLaw,
    tail: &[f64],
    replicates: usize,
    rng: &mut R,
) -> Result<GoodnessOfFit, FitError> {
    if tail.len() < 2 {
        return Err(FitError::TooFewObservations(tail.len()));
    }
    let observed_ks = ks_statistic_discrete(tail, |x| model.cdf(x));
    let mut worse = 0usize;
    let mut counted = 0usize;
    for _ in 0..replicates {
        let synthetic: Vec<f64> = (0..tail.len())
            .map(|_| sample_discrete_power_law(model, rng) as f64)
            .collect();
        let Ok(refit) = DiscretePowerLaw::fit(&synthetic, model.x_min) else {
            continue;
        };
        let ks = ks_statistic_discrete(&synthetic, |x| refit.cdf(x));
        counted += 1;
        if ks >= observed_ks {
            worse += 1;
        }
    }
    Ok(GoodnessOfFit {
        observed_ks,
        p_value: if counted == 0 {
            0.0
        } else {
            worse as f64 / counted as f64
        },
        replicates: counted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_respects_support_and_tail() {
        let model = DiscretePowerLaw { alpha: 2.5, x_min: 3 };
        let mut rng = SmallRng::seed_from_u64(1);
        let sample: Vec<u64> = (0..5_000)
            .map(|_| sample_discrete_power_law(&model, &mut rng))
            .collect();
        assert!(sample.iter().all(|&x| x >= 3));
        // Empirical mass at x_min should approximate the model pmf.
        let p3 = sample.iter().filter(|&&x| x == 3).count() as f64 / 5_000.0;
        let model_p3 = model.log_pdf(3.0).exp();
        assert!((p3 - model_p3).abs() < 0.03, "{p3} vs {model_p3}");
        // Tail exists.
        assert!(sample.iter().any(|&x| x > 30));
    }

    #[test]
    fn true_power_law_is_plausible() {
        let model = DiscretePowerLaw { alpha: 2.3, x_min: 1 };
        // Seed chosen against the vendored SmallRng stream; the GOF
        // p-value is a statistic of the sampled data, so an unlucky
        // stream can legitimately dip below the plausibility cutoff.
        let mut rng = SmallRng::seed_from_u64(5);
        let data: Vec<f64> = (0..2_000)
            .map(|_| sample_discrete_power_law(&model, &mut rng) as f64)
            .collect();
        let fitted = DiscretePowerLaw::fit(&data, 1).unwrap();
        let gof = bootstrap_power_law_gof(&fitted, &data, 60, &mut rng).unwrap();
        assert!(gof.plausible(), "p = {}", gof.p_value);
        assert!(gof.replicates > 50);
    }

    #[test]
    fn geometric_data_is_rejected() {
        // A light-tailed geometric sample should fail the power-law GOF.
        let mut rng = SmallRng::seed_from_u64(3);
        let data: Vec<f64> = (0..2_000)
            .map(|_| {
                let mut x = 1u64;
                while rng.gen::<f64>() < 0.65 && x < 60 {
                    x += 1;
                }
                x as f64
            })
            .collect();
        let fitted = DiscretePowerLaw::fit(&data, 1).unwrap();
        let gof = bootstrap_power_law_gof(&fitted, &data, 60, &mut rng).unwrap();
        assert!(!gof.plausible(), "p = {}", gof.p_value);
    }

    #[test]
    fn tiny_tail_errors() {
        let model = DiscretePowerLaw { alpha: 2.0, x_min: 1 };
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(bootstrap_power_law_gof(&model, &[1.0], 10, &mut rng).is_err());
    }
}
