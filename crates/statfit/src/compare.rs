//! Vuong-normalised log-likelihood-ratio model comparison (CSN §5).

use crate::models::TailModel;
use crate::special::normal_cdf;

/// Result of comparing two tail models on the same data window.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LlrComparison {
    /// `Σ (ln p_a(x_i) - ln p_b(x_i))`: positive favours model A.
    pub log_likelihood_ratio: f64,
    /// Vuong-normalised statistic `R / (σ √n)`.
    pub z: f64,
    /// Two-sided p-value for "the models are equally good"; small values
    /// make the sign of `log_likelihood_ratio` significant.
    pub p_value: f64,
    /// Number of tail observations compared.
    pub n: usize,
}

impl LlrComparison {
    /// Whether model A is significantly better at the given level.
    pub fn favors_a(&self, significance: f64) -> bool {
        self.log_likelihood_ratio > 0.0 && self.p_value < significance
    }

    /// Whether model B is significantly better at the given level.
    pub fn favors_b(&self, significance: f64) -> bool {
        self.log_likelihood_ratio < 0.0 && self.p_value < significance
    }
}

/// Compares two fitted tail models on `tail` (all values must be `>=` both
/// models' cutoffs; pass the tail the scan selected).
///
/// Returns a zero-signal comparison (`z = 0`, `p = 1`) for degenerate
/// inputs (empty tail or identical pointwise likelihoods).
pub fn compare_models<A: TailModel + ?Sized, B: TailModel + ?Sized>(
    a: &A,
    b: &B,
    tail: &[f64],
) -> LlrComparison {
    let n = tail.len();
    if n == 0 {
        return LlrComparison {
            log_likelihood_ratio: 0.0,
            z: 0.0,
            p_value: 1.0,
            n: 0,
        };
    }
    let diffs: Vec<f64> = tail
        .iter()
        .map(|&x| a.log_pdf(x) - b.log_pdf(x))
        .collect();
    let r: f64 = diffs.iter().sum();
    let mean = r / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return LlrComparison {
            log_likelihood_ratio: r,
            z: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let z = r / (var.sqrt() * (n as f64).sqrt());
    let p_value = 2.0 * (1.0 - normal_cdf(z.abs()));
    LlrComparison {
        log_likelihood_ratio: r,
        z,
        p_value: p_value.clamp(0.0, 1.0),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ExponentialModel, PowerLawModel};

    fn power_law_sample(alpha: f64, x_min: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0))
            })
            .collect()
    }

    #[test]
    fn power_law_data_favours_power_law_over_exponential() {
        let data = power_law_sample(2.2, 1.0, 5_000);
        let pl = PowerLawModel::fit(&data, 1.0, false).unwrap();
        let ex = ExponentialModel::fit(&data, 1.0).unwrap();
        let cmp = compare_models(&pl, &ex, &data);
        assert!(cmp.favors_a(0.05), "llr={} p={}", cmp.log_likelihood_ratio, cmp.p_value);
        assert!(!cmp.favors_b(0.05));
    }

    #[test]
    fn exponential_data_favours_exponential() {
        let n = 5_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                1.0 - (1.0 - u).ln() / 1.5
            })
            .collect();
        let pl = PowerLawModel::fit(&data, 1.0, false).unwrap();
        let ex = ExponentialModel::fit(&data, 1.0).unwrap();
        let cmp = compare_models(&pl, &ex, &data);
        assert!(cmp.favors_b(0.05), "llr={} p={}", cmp.log_likelihood_ratio, cmp.p_value);
    }

    #[test]
    fn identical_models_are_indistinguishable() {
        let data = power_law_sample(2.0, 1.0, 100);
        let pl = PowerLawModel { alpha: 2.0, x_min: 1.0 };
        let cmp = compare_models(&pl, &pl, &data);
        assert_eq!(cmp.log_likelihood_ratio, 0.0);
        assert_eq!(cmp.p_value, 1.0);
        assert!(!cmp.favors_a(0.05) && !cmp.favors_b(0.05));
    }

    #[test]
    fn empty_tail_yields_null_result() {
        let pl = PowerLawModel { alpha: 2.0, x_min: 1.0 };
        let ex = ExponentialModel { lambda: 1.0, x_min: 1.0 };
        let cmp = compare_models(&pl, &ex, &[]);
        assert_eq!(cmp.n, 0);
        assert_eq!(cmp.p_value, 1.0);
    }

    #[test]
    fn comparison_is_antisymmetric() {
        let data = power_law_sample(2.5, 1.0, 500);
        let pl = PowerLawModel::fit(&data, 1.0, false).unwrap();
        let ex = ExponentialModel::fit(&data, 1.0).unwrap();
        let ab = compare_models(&pl, &ex, &data);
        let ba = compare_models(&ex, &pl, &data);
        assert!((ab.log_likelihood_ratio + ba.log_likelihood_ratio).abs() < 1e-9);
        assert!((ab.z + ba.z).abs() < 1e-9);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
    }
}
