//! Heavy-tail distribution fitting following Clauset, Shalizi & Newman
//! (*"Power-law distributions in empirical data"*, SIAM Review 2009).
//!
//! §IV-A.1 of *"Are Circles Communities?"* stresses that "determining a
//! power-law distribution by simply comparing plots is insufficient" and
//! follows the CSN method instead: fit candidate models by maximum
//! likelihood, select the power-law cutoff `x_min` by KS minimisation, and
//! pick between models with a (Vuong-normalised) log-likelihood-ratio test.
//! The paper's finding — Google+ ego-crawl in-degrees are **log-normal**,
//! not power-law — is exactly the output of [`analyze_tail`].
//!
//! ```
//! use circlekit_statfit::{analyze_tail, ModelKind};
//!
//! // A geometric-ish light-tailed sample is *not* a power law.
//! let data: Vec<f64> = (0..2000).map(|i| 1.0 + (i % 13) as f64).collect();
//! let report = analyze_tail(&data).unwrap();
//! assert!(report.power_law.alpha > 1.0);
//! assert!(matches!(
//!     report.best,
//!     ModelKind::Exponential | ModelKind::LogNormal | ModelKind::PowerLaw
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod compare;
mod discrete;
mod models;
mod report;
mod special;
mod xmin;

pub use bootstrap::{bootstrap_power_law_gof, sample_discrete_power_law, GoodnessOfFit};
pub use compare::{compare_models, LlrComparison};
pub use discrete::{hurwitz_zeta, DiscreteExponential, DiscreteLogNormal, DiscretePowerLaw};
pub use models::{ExponentialModel, FitError, LogNormalModel, PowerLawModel, TailModel};
pub use report::{analyze_tail, ModelKind, TailFitReport};
pub use special::{normal_cdf, standard_erf};
pub use xmin::{fit_power_law, ScannedPowerLaw};
