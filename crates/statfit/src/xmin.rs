//! KS-minimising selection of the power-law cutoff `x_min`.

use crate::discrete::DiscretePowerLaw;
use crate::models::{FitError, PowerLawModel, TailModel};
use circlekit_stats::{ks_statistic, ks_statistic_discrete};

/// A power law fitted with CSN's `x_min` scan.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScannedPowerLaw {
    /// Fitted exponent α.
    pub alpha: f64,
    /// Selected cutoff.
    pub x_min: f64,
    /// KS distance between the tail and the fitted model.
    pub ks: f64,
    /// Number of observations in the selected tail.
    pub tail_len: usize,
}

impl ScannedPowerLaw {
    /// The fit as a continuous [`PowerLawModel`] parameter carrier.
    pub fn model(&self) -> PowerLawModel {
        PowerLawModel {
            alpha: self.alpha,
            x_min: self.x_min,
        }
    }
}

/// Fits a power law to `data` by scanning candidate cutoffs and keeping the
/// one whose fitted model minimises the KS distance to the empirical tail
/// (Clauset–Shalizi–Newman §3.3).
///
/// With `discrete` set, integer-valued data is fitted with the
/// zeta-normalised [`DiscretePowerLaw`] (the right choice for degree
/// sequences); otherwise the continuous MLE is used. Non-finite and sub-1
/// values are dropped. Candidates are the distinct data values up to the
/// 90th percentile, thinned to at most 100 scan points.
///
/// # Errors
///
/// [`FitError::NoPositiveData`] if nothing usable remains, or the
/// underlying MLE error if no candidate admits a fit.
pub fn fit_power_law(data: &[f64], discrete: bool) -> Result<ScannedPowerLaw, FitError> {
    let mut values: Vec<f64> = data
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v >= 1.0)
        .map(|v| if discrete { v.round() } else { v })
        .collect();
    if values.is_empty() {
        return Err(FitError::NoPositiveData);
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Candidate cutoffs: distinct values in the lower 90 % of the sample.
    let limit_idx = ((values.len() as f64) * 0.9) as usize;
    let mut candidates: Vec<f64> = values[..limit_idx.max(1)].to_vec();
    candidates.dedup();
    if candidates.len() > 100 {
        let step = candidates.len() as f64 / 100.0;
        candidates = (0..100)
            .map(|i| candidates[(i as f64 * step) as usize])
            .collect();
        candidates.dedup();
    }

    let mut best: Option<ScannedPowerLaw> = None;
    let mut last_err = FitError::NoPositiveData;
    for &x_min in &candidates {
        let start = values.partition_point(|&v| v < x_min);
        let tail = &values[start..];
        let fitted: Result<(f64, f64), FitError> = if discrete {
            DiscretePowerLaw::fit(tail, x_min as u64)
                .map(|m| (m.alpha, ks_statistic_discrete(tail, |x| m.cdf(x))))
        } else {
            PowerLawModel::fit(tail, x_min, false)
                .map(|m| (m.alpha, ks_statistic(tail, |x| m.cdf(x))))
        };
        match fitted {
            Ok((alpha, ks)) => {
                let better = best.map(|b| ks < b.ks).unwrap_or(true);
                if better {
                    best = Some(ScannedPowerLaw {
                        alpha,
                        x_min,
                        ks,
                        tail_len: tail.len(),
                    });
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_law_sample(alpha: f64, x_min: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0))
            })
            .collect()
    }

    #[test]
    fn scan_recovers_alpha_and_low_ks_on_pure_power_law() {
        let data = power_law_sample(2.3, 1.0, 5_000);
        let fit = fit_power_law(&data, false).unwrap();
        assert!((fit.alpha - 2.3).abs() < 0.15, "alpha={}", fit.alpha);
        assert!(fit.ks < 0.02, "ks={}", fit.ks);
        assert!(fit.tail_len > 1_000);
    }

    #[test]
    fn scan_finds_cutoff_on_shifted_power_law() {
        // Uniform noise below 10, power law above.
        let mut data: Vec<f64> = (0..2_000).map(|i| 1.0 + (i % 9) as f64).collect();
        data.extend(power_law_sample(2.5, 10.0, 4_000));
        let fit = fit_power_law(&data, false).unwrap();
        assert!(fit.x_min >= 5.0, "x_min={} too low", fit.x_min);
        assert!((fit.alpha - 2.5).abs() < 0.3, "alpha={}", fit.alpha);
    }

    #[test]
    fn scan_rejects_empty_and_nonpositive() {
        assert!(matches!(fit_power_law(&[], false), Err(FitError::NoPositiveData)));
        assert!(matches!(
            fit_power_law(&[0.1, 0.2, f64::NAN], false),
            Err(FitError::NoPositiveData)
        ));
    }

    #[test]
    fn discrete_scan_fits_integer_power_law_with_low_ks() {
        // Exact discrete power-law sample: the discrete scan should achieve
        // a *small* KS distance (the continuous treatment cannot).
        let model = DiscretePowerLaw { alpha: 2.4, x_min: 1 };
        let n = 6_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                let mut x = 1u64;
                while model.cdf(x as f64) < u && x < 1_000_000 {
                    x += 1;
                }
                x as f64
            })
            .collect();
        let fit = fit_power_law(&data, true).unwrap();
        assert!((fit.alpha - 2.4).abs() < 0.1, "alpha={}", fit.alpha);
        assert!(fit.ks < 0.02, "ks={}", fit.ks);
    }
}
