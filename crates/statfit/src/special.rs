//! Special functions needed by the fitting pipeline.

/// Error function approximation (Abramowitz & Stegun 7.1.26), absolute
/// error below `1.5e-7` — ample for KS distances and p-values.
pub fn standard_erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + standard_erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        assert!((standard_erf(0.0)).abs() < 1e-7);
        assert!((standard_erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((standard_erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((standard_erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in -60..=60 {
            let f = normal_cdf(i as f64 / 10.0);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev - 1e-12);
            prev = f;
        }
    }
}
