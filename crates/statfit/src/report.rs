//! One-call distribution analysis: the full CSN pipeline.

use crate::compare::{compare_models, LlrComparison};
use crate::discrete::{DiscreteExponential, DiscreteLogNormal, DiscretePowerLaw};
use crate::models::{FitError, TailModel};
use crate::xmin::{fit_power_law, ScannedPowerLaw};
use circlekit_stats::ks_statistic_discrete;
use std::fmt;

/// Which model family the pipeline judged best.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelKind {
    /// Power-law tail (`p(x) ∝ x^{-α}`).
    PowerLaw,
    /// Log-normal tail.
    LogNormal,
    /// Exponential tail.
    Exponential,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::PowerLaw => "power-law",
            ModelKind::LogNormal => "log-normal",
            ModelKind::Exponential => "exponential",
        };
        f.write_str(s)
    }
}

/// The full fitting report for one integer-valued sample (e.g. a degree
/// sequence): the CSN tail-scanned power law plus a three-way full-range
/// discrete-model comparison with KS distances and pairwise
/// likelihood-ratio tests. This is the machinery behind the paper's
/// Figure 3 and Table II "degree distribution" rows.
///
/// Two power-law fits are reported deliberately: [`scanned`] is the CSN
/// tail fit (`x_min` chosen by KS minimisation — the α the tables quote),
/// while [`power_law`] is fitted over the full range, which is the fit
/// participating in the family comparison. Comparing families on the
/// scan-selected tail would bias towards the power law: the scan *by
/// construction* finds the window where the data looks most
/// power-law-like.
///
/// [`scanned`]: TailFitReport::scanned
/// [`power_law`]: TailFitReport::power_law
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TailFitReport {
    /// CSN tail fit: `x_min` from the KS scan, α from the tail MLE.
    pub scanned: ScannedPowerLaw,
    /// Full-range discrete power-law fit (used in the family comparison).
    pub power_law: DiscretePowerLaw,
    /// Full-range discretised log-normal fit.
    pub log_normal: DiscreteLogNormal,
    /// Full-range discretised exponential fit.
    pub exponential: DiscreteExponential,
    /// KS distance of each full-range model, in `[power_law, log_normal,
    /// exponential]` order.
    pub ks: [f64; 3],
    /// LLR test power-law vs log-normal (positive favours power law).
    pub pl_vs_ln: LlrComparison,
    /// LLR test power-law vs exponential.
    pub pl_vs_exp: LlrComparison,
    /// LLR test log-normal vs exponential.
    pub ln_vs_exp: LlrComparison,
    /// The judged-best model family.
    pub best: ModelKind,
    /// Number of observations in the full-range comparison window.
    pub tail_len: usize,
}

/// Runs the full fitting pipeline on an integer-valued sample, following
/// the paper's §IV-A.1 method:
///
/// 1. scan `x_min` by KS minimisation and fit the CSN tail power law (the
///    α reported in tables),
/// 2. fit discrete power-law, log-normal and exponential models over the
///    **full range** of the data ("we create models for a power-law,
///    exponential and log-normal distribution and then check which fits
///    best"),
/// 3. compare the three by pairwise likelihood-ratio tests, falling back
///    to the smallest KS distance when the tests are inconclusive.
///
/// Values are rounded to integers; non-finite and sub-1 values are
/// dropped.
///
/// # Errors
///
/// Propagates [`FitError`] when the sample is too small or degenerate for
/// any of the fits.
pub fn analyze_tail(data: &[f64]) -> Result<TailFitReport, FitError> {
    let scanned = fit_power_law(data, true)?;

    let mut full: Vec<f64> = data
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v >= 1.0)
        .map(|v| v.round())
        .collect();
    if full.len() < 2 {
        return Err(FitError::TooFewObservations(full.len()));
    }
    full.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lo = full[0] as u64;

    let power_law = DiscretePowerLaw::fit(&full, lo)?;
    let log_normal = DiscreteLogNormal::fit(&full, lo)?;
    let exponential = DiscreteExponential::fit(&full, lo)?;

    let ks = [
        ks_statistic_discrete(&full, |x| power_law.cdf(x)),
        ks_statistic_discrete(&full, |x| log_normal.cdf(x)),
        ks_statistic_discrete(&full, |x| exponential.cdf(x)),
    ];
    let pl_vs_ln = compare_models(&power_law, &log_normal, &full);
    let pl_vs_exp = compare_models(&power_law, &exponential, &full);
    let ln_vs_exp = compare_models(&log_normal, &exponential, &full);

    let best = judge(ks, pl_vs_ln, pl_vs_exp, ln_vs_exp);

    Ok(TailFitReport {
        scanned,
        power_law,
        log_normal,
        exponential,
        ks,
        pl_vs_ln,
        pl_vs_exp,
        ln_vs_exp,
        best,
        tail_len: full.len(),
    })
}

fn judge(
    ks: [f64; 3],
    pl_vs_ln: LlrComparison,
    pl_vs_exp: LlrComparison,
    ln_vs_exp: LlrComparison,
) -> ModelKind {
    const SIG: f64 = 0.05;
    // Count significant pairwise wins per model.
    let mut wins = [0u8; 3]; // pl, ln, exp
    if pl_vs_ln.favors_a(SIG) {
        wins[0] += 1;
    }
    if pl_vs_ln.favors_b(SIG) {
        wins[1] += 1;
    }
    if pl_vs_exp.favors_a(SIG) {
        wins[0] += 1;
    }
    if pl_vs_exp.favors_b(SIG) {
        wins[2] += 1;
    }
    if ln_vs_exp.favors_a(SIG) {
        wins[1] += 1;
    }
    if ln_vs_exp.favors_b(SIG) {
        wins[2] += 1;
    }
    let max_wins = *wins.iter().max().expect("non-empty");
    let kinds = [ModelKind::PowerLaw, ModelKind::LogNormal, ModelKind::Exponential];
    if max_wins > 0 {
        // Break win ties by KS distance.
        let mut best = None;
        for i in 0..3 {
            if wins[i] == max_wins {
                let better = best
                    .map(|(_, bk): (ModelKind, f64)| ks[i] < bk)
                    .unwrap_or(true);
                if better {
                    best = Some((kinds[i], ks[i]));
                }
            }
        }
        best.expect("at least one winner").0
    } else {
        // No significant separation: smallest KS wins.
        let mut idx = 0;
        for i in 1..3 {
            if ks[i] < ks[idx] {
                idx = i;
            }
        }
        kinds[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverse_normal(u: f64) -> f64 {
        let mut lo = -8.0;
        let mut hi = 8.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if crate::special::normal_cdf(mid) < u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    fn discrete_power_law_sample(alpha: f64, n: usize) -> Vec<f64> {
        let model = DiscretePowerLaw { alpha, x_min: 1 };
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                let mut x = 1u64;
                while model.cdf(x as f64) < u && x < 1 << 30 {
                    x += 1;
                }
                x as f64
            })
            .collect()
    }

    #[test]
    fn pure_power_law_is_identified() {
        let data = discrete_power_law_sample(2.4, 6_000);
        let report = analyze_tail(&data).unwrap();
        assert_eq!(report.best, ModelKind::PowerLaw, "ks={:?}", report.ks);
        assert!((report.power_law.alpha - 2.4).abs() < 0.1);
        assert!(report.ks[0] < 0.02);
    }

    #[test]
    fn lognormal_data_is_identified() {
        let n = 6_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (4.0 + 1.2 * inverse_normal(u)).exp().round().max(1.0)
            })
            .collect();
        let report = analyze_tail(&data).unwrap();
        assert_eq!(report.best, ModelKind::LogNormal, "ks={:?}", report.ks);
    }

    #[test]
    fn exponential_data_is_not_power_law() {
        let n = 6_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (1.0 - (1.0 - u).ln() * 8.0).round()
            })
            .collect();
        let report = analyze_tail(&data).unwrap();
        // Log-normal can mimic an exponential closely; accept either, but
        // the power law must lose.
        assert_ne!(report.best, ModelKind::PowerLaw, "ks={:?}", report.ks);
    }

    #[test]
    fn report_is_internally_consistent() {
        let data: Vec<f64> = (1..=4000).map(|i| ((i % 37) + 1) as f64).collect();
        let report = analyze_tail(&data).unwrap();
        assert!(report.tail_len >= 2);
        assert!(report.ks.iter().all(|k| (0.0..=1.0).contains(k)));
        assert!(report.scanned.tail_len <= report.tail_len);
    }

    #[test]
    fn tiny_samples_error() {
        assert!(analyze_tail(&[1.0]).is_err());
        assert!(analyze_tail(&[]).is_err());
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::PowerLaw.to_string(), "power-law");
        assert_eq!(ModelKind::LogNormal.to_string(), "log-normal");
        assert_eq!(ModelKind::Exponential.to_string(), "exponential");
    }
}
