//! The candidate tail models: power law, log-normal, exponential.
//!
//! All models are *tail-conditional*: they describe the distribution of
//! `X` given `X >= x_min`, which is how the CSN comparison framework pits
//! alternatives against the fitted power law on the same data window.

use crate::special::normal_cdf;
use std::error::Error;
use std::fmt;

/// Error returned when a model cannot be fitted to the supplied tail.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer tail observations than the minimum required (2).
    TooFewObservations(usize),
    /// The tail is degenerate (e.g. all values equal) and the model's MLE
    /// is undefined.
    DegenerateTail,
    /// Input contained no usable (finite, `>= 1`) values.
    NoPositiveData,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewObservations(n) => {
                write!(f, "tail has only {n} observations, need at least 2")
            }
            FitError::DegenerateTail => write!(f, "tail is degenerate, mle undefined"),
            FitError::NoPositiveData => write!(f, "no finite observations >= 1 in input"),
        }
    }
}

impl Error for FitError {}

/// A fitted tail-conditional model: density and CDF for `x >= x_min`.
pub trait TailModel {
    /// Lower cutoff of the modelled tail.
    fn x_min(&self) -> f64;
    /// Natural log of the (conditional) density at `x` (`x >= x_min`).
    fn log_pdf(&self, x: f64) -> f64;
    /// Conditional CDF `P(X <= x | X >= x_min)`.
    fn cdf(&self, x: f64) -> f64;
    /// Short model name for reports.
    fn name(&self) -> &'static str;
}

/// Continuous power law `p(x) ∝ x^{-α}` on `x >= x_min`.
///
/// Fitted with the CSN discrete-data approximation
/// `α = 1 + n / Σ ln(x_i / (x_min - ½))` when `discrete` is set, otherwise
/// the exact continuous MLE with denominator `x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerLawModel {
    /// Scaling exponent `α`.
    pub alpha: f64,
    /// Tail cutoff.
    pub x_min: f64,
}

impl PowerLawModel {
    /// MLE fit on `tail` (every element must be `>= x_min`).
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] for tails shorter than 2, or
    /// [`FitError::DegenerateTail`] when all values equal `x_min` in
    /// continuous mode (the likelihood diverges).
    pub fn fit(tail: &[f64], x_min: f64, discrete: bool) -> Result<PowerLawModel, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let denom = if discrete { (x_min - 0.5).max(f64::MIN_POSITIVE) } else { x_min };
        let log_sum: f64 = tail.iter().map(|&x| (x / denom).ln()).sum();
        if log_sum <= 0.0 {
            return Err(FitError::DegenerateTail);
        }
        Ok(PowerLawModel {
            alpha: 1.0 + tail.len() as f64 / log_sum,
            x_min,
        })
    }
}

impl TailModel for PowerLawModel {
    fn x_min(&self) -> f64 {
        self.x_min
    }

    fn log_pdf(&self, x: f64) -> f64 {
        // p(x) = ((α-1)/x_min) (x/x_min)^{-α}
        ((self.alpha - 1.0) / self.x_min).ln() - self.alpha * (x / self.x_min).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (x / self.x_min).powf(1.0 - self.alpha)
        }
    }

    fn name(&self) -> &'static str {
        "power-law"
    }
}

/// Log-normal tail model, truncated at `x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogNormalModel {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
    /// Tail cutoff.
    pub x_min: f64,
}

impl LogNormalModel {
    /// Fits a truncated log-normal by coordinate-wise golden-section ascent
    /// on the truncated likelihood, seeded with the untruncated MLE.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] or [`FitError::DegenerateTail`]
    /// when `ln x` has zero variance.
    pub fn fit(tail: &[f64], x_min: f64) -> Result<LogNormalModel, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let logs: Vec<f64> = tail.iter().map(|&x| x.ln()).collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
        if var <= 0.0 {
            return Err(FitError::DegenerateTail);
        }
        let mut mu = mean;
        let mut sigma = var.sqrt();

        let ll = |mu: f64, sigma: f64| -> f64 {
            let model = LogNormalModel { mu, sigma, x_min };
            tail.iter().map(|&x| model.log_pdf(x)).sum::<f64>()
        };
        // Coordinate ascent: three rounds of golden-section per parameter.
        for _ in 0..3 {
            mu = golden_max(|m| ll(m, sigma), mu - 3.0 * sigma, mu + 3.0 * sigma);
            sigma = golden_max(|s| ll(mu, s), sigma * 0.2, sigma * 5.0);
        }
        Ok(LogNormalModel { mu, sigma, x_min })
    }

    fn tail_mass(&self) -> f64 {
        // P(X >= x_min) under the untruncated log-normal.
        1.0 - normal_cdf((self.x_min.ln() - self.mu) / self.sigma)
    }
}

impl TailModel for LogNormalModel {
    fn x_min(&self) -> f64 {
        self.x_min
    }

    fn log_pdf(&self, x: f64) -> f64 {
        let z = (x.ln() - self.mu) / self.sigma;
        let base = -(x.ln()) - (self.sigma * (2.0 * std::f64::consts::PI).sqrt()).ln()
            - 0.5 * z * z;
        base - self.tail_mass().max(1e-300).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            return 0.0;
        }
        let lo = normal_cdf((self.x_min.ln() - self.mu) / self.sigma);
        let hi = normal_cdf((x.ln() - self.mu) / self.sigma);
        let mass = (1.0 - lo).max(1e-300);
        ((hi - lo) / mass).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "log-normal"
    }
}

/// Shifted exponential tail model: `p(x) = λ e^{-λ(x - x_min)}`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExponentialModel {
    /// Rate parameter `λ`.
    pub lambda: f64,
    /// Tail cutoff.
    pub x_min: f64,
}

impl ExponentialModel {
    /// Exact MLE: `λ = 1 / (mean(x) - x_min)`.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewObservations`] or [`FitError::DegenerateTail`]
    /// when every value equals `x_min`.
    pub fn fit(tail: &[f64], x_min: f64) -> Result<ExponentialModel, FitError> {
        if tail.len() < 2 {
            return Err(FitError::TooFewObservations(tail.len()));
        }
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        if mean <= x_min {
            return Err(FitError::DegenerateTail);
        }
        Ok(ExponentialModel {
            lambda: 1.0 / (mean - x_min),
            x_min,
        })
    }
}

impl TailModel for ExponentialModel {
    fn x_min(&self) -> f64 {
        self.x_min
    }

    fn log_pdf(&self, x: f64) -> f64 {
        self.lambda.ln() - self.lambda * (x - self.x_min)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (-self.lambda * (x - self.x_min)).exp()
        }
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// Golden-section maximisation of a unimodal-ish function on `[lo, hi]`.
fn golden_max<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..60 {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_law_sample(alpha: f64, x_min: f64, n: usize) -> Vec<f64> {
        // Inverse-CDF sampling with deterministic stratified uniforms.
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0))
            })
            .collect()
    }

    #[test]
    fn power_law_mle_recovers_alpha() {
        let data = power_law_sample(2.5, 1.0, 20_000);
        let fit = PowerLawModel::fit(&data, 1.0, false).unwrap();
        assert!((fit.alpha - 2.5).abs() < 0.05, "alpha = {}", fit.alpha);
    }

    #[test]
    fn power_law_cdf_endpoints() {
        let m = PowerLawModel { alpha: 2.5, x_min: 2.0 };
        assert_eq!(m.cdf(1.0), 0.0);
        assert_eq!(m.cdf(2.0), 0.0);
        assert!(m.cdf(1e9) > 0.999);
    }

    #[test]
    fn power_law_fit_errors() {
        assert!(matches!(
            PowerLawModel::fit(&[2.0], 1.0, false),
            Err(FitError::TooFewObservations(1))
        ));
        assert!(matches!(
            PowerLawModel::fit(&[1.0, 1.0], 1.0, false),
            Err(FitError::DegenerateTail)
        ));
    }

    #[test]
    fn exponential_mle_recovers_lambda() {
        // Stratified exponential sample with lambda = 0.5, x_min = 3.
        let n = 10_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                3.0 - (1.0 - u).ln() / 0.5
            })
            .collect();
        let fit = ExponentialModel::fit(&data, 3.0).unwrap();
        assert!((fit.lambda - 0.5).abs() < 0.01, "lambda = {}", fit.lambda);
    }

    #[test]
    fn lognormal_fit_recovers_parameters_when_untruncated() {
        // x_min below virtually all mass -> truncation is a no-op.
        let n = 5_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                // Inverse normal via binary search on our own normal_cdf.
                let mut lo = -8.0;
                let mut hi = 8.0;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if normal_cdf(mid) < u {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                (2.0 + 0.7 * 0.5 * (lo + hi)).exp()
            })
            .collect();
        let fit = LogNormalModel::fit(&data, 0.5).unwrap();
        assert!((fit.mu - 2.0).abs() < 0.1, "mu = {}", fit.mu);
        assert!((fit.sigma - 0.7).abs() < 0.1, "sigma = {}", fit.sigma);
    }

    #[test]
    fn all_cdfs_monotone() {
        let pl = PowerLawModel { alpha: 2.0, x_min: 1.0 };
        let ln = LogNormalModel { mu: 1.0, sigma: 0.8, x_min: 1.0 };
        let ex = ExponentialModel { lambda: 0.3, x_min: 1.0 };
        let models: [&dyn TailModel; 3] = [&pl, &ln, &ex];
        for m in models {
            let mut prev = -1.0;
            for i in 1..200 {
                let f = m.cdf(i as f64);
                assert!((0.0..=1.0).contains(&f), "{} cdf out of range", m.name());
                assert!(f >= prev, "{} cdf not monotone", m.name());
                prev = f;
            }
        }
    }

    #[test]
    fn golden_max_finds_parabola_peak() {
        let x = golden_max(|x| -(x - 3.7) * (x - 3.7), -10.0, 10.0);
        assert!((x - 3.7).abs() < 1e-6);
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::NoPositiveData.to_string().contains("no finite"));
    }
}
