//! Property tests for the fitting pipeline: model laws must hold for any
//! valid parameters, and the pipeline must never panic on messy data.

use circlekit_statfit::{
    analyze_tail, fit_power_law, hurwitz_zeta, DiscreteExponential, DiscreteLogNormal,
    DiscretePowerLaw, ExponentialModel, LogNormalModel, PowerLawModel, TailModel,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hurwitz_zeta_is_positive_and_decreasing_in_q(s in 1.1f64..6.0, q in 1.0f64..50.0) {
        let z1 = hurwitz_zeta(s, q);
        let z2 = hurwitz_zeta(s, q + 1.0);
        prop_assert!(z1.is_finite() && z1 > 0.0);
        // ζ(s, q) = q^-s + ζ(s, q+1), exactly.
        prop_assert!((z1 - (q.powf(-s) + z2)).abs() < 1e-9 * z1);
    }

    #[test]
    fn discrete_power_law_cdf_laws(alpha in 1.2f64..5.0, x_min in 1u64..20) {
        let m = DiscretePowerLaw { alpha, x_min };
        let mut prev = 0.0;
        for x in x_min..x_min + 200 {
            let f = m.cdf(x as f64);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            // CDF increments match the pmf.
            let pmf = m.log_pdf(x as f64).exp();
            prop_assert!((f - prev - pmf).abs() < 1e-6, "x={x}: {f} {prev} {pmf}");
            prev = f;
        }
        prop_assert_eq!(m.cdf((x_min - 1) as f64), 0.0);
    }

    #[test]
    fn discrete_lognormal_and_exponential_cdfs_monotone(
        mu in -1.0f64..4.0,
        sigma in 0.2f64..2.0,
        lambda in 0.05f64..3.0,
        x_min in 1u64..10,
    ) {
        let ln = DiscreteLogNormal { mu, sigma, x_min };
        let ex = DiscreteExponential { lambda, x_min };
        for m in [&ln as &dyn TailModel, &ex as &dyn TailModel] {
            let mut prev = -1.0;
            for x in x_min..x_min + 100 {
                let f = m.cdf(x as f64);
                prop_assert!((0.0..=1.0).contains(&f), "{}", m.name());
                prop_assert!(f >= prev - 1e-12);
                prev = f;
            }
        }
    }

    #[test]
    fn continuous_models_integrate_consistently(alpha in 1.3f64..4.0, x_min in 1.0f64..10.0) {
        let pl = PowerLawModel { alpha, x_min };
        // CDF at x_min is 0, converges to 1.
        prop_assert!(pl.cdf(x_min).abs() < 1e-12);
        prop_assert!(pl.cdf(x_min * 1e9) > 0.99);
        let ex = ExponentialModel { lambda: alpha, x_min };
        prop_assert!(ex.cdf(x_min).abs() < 1e-12);
        let ln = LogNormalModel { mu: 1.0, sigma: 1.0, x_min };
        prop_assert!(ln.cdf(x_min - 0.1) == 0.0);
    }

    #[test]
    fn analyze_tail_never_panics_on_messy_data(data in prop::collection::vec(-5.0f64..5_000.0, 0..300)) {
        // Any outcome (Ok or Err) is fine; panics and non-finite outputs
        // are not.
        if let Ok(report) = analyze_tail(&data) {
            prop_assert!(report.ks.iter().all(|k| k.is_finite()));
            prop_assert!(report.power_law.alpha.is_finite());
            prop_assert!(report.log_normal.sigma > 0.0);
            prop_assert!(report.exponential.lambda > 0.0);
        }
    }

    #[test]
    fn scan_ks_is_bounded(data in prop::collection::vec(1.0f64..1_000.0, 10..200)) {
        if let Ok(fit) = fit_power_law(&data, true) {
            prop_assert!((0.0..=1.0).contains(&fit.ks));
            prop_assert!(fit.alpha > 1.0);
            prop_assert!(fit.tail_len >= 2);
        }
    }
}
