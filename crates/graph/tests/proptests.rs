//! Property-based tests for the graph substrate invariants.

use circlekit_graph::{
    bfs_distances, connected_components, strongly_connected_components, Direction, Graph,
    GraphBuilder, VertexSet, UNREACHABLE,
};
use proptest::prelude::*;

const MAX_NODE: u32 = 40;

fn edge_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 0..120)
}

proptest! {
    #[test]
    fn undirected_adjacency_is_symmetric(edges in edge_strategy()) {
        let g = Graph::from_edges(false, edges);
        for u in 0..g.node_count() as u32 {
            for &v in g.out_neighbors(u) {
                prop_assert!(g.has_edge(v, u), "edge {u}-{v} not symmetric");
            }
        }
    }

    #[test]
    fn degree_sums_equal_twice_edges(edges in edge_strategy(), directed in any::<bool>()) {
        let g = Graph::from_edges(directed, edges);
        let total: usize = (0..g.node_count() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
        prop_assert_eq!(total, g.total_degree());
    }

    #[test]
    fn edges_iterator_count_matches_edge_count(edges in edge_strategy(), directed in any::<bool>()) {
        let g = Graph::from_edges(directed, edges);
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn adjacency_lists_sorted_unique(edges in edge_strategy(), directed in any::<bool>()) {
        let g = Graph::from_edges(directed, edges);
        for v in 0..g.node_count() as u32 {
            let list = g.out_neighbors(v);
            prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
            let list = g.in_neighbors(v);
            prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn in_out_degree_totals_agree(edges in edge_strategy()) {
        let g = Graph::from_edges(true, edges);
        let out: usize = (0..g.node_count() as u32).map(|v| g.out_degree(v)).sum();
        let inn: usize = (0..g.node_count() as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, inn);
        prop_assert_eq!(out, g.edge_count());
    }

    #[test]
    fn to_undirected_then_bidirected_is_supergraph_of_undirected_view(edges in edge_strategy()) {
        let g = Graph::from_edges(true, edges);
        let u = g.to_undirected();
        // Every original arc must survive as an undirected edge.
        for (a, b) in g.edges() {
            prop_assert!(u.has_edge(a, b));
        }
        // And the bidirected expansion restores both orientations.
        let d = u.to_bidirected();
        prop_assert_eq!(d.edge_count(), 2 * u.edge_count());
    }

    #[test]
    fn components_partition_and_are_bfs_consistent(edges in edge_strategy()) {
        let g = Graph::from_edges(false, edges);
        if g.node_count() == 0 {
            return Ok(());
        }
        let cc = connected_components(&g);
        prop_assert_eq!(cc.sizes().iter().sum::<usize>(), g.node_count());
        // BFS from node 0 reaches exactly the nodes sharing its label.
        let dist = bfs_distances(&g, 0, Direction::Both);
        for v in 0..g.node_count() as u32 {
            let same = cc.label(v) == cc.label(0);
            prop_assert_eq!(same, dist[v as usize] != UNREACHABLE);
        }
    }

    #[test]
    fn subgraph_edge_endpoints_stay_inside(edges in edge_strategy(), picks in prop::collection::vec(0..MAX_NODE, 0..20)) {
        let mut b = GraphBuilder::undirected();
        b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
        let g = b.build();
        let set = VertexSet::from_vec(picks);
        let sub = g.subgraph(&set).unwrap();
        prop_assert_eq!(sub.graph().node_count(), set.len());
        for (u, v) in sub.graph().edges() {
            let (pu, pv) = (sub.to_parent(u), sub.to_parent(v));
            prop_assert!(set.contains(pu) && set.contains(pv));
            prop_assert!(g.has_edge(pu, pv));
        }
    }

    #[test]
    fn subgraph_preserves_internal_edge_count(edges in edge_strategy(), picks in prop::collection::vec(0..MAX_NODE, 0..20)) {
        let mut b = GraphBuilder::undirected();
        b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
        let g = b.build();
        let set = VertexSet::from_vec(picks);
        // Count internal edges in the parent graph directly.
        let internal = g
            .edges()
            .filter(|&(u, v)| set.contains(u) && set.contains(v))
            .count();
        let sub = g.subgraph(&set).unwrap();
        prop_assert_eq!(sub.graph().edge_count(), internal);
    }

    #[test]
    fn vertex_set_algebra_laws(a in prop::collection::vec(0..MAX_NODE, 0..30), b in prop::collection::vec(0..MAX_NODE, 0..30)) {
        let a = VertexSet::from_vec(a);
        let b = VertexSet::from_vec(b);
        let union = a.union(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        prop_assert_eq!(a.overlaps(&b), !inter.is_empty());
        // Difference + intersection reassembles the original.
        let diff = a.difference(&b);
        prop_assert_eq!(diff.union(&inter), a.clone());
        // Jaccard is within [0, 1] and symmetric.
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, b.jaccard(&a));
    }

    #[test]
    fn bfs_distances_are_metric_steps(edges in edge_strategy()) {
        let g = Graph::from_edges(false, edges);
        if g.node_count() == 0 {
            return Ok(());
        }
        let dist = bfs_distances(&g, 0, Direction::Both);
        // Adjacent nodes differ by at most one hop.
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    #[test]
    fn reciprocity_in_unit_interval(edges in edge_strategy()) {
        let g = Graph::from_edges(true, edges);
        let r = g.reciprocity();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn scc_refines_weak_components(edges in edge_strategy()) {
        let g = Graph::from_edges(true, edges);
        if g.node_count() == 0 {
            return Ok(());
        }
        let scc = strongly_connected_components(&g);
        let weak = connected_components(&g);
        // Nodes in the same SCC are necessarily weakly connected.
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                if scc.label(u) == scc.label(v) {
                    prop_assert_eq!(weak.label(u), weak.label(v));
                }
            }
        }
        prop_assert!(scc.component_count() >= weak.component_count());
        prop_assert_eq!(scc.sizes().iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn scc_members_are_mutually_reachable(edges in edge_strategy()) {
        let g = Graph::from_edges(true, edges);
        if g.node_count() == 0 {
            return Ok(());
        }
        let scc = strongly_connected_components(&g);
        // Spot check: within each component, node A reaches node B via
        // out-edges (verify for the first component pair found).
        for u in 0..g.node_count() as u32 {
            let dist = bfs_distances(&g, u, Direction::Out);
            for v in 0..g.node_count() as u32 {
                if scc.label(u) == scc.label(v) {
                    prop_assert!(dist[v as usize] != UNREACHABLE,
                        "{u} cannot reach same-SCC node {v}");
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_preserves_graph(edges in edge_strategy(), directed in any::<bool>()) {
        let g = Graph::from_edges(directed, edges);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }
}
