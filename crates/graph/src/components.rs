//! Connected components (weak components for directed graphs).

use crate::{Direction, Graph, NodeId, VertexSet};

/// Component labelling of a graph.
///
/// Produced by [`connected_components`]; for directed graphs the components
/// are *weakly* connected (edge orientation ignored), which matches the
/// paper's treatment of the joint ego-network graph as "a large connected
/// component".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    count: usize,
}

impl ComponentLabels {
    /// Component id of node `v`, in `0..component_count()`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()` of the labelled graph.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// All component labels, indexed by node.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The members of component `id`.
    pub fn members(&self, id: u32) -> VertexSet {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == id)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Id of the largest component (ties broken by lowest id); `None` for an
    /// empty graph.
    pub fn largest(&self) -> Option<u32> {
        self.sizes()
            .iter()
            .enumerate()
            .max_by_key(|&(id, &s)| (s, std::cmp::Reverse(id)))
            .map(|(id, _)| id as u32)
    }
}

/// Labels the (weakly) connected components of `graph` via repeated BFS.
///
/// ```
/// use circlekit_graph::{connected_components, Graph};
/// let g = Graph::from_edges(false, [(0u32, 1u32), (2, 3)]);
/// let cc = connected_components(&g);
/// assert_eq!(cc.component_count(), 2);
/// assert_eq!(cc.label(0), cc.label(1));
/// assert_ne!(cc.label(0), cc.label(2));
/// ```
pub fn connected_components(graph: &Graph) -> ComponentLabels {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for v in graph.neighbors(u, Direction::Both) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    ComponentLabels {
        labels,
        count: count as usize,
    }
}

/// Convenience: the vertex set of the largest (weakly) connected component.
///
/// Returns an empty set for an empty graph.
pub fn largest_component(graph: &Graph) -> VertexSet {
    let cc = connected_components(graph);
    match cc.largest() {
        Some(id) => cc.members(id),
        None => VertexSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 1);
        assert_eq!(cc.sizes(), vec![3]);
    }

    #[test]
    fn directed_components_are_weak() {
        // 0 -> 1, 2 -> 1: weakly one component despite no directed path 0->2.
        let g = Graph::from_edges(true, [(0u32, 1u32), (2, 1)]);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 1);
    }

    #[test]
    fn isolated_nodes_form_singletons() {
        let mut b = crate::GraphBuilder::undirected();
        b.add_edge(0, 1).reserve_nodes(4);
        let cc = connected_components(&b.build());
        assert_eq!(cc.component_count(), 3);
        assert_eq!(cc.sizes().iter().sum::<usize>(), 4);
    }

    #[test]
    fn largest_component_members() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (5, 6)]);
        let big = largest_component(&g);
        assert_eq!(big.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn members_partition_nodes() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (2, 3), (4, 5)]);
        let cc = connected_components(&g);
        let total: usize = (0..cc.component_count() as u32)
            .map(|id| cc.members(id).len())
            .sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = crate::GraphBuilder::undirected().build();
        let cc = connected_components(&g);
        assert_eq!(cc.component_count(), 0);
        assert_eq!(cc.largest(), None);
        assert!(largest_component(&g).is_empty());
    }
}
