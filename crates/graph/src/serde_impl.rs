//! Serde support for [`Graph`]: serialised as directedness, node count,
//! and the canonical edge list, rebuilt through the validating builder on
//! deserialisation.

#![cfg(feature = "serde")]

use crate::{Graph, GraphBuilder, NodeId};
use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, SerializeStruct, Serializer};

impl Serialize for Graph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Graph", 3)?;
        s.serialize_field("directed", &self.is_directed())?;
        s.serialize_field("node_count", &self.node_count())?;
        let edges: Vec<(NodeId, NodeId)> = self.edges().collect();
        s.serialize_field("edges", &edges)?;
        s.end()
    }
}

#[derive(serde::Deserialize)]
struct GraphRepr {
    directed: bool,
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Graph, D::Error> {
        let repr = GraphRepr::deserialize(deserializer)?;
        if let Some(&(u, v)) = repr
            .edges
            .iter()
            .find(|&&(u, v)| u as usize >= repr.node_count || v as usize >= repr.node_count)
        {
            return Err(serde::de::Error::custom(format!(
                "edge ({u}, {v}) exceeds node count {}",
                repr.node_count
            )));
        }
        let mut b = if repr.directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        b.reserve_nodes(repr.node_count);
        b.add_edges(repr.edges);
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Graph, GraphBuilder};

    #[test]
    fn roundtrip_directed() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_undirected_with_isolated_nodes() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(0, 1).reserve_nodes(5);
        let g = b.build();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.node_count(), 5);
    }

    #[test]
    fn deserialization_rejects_out_of_range_edges() {
        let bad = r#"{"directed": false, "node_count": 2, "edges": [[0, 7]]}"#;
        let err = serde_json::from_str::<Graph>(bad).unwrap_err();
        assert!(err.to_string().contains("exceeds node count"), "{err}");
    }

    #[test]
    fn json_shape_is_stable() {
        let g = Graph::from_edges(false, [(1u32, 0u32)]);
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(
            json,
            r#"{"directed":false,"node_count":2,"edges":[[0,1]]}"#
        );
    }
}
