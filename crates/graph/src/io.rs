//! Plain-text edge-list I/O (SNAP-compatible format).
//!
//! Lines are `u<sep>v` with whitespace separators; `#`-prefixed lines are
//! comments. This is the format of the SNAP data sets the paper uses.
//!
//! Two parsing regimes: the strict [`parse_edge_list`] /
//! [`read_edge_list`] abort on the first malformed line, while
//! [`parse_edge_list_lenient`] / [`read_edge_list_lenient`] skip bad
//! lines and account for them in an [`IngestReport`] — the mode real
//! crawled dumps (truncated tails, CRLF endings, stray tokens) need.
//! [`parse_edge_list_with_policy`] selects a regime by [`IngestPolicy`].

use crate::error::{ParseEdgeListError, ParseEdgeListReason};
use crate::ingest::{IngestPolicy, IngestReport, LineIssue};
use crate::{Graph, NodeId};
use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Parses one edge-list line. `Ok(None)` for blank/comment lines.
///
/// Exposed so streaming consumers (e.g. the external-sort snapshot
/// packer in `circlekit-store`) can apply the exact same grammar one
/// line at a time without materialising an edge vector.
///
/// # Errors
///
/// The [`ParseEdgeListReason`] describing why the line is malformed.
pub fn parse_edge_line(line: &str) -> Result<Option<(NodeId, NodeId)>, ParseEdgeListReason> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let (Some(a), Some(b), None) = (fields.next(), fields.next(), fields.next()) else {
        let n = line.split_whitespace().count();
        return Err(ParseEdgeListReason::WrongFieldCount(n));
    };
    let parse = |s: &str| {
        s.parse::<NodeId>()
            .map_err(|_| ParseEdgeListReason::InvalidNodeId(s.to_string()))
    };
    Ok(Some((parse(a)?, parse(b)?)))
}

/// Parses a whitespace-separated edge list from a string.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on a malformed line, reporting its 1-based
/// line number.
///
/// ```
/// use circlekit_graph::parse_edge_list;
/// let edges = parse_edge_list("# a comment\n0 1\n1\t2\n")?;
/// assert_eq!(edges, vec![(0, 1), (1, 2)]);
/// # Ok::<(), circlekit_graph::ParseEdgeListError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Vec<(NodeId, NodeId)>, ParseEdgeListError> {
    let mut edges = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        match parse_edge_line(line) {
            Ok(Some(edge)) => edges.push(edge),
            Ok(None) => {}
            Err(reason) => return Err(ParseEdgeListError { line: idx + 1, reason }),
        }
    }
    Ok(edges)
}

/// Parses a whitespace-separated edge list, skipping malformed lines and
/// recording every skip (and duplicate edge occurrence) in the returned
/// [`IngestReport`].
///
/// Never fails: a fully garbled input yields an empty edge list and a
/// report with one [`LineIssue`] per line.
///
/// ```
/// use circlekit_graph::parse_edge_list_lenient;
/// let (edges, report) = parse_edge_list_lenient("0 1\nbogus\n1 2\n0 1\n");
/// assert_eq!(edges, vec![(0, 1), (1, 2), (0, 1)]);
/// assert_eq!(report.skipped.len(), 1);
/// assert_eq!(report.skipped[0].line, 2);
/// assert_eq!(report.duplicate_edges, 1);
/// ```
pub fn parse_edge_list_lenient(text: &str) -> (Vec<(NodeId, NodeId)>, IngestReport) {
    let mut edges = Vec::new();
    let mut report = IngestReport::default();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    for (idx, line) in text.lines().enumerate() {
        report.lines = idx + 1;
        match parse_edge_line(line) {
            Ok(Some(edge)) => {
                if !seen.insert(edge) {
                    report.duplicate_edges += 1;
                }
                edges.push(edge);
            }
            Ok(None) => {}
            Err(reason) => report.skipped.push(LineIssue { line: idx + 1, reason }),
        }
    }
    report.records = edges.len();
    (edges, report)
}

/// Parses an edge list under the given [`IngestPolicy`].
///
/// * [`IngestPolicy::FailFast`] — abort on the first malformed line
///   (equivalent to [`parse_edge_list`]; the report is only filled up to
///   the failure).
/// * [`IngestPolicy::Strict`] — scan everything, then fail with the first
///   issue if any line was malformed.
/// * [`IngestPolicy::Lenient`] — never fail; skip and report.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] as described per policy.
pub fn parse_edge_list_with_policy(
    text: &str,
    policy: IngestPolicy,
) -> Result<(Vec<(NodeId, NodeId)>, IngestReport), ParseEdgeListError> {
    match policy {
        IngestPolicy::FailFast => {
            let edges = parse_edge_list(text)?;
            let report = IngestReport {
                lines: text.lines().count(),
                records: edges.len(),
                ..Default::default()
            };
            Ok((edges, report))
        }
        IngestPolicy::Strict | IngestPolicy::Lenient => {
            let (edges, report) = parse_edge_list_lenient(text);
            if policy == IngestPolicy::Strict {
                if let Some(issue) = report.first_issue() {
                    return Err(ParseEdgeListError {
                        line: issue.line,
                        reason: issue.reason.clone(),
                    });
                }
            }
            Ok((edges, report))
        }
    }
}

/// Reads an edge list from any [`Read`] implementation (a `&mut` reference
/// works too), streaming line by line — a multi-gigabyte SNAP dump is
/// never buffered whole in memory.
///
/// # Errors
///
/// Returns an [`io::Error`] on read failure; parse failures are wrapped as
/// [`io::ErrorKind::InvalidData`].
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<Vec<(NodeId, NodeId)>> {
    let mut edges = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        match parse_edge_line(&line?) {
            Ok(Some(edge)) => edges.push(edge),
            Ok(None) => {}
            Err(reason) => {
                let e = ParseEdgeListError { line: idx + 1, reason };
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        }
    }
    Ok(edges)
}

/// Streaming counterpart of [`parse_edge_list_lenient`]: reads line by
/// line from any [`Read`] implementation, skipping malformed lines into
/// the report.
///
/// # Errors
///
/// Returns an [`io::Error`] only on read failure — parse problems are
/// reported, never fatal.
pub fn read_edge_list_lenient<R: Read>(
    reader: R,
) -> io::Result<(Vec<(NodeId, NodeId)>, IngestReport)> {
    let mut edges = Vec::new();
    let mut report = IngestReport::default();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        report.lines = idx + 1;
        match parse_edge_line(&line?) {
            Ok(Some(edge)) => {
                if !seen.insert(edge) {
                    report.duplicate_edges += 1;
                }
                edges.push(edge);
            }
            Ok(None) => {}
            Err(reason) => report.skipped.push(LineIssue { line: idx + 1, reason }),
        }
    }
    report.records = edges.len();
    Ok((edges, report))
}

/// Writes a graph's edges as a plain-text edge list (one `u v` pair per
/// line, preceded by a `#` header with counts).
///
/// # Errors
///
/// Returns any [`io::Error`] from the underlying writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# {} nodes={} edges={}",
        if graph.is_directed() { "directed" } else { "undirected" },
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

impl Graph {
    /// Parses a graph from an edge-list string; see [`parse_edge_list`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseEdgeListError`] on a malformed line.
    pub fn from_edge_list_str(directed: bool, text: &str) -> Result<Graph, ParseEdgeListError> {
        Ok(Graph::from_edges(directed, parse_edge_list(text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_edge_list() {
        let edges = parse_edge_list("0 1\n2 3\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let edges = parse_edge_list("# header\n\n0 1\n   \n# foot\n").unwrap();
        assert_eq!(edges, vec![(0, 1)]);
    }

    #[test]
    fn parse_accepts_tabs_and_runs_of_spaces() {
        let edges = parse_edge_list("0\t1\n2   3\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn parse_accepts_crlf_line_endings() {
        let edges = parse_edge_list("0 1\r\n1\t2\r\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_edge_list("0 1\n0 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_edge_list("0 x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("invalid node id"));
    }

    #[test]
    fn lenient_parse_skips_and_reports() {
        let (edges, report) =
            parse_edge_list_lenient("0 1\n0 1 2\n# fine\nnope\n1 2\n");
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
        assert_eq!(report.lines, 5);
        assert_eq!(report.records, 2);
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(report.skipped[0].line, 2);
        assert_eq!(
            report.skipped[0].reason,
            ParseEdgeListReason::WrongFieldCount(3)
        );
        assert_eq!(report.skipped[1].line, 4);
        assert!(!report.is_clean());
    }

    #[test]
    fn lenient_parse_counts_duplicates() {
        let (edges, report) = parse_edge_list_lenient("0 1\n0 1\n1 0\n0 1\n");
        assert_eq!(edges.len(), 4); // kept; the builder collapses them
        assert_eq!(report.duplicate_edges, 2); // (1,0) is a distinct pair
    }

    #[test]
    fn policy_failfast_matches_strict_parser() {
        let err = parse_edge_list_with_policy("0 1\nbad\n", IngestPolicy::FailFast).unwrap_err();
        assert_eq!(err.line, 2);
        let (edges, report) =
            parse_edge_list_with_policy("0 1\n1 2\n", IngestPolicy::FailFast).unwrap();
        assert_eq!(edges.len(), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn policy_strict_scans_then_fails_with_first_issue() {
        let err = parse_edge_list_with_policy("0 1\nbad\nworse 1 2\n", IngestPolicy::Strict)
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.reason, ParseEdgeListReason::WrongFieldCount(1));
    }

    #[test]
    fn policy_lenient_never_fails() {
        let (edges, report) =
            parse_edge_list_with_policy("only garbage\n", IngestPolicy::Lenient).unwrap();
        assert!(edges.is_empty());
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = Graph::from_edge_list_str(true, std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_edge_list_from_reader() {
        let data = b"0 1\n1 2\n" as &[u8];
        let edges = read_edge_list(data).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn read_edge_list_handles_missing_trailing_newline() {
        let data = b"0 1\n1 2" as &[u8];
        let edges = read_edge_list(data).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn read_edge_list_surfaces_parse_error_as_invalid_data() {
        let data = b"bogus\n" as &[u8];
        let err = read_edge_list(data).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_edge_list_lenient_reports_truncated_tail() {
        // A dump truncated mid-line: the final line has one field.
        let data = b"0 1\n1 2\n2" as &[u8];
        let (edges, report) = read_edge_list_lenient(data).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].line, 3);
        assert_eq!(
            report.skipped[0].reason,
            ParseEdgeListReason::WrongFieldCount(1)
        );
    }
}
