//! Plain-text edge-list I/O (SNAP-compatible format).
//!
//! Lines are `u<sep>v` with whitespace separators; `#`-prefixed lines are
//! comments. This is the format of the SNAP data sets the paper uses.

use crate::error::{ParseEdgeListError, ParseEdgeListReason};
use crate::{Graph, NodeId};
use std::io::{self, BufReader, Read, Write};

/// Parses a whitespace-separated edge list from a string.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on a malformed line, reporting its 1-based
/// line number.
///
/// ```
/// use circlekit_graph::parse_edge_list;
/// let edges = parse_edge_list("# a comment\n0 1\n1\t2\n")?;
/// assert_eq!(edges, vec![(0, 1), (1, 2)]);
/// # Ok::<(), circlekit_graph::ParseEdgeListError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Vec<(NodeId, NodeId)>, ParseEdgeListError> {
    let mut edges = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 {
            return Err(ParseEdgeListError {
                line: idx + 1,
                reason: ParseEdgeListReason::WrongFieldCount(fields.len()),
            });
        }
        let parse = |s: &str| {
            s.parse::<NodeId>().map_err(|_| ParseEdgeListError {
                line: idx + 1,
                reason: ParseEdgeListReason::InvalidNodeId(s.to_string()),
            })
        };
        edges.push((parse(fields[0])?, parse(fields[1])?));
    }
    Ok(edges)
}

/// Reads an edge list from any [`Read`] implementation (a `&mut` reference
/// works too).
///
/// # Errors
///
/// Returns an [`io::Error`] on read failure; parse failures are wrapped as
/// [`io::ErrorKind::InvalidData`].
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<Vec<(NodeId, NodeId)>> {
    let mut text = String::new();
    BufReader::new(reader).read_to_string(&mut text)?;
    parse_edge_list(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes a graph's edges as a plain-text edge list (one `u v` pair per
/// line, preceded by a `#` header with counts).
///
/// # Errors
///
/// Returns any [`io::Error`] from the underlying writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# {} nodes={} edges={}",
        if graph.is_directed() { "directed" } else { "undirected" },
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

impl Graph {
    /// Parses a graph from an edge-list string; see [`parse_edge_list`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseEdgeListError`] on a malformed line.
    pub fn from_edge_list_str(directed: bool, text: &str) -> Result<Graph, ParseEdgeListError> {
        Ok(Graph::from_edges(directed, parse_edge_list(text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_edge_list() {
        let edges = parse_edge_list("0 1\n2 3\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let edges = parse_edge_list("# header\n\n0 1\n   \n# foot\n").unwrap();
        assert_eq!(edges, vec![(0, 1)]);
    }

    #[test]
    fn parse_accepts_tabs_and_runs_of_spaces() {
        let edges = parse_edge_list("0\t1\n2   3\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_edge_list("0 1\n0 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_edge_list("0 x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("invalid node id"));
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = Graph::from_edge_list_str(true, std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_edge_list_from_reader() {
        let data = b"0 1\n1 2\n" as &[u8];
        let edges = read_edge_list(data).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn read_edge_list_surfaces_parse_error_as_invalid_data() {
        let data = b"bogus\n" as &[u8];
        let err = read_edge_list(data).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
