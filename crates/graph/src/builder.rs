//! Incremental construction of [`Graph`] values.

use crate::csr::Csr;
use crate::{Graph, NodeId};

/// Builder for [`Graph`]; collects edges and finalises a CSR representation.
///
/// Duplicate edges are collapsed and self-loops dropped by default. The node
/// count is inferred from the largest endpoint, and can be raised with
/// [`GraphBuilder::reserve_nodes`] to include trailing isolated nodes.
///
/// ```
/// use circlekit_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::undirected();
/// b.add_edge(0, 1).add_edge(1, 2);
/// b.reserve_nodes(5); // nodes 3 and 4 exist but are isolated
/// let g = b.build();
/// assert_eq!(g.node_count(), 5);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    directed: bool,
    keep_self_loops: bool,
    min_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a directed graph.
    pub fn directed() -> GraphBuilder {
        GraphBuilder::new(true)
    }

    /// Creates a builder for an undirected graph.
    pub fn undirected() -> GraphBuilder {
        GraphBuilder::new(false)
    }

    fn new(directed: bool) -> GraphBuilder {
        GraphBuilder {
            directed,
            keep_self_loops: false,
            min_nodes: 0,
            edges: Vec::new(),
        }
    }

    /// Adds the edge `u -> v` (or `{u, v}` when undirected).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut GraphBuilder {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator.
    pub fn add_edges<I>(&mut self, edges: I) -> &mut GraphBuilder
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        self.edges.extend(edges);
        self
    }

    /// Ensures the built graph has at least `n` nodes, even if the trailing
    /// ones are isolated.
    pub fn reserve_nodes(&mut self, n: usize) -> &mut GraphBuilder {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Keeps self-loops instead of dropping them (the default drops them, as
    /// social-graph relations are irreflexive).
    pub fn keep_self_loops(&mut self, keep: bool) -> &mut GraphBuilder {
        self.keep_self_loops = keep;
        self
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the graph.
    pub fn build(&self) -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(u, v)| self.keep_self_loops || u != v)
            .map(|(u, v)| {
                if !self.directed && u > v {
                    (v, u)
                } else {
                    (u, v)
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();

        let max_node = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let n = max_node.max(self.min_nodes);
        let m = edges.len();

        if self.directed {
            let out = Csr::from_edges(n, &edges);
            let reversed: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v)| (v, u)).collect();
            let inn = Csr::from_edges(n, &reversed);
            Graph::from_parts(true, out, Some(inn), m)
        } else {
            let mut sym = Vec::with_capacity(edges.len() * 2);
            for &(u, v) in &edges {
                sym.push((u, v));
                if u != v {
                    sym.push((v, u));
                }
            }
            let out = Csr::from_edges(n, &sym);
            Graph::from_parts(false, out, None, m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_normalises_undirected() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(3, 1).add_edge(1, 3).add_edge(3, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 4);
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(3, 1));
    }

    #[test]
    fn builder_keeps_directed_orientation() {
        let mut b = GraphBuilder::directed();
        b.add_edge(3, 1).add_edge(1, 3);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(3, 1));
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn self_loops_dropped_unless_kept() {
        let mut b = GraphBuilder::directed();
        b.add_edge(0, 0).add_edge(0, 1);
        assert_eq!(b.build().edge_count(), 1);

        let mut b = GraphBuilder::directed();
        b.keep_self_loops(true).add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn reserve_nodes_adds_isolated_nodes() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(0, 1).reserve_nodes(10);
        let g = b.build();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::directed().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::undirected();
        b.add_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.pending_edge_count(), 3);
        assert_eq!(b.build().edge_count(), 3);
    }
}
