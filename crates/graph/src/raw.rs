//! Raw CSR access: exporting a [`Graph`]'s internal arrays and rebuilding
//! a graph from externally stored arrays.
//!
//! This is the substrate of the binary snapshot store (`circlekit-store`):
//! packing a graph serialises exactly these slices, and loading rebuilds
//! the graph through [`Graph::try_from_csr_parts`], which re-validates
//! every structural invariant so a corrupted or hand-crafted file can
//! never produce a graph that violates the guarantees the rest of the
//! workspace relies on (sorted duplicate-free adjacency, in-range
//! targets, consistent edge count).

use crate::csr::Csr;
use crate::{Graph, GraphError, NodeId};

/// Checks the CSR invariants over one adjacency structure and returns the
/// number of self-loop arcs (`v ∈ adj(v)`), which undirected edge
/// accounting needs.
fn validate_csr(name: &str, offsets: &[usize], targets: &[NodeId]) -> Result<usize, GraphError> {
    let bad = |why: String| Err(GraphError::InvalidCsr(why));
    if offsets.is_empty() {
        return bad(format!("{name}: offsets array is empty"));
    }
    if offsets[0] != 0 {
        return bad(format!("{name}: offsets[0] is {}, expected 0", offsets[0]));
    }
    if *offsets.last().expect("non-empty") != targets.len() {
        return bad(format!(
            "{name}: final offset {} does not match target count {}",
            offsets.last().expect("non-empty"),
            targets.len()
        ));
    }
    // Monotonicity must hold everywhere before any slicing: a decreasing
    // pair after an inflated offset would otherwise index past `targets`.
    if let Some(v) = (0..offsets.len() - 1).find(|&v| offsets[v] > offsets[v + 1]) {
        return bad(format!("{name}: offsets decrease at node {v}"));
    }
    let n = offsets.len() - 1;
    let mut self_loops = 0usize;
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        let mut prev: Option<NodeId> = None;
        for &t in &targets[start..end] {
            if t as usize >= n {
                return bad(format!(
                    "{name}: node {v} has neighbour {t} outside 0..{n}"
                ));
            }
            if prev.is_some_and(|p| p >= t) {
                return bad(format!(
                    "{name}: adjacency of node {v} is not sorted/duplicate-free"
                ));
            }
            if t as usize == v {
                self_loops += 1;
            }
            prev = Some(t);
        }
    }
    Ok(self_loops)
}

impl Graph {
    /// The raw out-adjacency CSR parts `(offsets, targets)`: the
    /// neighbours of `v` are `targets[offsets[v]..offsets[v + 1]]`,
    /// sorted ascending and duplicate-free. For an undirected graph this
    /// is the symmetric adjacency (each edge appears in both endpoint
    /// lists).
    pub fn out_csr(&self) -> (&[usize], &[NodeId]) {
        (self.out().offsets(), self.out().targets())
    }

    /// The raw in-adjacency CSR parts; `None` for undirected graphs
    /// (whose single adjacency is already symmetric).
    pub fn in_csr(&self) -> Option<(&[usize], &[NodeId])> {
        self.inn().map(|c| (c.offsets(), c.targets()))
    }

    /// Rebuilds a graph from raw CSR parts, re-validating every
    /// structural invariant.
    ///
    /// `edge_count` is the graph's `m` (arcs for directed graphs,
    /// undirected edges otherwise — the [`Graph::edge_count`]
    /// convention). `in_parts` must be `Some` exactly when `directed`.
    ///
    /// The parts must describe a graph that [`GraphBuilder`]
    /// (crate::GraphBuilder) could have produced; a graph exported with
    /// [`Graph::out_csr`] / [`Graph::in_csr`] round-trips bit-identically:
    ///
    /// ```
    /// use circlekit_graph::Graph;
    /// let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
    /// let (oo, ot) = g.out_csr();
    /// let (io, it) = g.in_csr().expect("directed");
    /// let back = Graph::try_from_csr_parts(
    ///     true,
    ///     g.edge_count(),
    ///     oo.to_vec(),
    ///     ot.to_vec(),
    ///     Some((io.to_vec(), it.to_vec())),
    /// )
    /// .expect("valid parts");
    /// assert_eq!(g, back);
    /// ```
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidCsr`] when any invariant fails: non-monotone
    /// or mis-terminated offsets, unsorted or duplicated adjacency,
    /// out-of-range targets, a missing/superfluous in-adjacency, or an
    /// `edge_count` inconsistent with the arrays.
    pub fn try_from_csr_parts(
        directed: bool,
        edge_count: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_parts: Option<(Vec<usize>, Vec<NodeId>)>,
    ) -> Result<Graph, GraphError> {
        let bad = |why: String| Err(GraphError::InvalidCsr(why));
        if directed != in_parts.is_some() {
            return bad(match directed {
                true => "directed graph requires in-adjacency parts".to_string(),
                false => "undirected graph must not carry in-adjacency parts".to_string(),
            });
        }
        let self_loops = validate_csr("out-adjacency", &out_offsets, &out_targets)?;
        if directed {
            let (in_offsets, in_targets) = in_parts.expect("checked above");
            validate_csr("in-adjacency", &in_offsets, &in_targets)?;
            if in_offsets.len() != out_offsets.len() {
                return bad(format!(
                    "in-adjacency describes {} nodes, out-adjacency {}",
                    in_offsets.len() - 1,
                    out_offsets.len() - 1
                ));
            }
            if in_targets.len() != out_targets.len() {
                return bad(format!(
                    "in-adjacency has {} arcs, out-adjacency {}",
                    in_targets.len(),
                    out_targets.len()
                ));
            }
            if edge_count != out_targets.len() {
                return bad(format!(
                    "edge count {edge_count} does not match {} arcs",
                    out_targets.len()
                ));
            }
            let out = Csr::from_raw_parts(out_offsets, out_targets);
            let inn = Csr::from_raw_parts(in_offsets, in_targets);
            Ok(Graph::from_parts(true, out, Some(inn), edge_count))
        } else {
            // Each non-loop edge contributes two arcs, each kept
            // self-loop one: arcs = 2(m - s) + s.
            let arcs = out_targets.len();
            let expected = edge_count.checked_mul(2).and_then(|d| d.checked_sub(self_loops));
            if expected != Some(arcs) {
                return bad(format!(
                    "edge count {edge_count} does not match {arcs} arcs \
                     ({self_loops} self-loops) of the symmetric adjacency"
                ));
            }
            let out = Csr::from_raw_parts(out_offsets, out_targets);
            Ok(Graph::from_parts(false, out, None, edge_count))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_directed() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2)]);
        let (oo, ot) = g.out_csr();
        let (io, it) = g.in_csr().expect("directed");
        let back = Graph::try_from_csr_parts(
            true,
            g.edge_count(),
            oo.to_vec(),
            ot.to_vec(),
            Some((io.to_vec(), it.to_vec())),
        )
        .expect("valid parts");
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_undirected() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (3, 1)]);
        let (oo, ot) = g.out_csr();
        assert!(g.in_csr().is_none());
        let back =
            Graph::try_from_csr_parts(false, g.edge_count(), oo.to_vec(), ot.to_vec(), None)
                .expect("valid parts");
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_undirected_with_self_loop() {
        let mut b = crate::GraphBuilder::undirected();
        b.keep_self_loops(true).add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        let (oo, ot) = g.out_csr();
        let back =
            Graph::try_from_csr_parts(false, g.edge_count(), oo.to_vec(), ot.to_vec(), None)
                .expect("valid parts");
        assert_eq!(g, back);
    }

    #[test]
    fn rejects_unsorted_adjacency() {
        let err = Graph::try_from_csr_parts(false, 1, vec![0, 2, 2], vec![1, 0], None)
            .expect_err("unsorted adjacency must fail");
        assert!(matches!(err, GraphError::InvalidCsr(_)), "{err}");
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = Graph::try_from_csr_parts(false, 1, vec![0, 1, 1], vec![7], None)
            .expect_err("out-of-range target must fail");
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn rejects_bad_offsets() {
        for offsets in [vec![], vec![1, 2], vec![0, 2], vec![0, 2, 1]] {
            let err = Graph::try_from_csr_parts(false, 1, offsets.clone(), vec![1, 0], None)
                .expect_err("bad offsets must fail");
            assert!(matches!(err, GraphError::InvalidCsr(_)), "{offsets:?}: {err}");
        }
    }

    #[test]
    fn rejects_missing_or_superfluous_in_adjacency() {
        assert!(Graph::try_from_csr_parts(true, 0, vec![0], vec![], None).is_err());
        assert!(
            Graph::try_from_csr_parts(false, 0, vec![0], vec![], Some((vec![0], vec![])))
                .is_err()
        );
    }

    #[test]
    fn rejects_inconsistent_edge_count() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        let (oo, ot) = g.out_csr();
        let err = Graph::try_from_csr_parts(false, 5, oo.to_vec(), ot.to_vec(), None)
            .expect_err("wrong edge count must fail");
        assert!(err.to_string().contains("edge count"), "{err}");
    }

    #[test]
    fn rejects_mismatched_in_adjacency_shape() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let (oo, ot) = g.out_csr();
        // In-adjacency describing fewer nodes than the out-adjacency.
        let err = Graph::try_from_csr_parts(
            true,
            g.edge_count(),
            oo.to_vec(),
            ot.to_vec(),
            Some((vec![0, 0], vec![])),
        )
        .expect_err("shape mismatch must fail");
        assert!(matches!(err, GraphError::InvalidCsr(_)), "{err}");
    }
}
