//! [`AdjacencyAccess`]: neighbour iteration abstracted over the backing
//! representation.
//!
//! [`Graph`] hands out borrowed `&[NodeId]` adjacency slices, but a
//! compressed on-disk snapshot cannot — its lists must be decoded into a
//! scratch buffer first, and decoding can fail on corrupt bytes. This
//! trait expresses the common denominator: *visit the neighbour list of
//! one vertex*, as a slice, through a callback, fallibly. Scoring code
//! written against it (see `circlekit-scoring`'s paged scorer) runs
//! bit-identically over an in-memory CSR and an mmap-paged compressed
//! snapshot, because both feed it the exact same integer sequences.
//!
//! For [`Graph`] the associated error is [`Infallible`] and the callback
//! receives the CSR slice directly — zero overhead beyond the call.

use crate::graph::Graph;
use crate::NodeId;
use std::convert::Infallible;

/// Read access to a graph's adjacency structure, independent of how the
/// graph is stored.
///
/// The callback style (`with_*` instead of returning a slice) is what
/// makes compressed backings possible: a decoder can fill an internal
/// scratch buffer, pass it to `f`, and reuse the buffer for the next
/// call. Implementations must present each list **sorted ascending and
/// duplicate-free**, exactly as [`Graph`] stores it, so that code
/// iterating through this trait observes the same sequences regardless
/// of backing.
pub trait AdjacencyAccess {
    /// How neighbour access can fail ([`Infallible`] for in-memory
    /// graphs; a decode/corruption error for on-disk backings).
    type Error;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// `m`: arcs for directed graphs, undirected edges otherwise (the
    /// same convention as [`Graph::edge_count`]).
    fn edge_count(&self) -> usize;

    /// Whether the graph is directed.
    fn is_directed(&self) -> bool;

    /// Calls `f` with the sorted out-neighbour list of `v`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; [`Infallible`] for [`Graph`].
    fn with_out_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error>;

    /// Calls `f` with the sorted in-neighbour list of `v` (for
    /// undirected graphs, the same list as the out-neighbours).
    ///
    /// # Errors
    ///
    /// Implementation-defined; [`Infallible`] for [`Graph`].
    fn with_in_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error>;
}

impl AdjacencyAccess for Graph {
    type Error = Infallible;

    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn is_directed(&self) -> bool {
        Graph::is_directed(self)
    }

    fn with_out_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        Ok(f(self.out_neighbors(v)))
    }

    fn with_in_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        Ok(f(self.in_neighbors(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwrap<T>(r: Result<T, Infallible>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    #[test]
    fn graph_impl_mirrors_direct_accessors() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(AdjacencyAccess::node_count(&g), g.node_count());
        assert_eq!(AdjacencyAccess::edge_count(&g), g.edge_count());
        assert!(AdjacencyAccess::is_directed(&g));
        for v in 0..g.node_count() as NodeId {
            let out = unwrap(g.with_out_neighbors(v, <[NodeId]>::to_vec));
            assert_eq!(out.as_slice(), g.out_neighbors(v));
            let inn = unwrap(g.with_in_neighbors(v, <[NodeId]>::to_vec));
            assert_eq!(inn.as_slice(), g.in_neighbors(v));
        }
    }

    #[test]
    fn undirected_in_equals_out() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        for v in 0..3 {
            let out = unwrap(g.with_out_neighbors(v, <[NodeId]>::to_vec));
            let inn = unwrap(g.with_in_neighbors(v, <[NodeId]>::to_vec));
            assert_eq!(out, inn);
        }
    }
}
