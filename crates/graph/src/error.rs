//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and conversion operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node identifier was outside `0..node_count()`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        node_count: usize,
    },
    /// The operation requires a directed graph.
    RequiresDirected,
    /// The operation requires an undirected graph.
    RequiresUndirected,
    /// An edge list failed to parse.
    Parse(ParseEdgeListError),
    /// Raw CSR parts violated a structural invariant (see
    /// [`Graph::try_from_csr_parts`](crate::Graph::try_from_csr_parts)).
    InvalidCsr(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::RequiresDirected => write!(f, "operation requires a directed graph"),
            GraphError::RequiresUndirected => write!(f, "operation requires an undirected graph"),
            GraphError::Parse(e) => write!(f, "edge list parse error: {e}"),
            GraphError::InvalidCsr(why) => write!(f, "invalid CSR parts: {why}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseEdgeListError> for GraphError {
    fn from(e: ParseEdgeListError) -> Self {
        GraphError::Parse(e)
    }
}

/// Error returned when parsing a textual edge list fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEdgeListError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub reason: ParseEdgeListReason,
}

/// The specific reason an edge-list line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseEdgeListReason {
    /// The line did not contain exactly two fields.
    WrongFieldCount(usize),
    /// A field was not a valid `u32`.
    InvalidNodeId(String),
    /// A node id was `>=` the host graph's node count.
    OutOfRange {
        /// The offending node id.
        node: u32,
        /// The host graph's node count.
        node_count: usize,
    },
}

impl fmt::Display for ParseEdgeListReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEdgeListReason::WrongFieldCount(n) => {
                write!(f, "expected 2 fields, found {n}")
            }
            ParseEdgeListReason::InvalidNodeId(s) => write!(f, "invalid node id {s:?}"),
            ParseEdgeListReason::OutOfRange { node, node_count } => {
                write!(f, "node id {node} out of range for graph with {node_count} nodes")
            }
        }
    }
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseEdgeListError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, node_count: 3 };
        assert_eq!(e.to_string(), "node 7 out of range for graph with 3 nodes");
        let p = ParseEdgeListError {
            line: 2,
            reason: ParseEdgeListReason::WrongFieldCount(3),
        };
        assert_eq!(p.to_string(), "line 2: expected 2 fields, found 3");
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
        assert_send_sync::<ParseEdgeListError>();
    }

    #[test]
    fn parse_error_converts_into_graph_error() {
        let p = ParseEdgeListError {
            line: 1,
            reason: ParseEdgeListReason::InvalidNodeId("x".into()),
        };
        let g: GraphError = p.clone().into();
        assert_eq!(g, GraphError::Parse(p));
    }
}
