//! [`VertexSet`]: the representation of circles, communities, and sampled
//! vertex sets.

use crate::NodeId;
use std::fmt;

/// A sorted, duplicate-free set of node ids.
///
/// This is the universal currency of the scoring pipeline: circles,
/// ground-truth communities, and random baseline sets are all `VertexSet`s.
/// Membership queries are `O(log n)` binary searches; set algebra runs in
/// linear time over sorted slices.
///
/// ```
/// use circlekit_graph::VertexSet;
///
/// let a: VertexSet = [3u32, 1, 2, 3].into_iter().collect();
/// assert_eq!(a.as_slice(), &[1, 2, 3]);
/// assert!(a.contains(2));
///
/// let b = VertexSet::from_iter([2u32, 4]);
/// assert_eq!(a.intersection(&b).as_slice(), &[2]);
/// assert_eq!(a.union(&b).len(), 4);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexSet {
    nodes: Vec<NodeId>,
}

impl VertexSet {
    /// Creates an empty set.
    pub fn new() -> VertexSet {
        VertexSet::default()
    }

    /// Creates a set from a vector that is already sorted ascending and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics (with `debug_assert`) in debug builds if the invariant is
    /// violated; in release builds the invariant is trusted.
    pub fn from_sorted_unique(nodes: Vec<NodeId>) -> VertexSet {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "input not sorted/unique");
        VertexSet { nodes }
    }

    /// Creates a set from an arbitrary vector, sorting and deduplicating.
    pub fn from_vec(mut nodes: Vec<NodeId>) -> VertexSet {
        nodes.sort_unstable();
        nodes.dedup();
        VertexSet { nodes }
    }

    /// Number of member vertices (the paper's `n_C`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test, `O(log n)`.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Inserts `v`; returns `true` if it was newly added.
    pub fn insert(&mut self, v: NodeId) -> bool {
        match self.nodes.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.nodes.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        match self.nodes.binary_search(&v) {
            Ok(pos) => {
                self.nodes.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Borrowed sorted slice of the members.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, NodeId>> {
        self.nodes.iter().copied()
    }

    /// Consumes the set, returning the sorted member vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.nodes
    }

    /// Sorted-merge union with `other`.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let (a, b) = (&self.nodes, &other.nodes);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        VertexSet { nodes: out }
    }

    /// Sorted-merge intersection with `other`.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let (a, b) = (&self.nodes, &other.nodes);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        VertexSet { nodes: out }
    }

    /// Members of `self` not in `other`.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let nodes = self.iter().filter(|&v| !other.contains(v)).collect();
        VertexSet { nodes }
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`; `0.0` when both sets are
    /// empty.
    pub fn jaccard(&self, other: &VertexSet) -> f64 {
        let inter = self.intersection(other).len();
        let uni = self.len() + other.len() - inter;
        if uni == 0 {
            0.0
        } else {
            inter as f64 / uni as f64
        }
    }

    /// Whether the two sets share at least one vertex (the paper's
    /// ego-network *overlap* relation), without allocating.
    pub fn overlaps(&self, other: &VertexSet) -> bool {
        let (a, b) = (&self.nodes, &other.nodes);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.nodes.iter()).finish()
    }
}

impl FromIterator<NodeId> for VertexSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> VertexSet {
        VertexSet::from_vec(iter.into_iter().collect())
    }
}

impl Extend<NodeId> for VertexSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.nodes.extend(iter);
        self.nodes.sort_unstable();
        self.nodes.dedup();
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for VertexSet {
    type Item = NodeId;
    type IntoIter = std::vec::IntoIter<NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.into_iter()
    }
}

impl From<Vec<NodeId>> for VertexSet {
    fn from(nodes: Vec<NodeId>) -> VertexSet {
        VertexSet::from_vec(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = VertexSet::from_vec(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn insert_and_remove_maintain_order() {
        let mut s = VertexSet::from_vec(vec![1, 3]);
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.as_slice(), &[2, 3]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = VertexSet::from_vec(vec![1, 2, 3]);
        let b = VertexSet::from_vec(vec![2, 3, 4]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).as_slice(), &[2, 3]);
        assert_eq!(a.difference(&b).as_slice(), &[1]);
        assert_eq!(b.difference(&a).as_slice(), &[4]);
    }

    #[test]
    fn jaccard_bounds() {
        let a = VertexSet::from_vec(vec![1, 2]);
        let b = VertexSet::from_vec(vec![1, 2]);
        let c = VertexSet::from_vec(vec![3]);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.jaccard(&c), 0.0);
        assert_eq!(VertexSet::new().jaccard(&VertexSet::new()), 0.0);
    }

    #[test]
    fn overlaps_matches_nonempty_intersection() {
        let a = VertexSet::from_vec(vec![1, 5, 9]);
        let b = VertexSet::from_vec(vec![2, 5]);
        let c = VertexSet::from_vec(vec![0, 4]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", VertexSet::new()), "{}");
    }
}
