//! Graph conversions: directedness changes and induced subgraphs.

use crate::{Graph, GraphBuilder, NodeId, VertexSet};

/// An induced subgraph together with the mapping back to the parent graph.
///
/// Produced by [`Graph::subgraph`]. Local node `i` of
/// [`Subgraph::graph`] corresponds to parent node `Subgraph::nodes()[i]`.
#[derive(Clone, Debug)]
pub struct Subgraph {
    graph: Graph,
    nodes: Vec<NodeId>,
}

impl Subgraph {
    /// The induced subgraph, with dense local ids `0..nodes().len()`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the subgraph, returning the graph and the local→parent map.
    pub fn into_parts(self) -> (Graph, Vec<NodeId>) {
        (self.graph, self.nodes)
    }

    /// Parent-graph node ids, indexed by local id (sorted ascending).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Maps a local id back to the parent graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn to_parent(&self, local: NodeId) -> NodeId {
        self.nodes[local as usize]
    }

    /// Maps a parent-graph id to the local id, if the node is included.
    pub fn to_local(&self, parent: NodeId) -> Option<NodeId> {
        self.nodes.binary_search(&parent).ok().map(|i| i as NodeId)
    }
}

impl Graph {
    /// Collapses a directed graph to an undirected one: every arc (in either
    /// orientation) yields one undirected edge, so reciprocated pairs merge.
    ///
    /// This is the transformation behind the paper's §IV-B robustness check
    /// ("bidirectional edges combined to one", ≈ 2.38 % score deviation).
    /// Calling it on an undirected graph returns a clone.
    ///
    /// ```
    /// use circlekit_graph::Graph;
    /// let g = Graph::from_edges(true, [(0u32, 1u32), (1, 0), (1, 2)]);
    /// let u = g.to_undirected();
    /// assert!(!u.is_directed());
    /// assert_eq!(u.edge_count(), 2); // {0,1} and {1,2}
    /// ```
    pub fn to_undirected(&self) -> Graph {
        if !self.is_directed() {
            return self.clone();
        }
        let mut b = GraphBuilder::undirected();
        b.reserve_nodes(self.node_count());
        b.add_edges(self.edges());
        b.build()
    }

    /// Expands an undirected graph to a directed one with a reciprocal arc
    /// pair per edge. Calling it on a directed graph returns a clone.
    pub fn to_bidirected(&self) -> Graph {
        if self.is_directed() {
            return self.clone();
        }
        let mut b = GraphBuilder::directed();
        b.reserve_nodes(self.node_count());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build()
    }

    /// Extracts the subgraph induced by `set`, relabelling nodes to dense
    /// local ids.
    ///
    /// Directedness is preserved. Members of `set` outside
    /// `0..node_count()` are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`](crate::GraphError) if `set`
    /// contains an id `>= node_count()`.
    pub fn subgraph(&self, set: &VertexSet) -> Result<Subgraph, crate::GraphError> {
        if let Some(&max) = set.as_slice().last() {
            if max as usize >= self.node_count() {
                return Err(crate::GraphError::NodeOutOfRange {
                    node: max,
                    node_count: self.node_count(),
                });
            }
        }
        let nodes: Vec<NodeId> = set.as_slice().to_vec();
        let mut b = if self.is_directed() {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        b.reserve_nodes(nodes.len());
        for (local_u, &u) in nodes.iter().enumerate() {
            for v in self.out_neighbors(u) {
                if let Ok(local_v) = nodes.binary_search(v) {
                    // For undirected graphs each edge appears in both
                    // adjacency lists; the builder dedups the double add.
                    b.add_edge(local_u as NodeId, local_v as NodeId);
                }
            }
        }
        Ok(Subgraph { graph: b.build(), nodes })
    }

    /// The ego network of `owner`: the owner, its (out-)neighbours, and —
    /// per the paper's definition — "all vertices he is connected to and all
    /// edges between these vertices".
    ///
    /// For directed graphs the ego's alters are its **out**-neighbours
    /// ("in your circles"), matching how the McAuley–Leskovec data set was
    /// crawled. Returns the member set including the owner.
    ///
    /// # Panics
    ///
    /// Panics if `owner >= node_count()`.
    pub fn ego_network(&self, owner: NodeId) -> VertexSet {
        let mut members: Vec<NodeId> = self.out_neighbors(owner).to_vec();
        members.push(owner);
        VertexSet::from_vec(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_undirected_merges_reciprocal_arcs() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 0), (2, 1)]);
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(1, 2));
    }

    #[test]
    fn to_bidirected_doubles_edges() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        let d = g.to_bidirected();
        assert!(d.is_directed());
        assert_eq!(d.edge_count(), 4);
        assert!(d.has_edge(1, 0));
        assert!(d.has_edge(0, 1));
    }

    #[test]
    fn roundtrip_preserves_node_count() {
        let g = Graph::from_edges(true, [(0u32, 5u32)]);
        assert_eq!(g.to_undirected().node_count(), 6);
        assert_eq!(g.to_undirected().to_bidirected().node_count(), 6);
    }

    #[test]
    fn subgraph_relabels_and_keeps_internal_edges() {
        // Square 0-1-2-3 plus chord 1-3.
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let set = VertexSet::from_vec(vec![1, 2, 3]);
        let sub = g.subgraph(&set).unwrap();
        assert_eq!(sub.graph().node_count(), 3);
        assert_eq!(sub.graph().edge_count(), 3); // 1-2, 2-3, 1-3
        assert_eq!(sub.to_parent(0), 1);
        assert_eq!(sub.to_local(3), Some(2));
        assert_eq!(sub.to_local(0), None);
    }

    #[test]
    fn subgraph_directed_preserves_orientation() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        let set = VertexSet::from_vec(vec![0, 1]);
        let sub = g.subgraph(&set).unwrap();
        assert!(sub.graph().is_directed());
        assert_eq!(sub.graph().edge_count(), 1);
        assert!(sub.graph().has_edge(0, 1));
        assert!(!sub.graph().has_edge(1, 0));
    }

    #[test]
    fn subgraph_rejects_out_of_range() {
        let g = Graph::from_edges(false, [(0u32, 1u32)]);
        let set = VertexSet::from_vec(vec![0, 9]);
        assert!(g.subgraph(&set).is_err());
    }

    #[test]
    fn subgraph_of_empty_set() {
        let g = Graph::from_edges(false, [(0u32, 1u32)]);
        let sub = g.subgraph(&VertexSet::new()).unwrap();
        assert_eq!(sub.graph().node_count(), 0);
    }

    #[test]
    fn ego_network_includes_owner_and_alters() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (0, 2), (3, 0)]);
        let ego = g.ego_network(0);
        // Out-neighbours only: 1, 2 — not the in-neighbour 3.
        assert_eq!(ego.as_slice(), &[0, 1, 2]);
    }
}
