//! SNAP-compatible group/circle file I/O.
//!
//! The McAuley–Leskovec ego-network data sets store circles as one line
//! per circle: an optional textual label followed by whitespace-separated
//! member ids (`circle3\t17\t42\t108`). The Yang–Leskovec community files
//! (`com-*.top5000.cmty.txt`) are the same without labels. This module
//! reads and writes both.

use crate::error::{GraphError, ParseEdgeListError, ParseEdgeListReason};
use crate::ingest::{IngestPolicy, IngestReport, LineIssue};
use crate::{NodeId, VertexSet};
use std::io::{self, Write};

/// Parses a SNAP-style groups file: one group per line, whitespace
/// separated, with an optional non-numeric leading label per line; blank
/// lines and `#` comments are skipped. Empty groups are dropped.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] (with the 1-based line number) when a
/// non-leading field is not a valid node id.
///
/// ```
/// use circlekit_graph::parse_groups;
/// let groups = parse_groups("circle0\t1 2 3\n4 5\n")?;
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].as_slice(), &[1, 2, 3]);
/// assert_eq!(groups[1].as_slice(), &[4, 5]);
/// # Ok::<(), circlekit_graph::ParseEdgeListError>(())
/// ```
pub fn parse_groups(text: &str) -> Result<Vec<VertexSet>, ParseEdgeListError> {
    let mut groups = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut members: Vec<NodeId> = Vec::new();
        for (pos, field) in line.split_whitespace().enumerate() {
            match field.parse::<NodeId>() {
                Ok(v) => members.push(v),
                Err(_) if pos == 0 => {} // leading label, e.g. "circle3"
                Err(_) => {
                    return Err(ParseEdgeListError {
                        line: idx + 1,
                        reason: ParseEdgeListReason::InvalidNodeId(field.to_string()),
                    })
                }
            }
        }
        if !members.is_empty() {
            groups.push(VertexSet::from_vec(members));
        }
    }
    Ok(groups)
}

/// Parses a SNAP-style groups file leniently, skipping unparseable lines
/// and — when `node_count` is given — dropping member ids `>=` that
/// count, with everything accounted for in the [`IngestReport`].
///
/// A line whose members all get dropped (or a label-only line) counts
/// toward [`IngestReport::empty_groups`] and yields no group. Never
/// fails.
///
/// ```
/// use circlekit_graph::parse_groups_lenient;
/// let (groups, report) = parse_groups_lenient("1 2 99\nonlylabel\n", Some(10));
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].as_slice(), &[1, 2]);
/// assert_eq!(report.dropped_members, 1); // 99 >= 10
/// assert_eq!(report.empty_groups, 1);
/// ```
pub fn parse_groups_lenient(
    text: &str,
    node_count: Option<usize>,
) -> (Vec<VertexSet>, IngestReport) {
    let mut groups = Vec::new();
    let mut report = IngestReport::default();
    for (idx, raw) in text.lines().enumerate() {
        report.lines = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut members: Vec<NodeId> = Vec::new();
        let mut had_field = false;
        let mut skipped_line = false;
        for (pos, field) in line.split_whitespace().enumerate() {
            had_field = true;
            match field.parse::<NodeId>() {
                Ok(v) => {
                    if node_count.is_some_and(|n| (v as usize) >= n) {
                        report.dropped_members += 1;
                    } else {
                        members.push(v);
                    }
                }
                Err(_) if pos == 0 => {} // leading label, e.g. "circle3"
                Err(_) => {
                    report.skipped.push(LineIssue {
                        line: idx + 1,
                        reason: ParseEdgeListReason::InvalidNodeId(field.to_string()),
                    });
                    skipped_line = true;
                    break;
                }
            }
        }
        if skipped_line {
            continue;
        }
        if members.is_empty() {
            if had_field {
                report.empty_groups += 1;
            }
            continue;
        }
        groups.push(VertexSet::from_vec(members));
    }
    report.records = groups.len();
    (groups, report)
}

/// Parses a groups file under the given [`IngestPolicy`].
///
/// * [`IngestPolicy::FailFast`] — abort on the first bad line or (when
///   `node_count` is given) the first out-of-range member, equivalent to
///   [`parse_groups`] plus [`validate_groups`].
/// * [`IngestPolicy::Strict`] — scan everything, then fail with the first
///   recorded issue if the input was not clean of skips or drops.
/// * [`IngestPolicy::Lenient`] — never fail; skip, drop, and report.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] as described per policy. Out-of-range
/// members surface as [`ParseEdgeListReason::OutOfRange`].
pub fn parse_groups_with_policy(
    text: &str,
    node_count: Option<usize>,
    policy: IngestPolicy,
) -> Result<(Vec<VertexSet>, IngestReport), ParseEdgeListError> {
    match policy {
        IngestPolicy::FailFast => {
            let groups = parse_groups(text)?;
            if let Some(n) = node_count {
                if let Err(GraphError::NodeOutOfRange { node, node_count }) =
                    validate_groups(&groups, n)
                {
                    // Re-scan for the offending line so the error carries
                    // a line number like every other parse failure.
                    let line = line_of_member(text, node)
                        .unwrap_or(text.lines().count().max(1));
                    return Err(ParseEdgeListError {
                        line,
                        reason: ParseEdgeListReason::OutOfRange { node, node_count },
                    });
                }
            }
            let report = IngestReport {
                lines: text.lines().count(),
                records: groups.len(),
                ..Default::default()
            };
            Ok((groups, report))
        }
        IngestPolicy::Strict | IngestPolicy::Lenient => {
            let (groups, report) = parse_groups_lenient(text, node_count);
            if policy == IngestPolicy::Strict && !report.is_clean() {
                if let Some(issue) = report.first_issue() {
                    return Err(ParseEdgeListError {
                        line: issue.line,
                        reason: issue.reason.clone(),
                    });
                }
                // Drops without skipped lines: point at the first
                // out-of-range member.
                if let Some(n) = node_count {
                    for group in &groups_with_raw_members(text) {
                        for &(line, v) in group {
                            if (v as usize) >= n {
                                return Err(ParseEdgeListError {
                                    line,
                                    reason: ParseEdgeListReason::OutOfRange {
                                        node: v,
                                        node_count: n,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            Ok((groups, report))
        }
    }
}

/// Finds the 1-based line number of the first occurrence of `node` as a
/// member field in a groups file.
fn line_of_member(text: &str, node: NodeId) -> Option<usize> {
    for (idx, line) in text.lines().enumerate() {
        for (pos, field) in line.split_whitespace().enumerate() {
            match field.parse::<NodeId>() {
                Ok(v) if v == node => return Some(idx + 1),
                Ok(_) => {}
                Err(_) if pos == 0 => {}
                Err(_) => break,
            }
        }
    }
    None
}

/// Raw member fields per parseable line, with line numbers — used to
/// locate out-of-range members for strict-mode errors.
fn groups_with_raw_members(text: &str) -> Vec<Vec<(usize, NodeId)>> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut members = Vec::new();
        for (pos, field) in line.split_whitespace().enumerate() {
            match field.parse::<NodeId>() {
                Ok(v) => members.push((idx + 1, v)),
                Err(_) if pos == 0 => {}
                Err(_) => {
                    members.clear();
                    break;
                }
            }
        }
        if !members.is_empty() {
            out.push(members);
        }
    }
    out
}

/// Validates that every member of every group is a node of the host
/// graph, i.e. `< node_count`.
///
/// Scoring entry points call this so out-of-range ids fail loudly at load
/// time instead of flowing silently into `SetStats`.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] naming the first offending id.
pub fn validate_groups(groups: &[VertexSet], node_count: usize) -> Result<(), GraphError> {
    for group in groups {
        // Sets are sorted ascending: checking the maximum suffices.
        if let Some(&max) = group.as_slice().last() {
            if (max as usize) >= node_count {
                let node = group
                    .iter()
                    .find(|&v| (v as usize) >= node_count)
                    .expect("max member is out of range");
                return Err(GraphError::NodeOutOfRange { node, node_count });
            }
        }
    }
    Ok(())
}

/// Writes groups in SNAP style: `label<TAB>id id id ...`, one per line,
/// labelled `circle0`, `circle1`, …
///
/// # Errors
///
/// Returns any [`io::Error`] from the underlying writer.
pub fn write_groups<W: Write>(groups: &[VertexSet], mut writer: W) -> io::Result<()> {
    for (i, group) in groups.iter().enumerate() {
        write!(writer, "circle{i}")?;
        for v in group.iter() {
            write!(writer, "\t{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labelled_and_unlabelled_lines() {
        let groups = parse_groups("circle0\t5\t3\t5\n1 2\n# comment\n\n").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].as_slice(), &[3, 5]); // sorted, deduped
        assert_eq!(groups[1].as_slice(), &[1, 2]);
    }

    #[test]
    fn parse_rejects_mid_line_garbage() {
        let err = parse_groups("1 2 x 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("invalid node id"));
    }

    #[test]
    fn label_only_lines_are_dropped() {
        let groups = parse_groups("emptycircle\n1 2\n").unwrap();
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn roundtrip() {
        let groups = vec![
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![7]),
        ];
        let mut buf = Vec::new();
        write_groups(&groups, &mut buf).unwrap();
        let parsed = parse_groups(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, groups);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(parse_groups("").unwrap().is_empty());
        assert!(parse_groups("# only a comment\n").unwrap().is_empty());
    }

    #[test]
    fn lenient_skips_garbage_lines_and_counts_label_only() {
        let (groups, report) =
            parse_groups_lenient("circle0\t1 2\n3 oops 4\nemptylabel\n5 6\n", None);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].as_slice(), &[1, 2]);
        assert_eq!(groups[1].as_slice(), &[5, 6]);
        assert_eq!(report.records, 2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].line, 2);
        assert_eq!(report.empty_groups, 1);
    }

    #[test]
    fn lenient_drops_out_of_range_members() {
        let (groups, report) = parse_groups_lenient("1 2 50\n60 70\n", Some(10));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].as_slice(), &[1, 2]);
        assert_eq!(report.dropped_members, 3);
        assert_eq!(report.empty_groups, 1); // 60 70 all dropped
        assert!(!report.is_clean());
    }

    #[test]
    fn validate_groups_flags_out_of_range() {
        let groups = vec![
            VertexSet::from_vec(vec![1, 2]),
            VertexSet::from_vec(vec![3, 11]),
        ];
        assert!(validate_groups(&groups, 12).is_ok());
        let err = validate_groups(&groups, 10).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 11, node_count: 10 });
        assert!(validate_groups(&[], 0).is_ok());
    }

    #[test]
    fn policy_failfast_rejects_out_of_range_with_line_number() {
        let err = parse_groups_with_policy("1 2\ncircle1\t3 99\n", Some(10), IngestPolicy::FailFast)
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.reason,
            ParseEdgeListReason::OutOfRange { node: 99, node_count: 10 }
        );
    }

    #[test]
    fn policy_strict_fails_on_drops_even_without_skips() {
        let err = parse_groups_with_policy("1 2\n3 42\n", Some(10), IngestPolicy::Strict)
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.reason,
            ParseEdgeListReason::OutOfRange { node: 42, node_count: 10 }
        );
    }

    #[test]
    fn policy_lenient_never_fails_and_reports() {
        let (groups, report) =
            parse_groups_with_policy("1 2\nbad words here\n", Some(10), IngestPolicy::Lenient)
                .unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn policy_failfast_accepts_clean_input() {
        let (groups, report) =
            parse_groups_with_policy("1 2\n3 4\n", Some(10), IngestPolicy::FailFast).unwrap();
        assert_eq!(groups.len(), 2);
        assert!(report.is_clean());
        assert_eq!(report.records, 2);
    }
}
