//! SNAP-compatible group/circle file I/O.
//!
//! The McAuley–Leskovec ego-network data sets store circles as one line
//! per circle: an optional textual label followed by whitespace-separated
//! member ids (`circle3\t17\t42\t108`). The Yang–Leskovec community files
//! (`com-*.top5000.cmty.txt`) are the same without labels. This module
//! reads and writes both.

use crate::error::{ParseEdgeListError, ParseEdgeListReason};
use crate::{NodeId, VertexSet};
use std::io::{self, Write};

/// Parses a SNAP-style groups file: one group per line, whitespace
/// separated, with an optional non-numeric leading label per line; blank
/// lines and `#` comments are skipped. Empty groups are dropped.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] (with the 1-based line number) when a
/// non-leading field is not a valid node id.
///
/// ```
/// use circlekit_graph::parse_groups;
/// let groups = parse_groups("circle0\t1 2 3\n4 5\n")?;
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].as_slice(), &[1, 2, 3]);
/// assert_eq!(groups[1].as_slice(), &[4, 5]);
/// # Ok::<(), circlekit_graph::ParseEdgeListError>(())
/// ```
pub fn parse_groups(text: &str) -> Result<Vec<VertexSet>, ParseEdgeListError> {
    let mut groups = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut members: Vec<NodeId> = Vec::new();
        for (pos, field) in line.split_whitespace().enumerate() {
            match field.parse::<NodeId>() {
                Ok(v) => members.push(v),
                Err(_) if pos == 0 => {} // leading label, e.g. "circle3"
                Err(_) => {
                    return Err(ParseEdgeListError {
                        line: idx + 1,
                        reason: ParseEdgeListReason::InvalidNodeId(field.to_string()),
                    })
                }
            }
        }
        if !members.is_empty() {
            groups.push(VertexSet::from_vec(members));
        }
    }
    Ok(groups)
}

/// Writes groups in SNAP style: `label<TAB>id id id ...`, one per line,
/// labelled `circle0`, `circle1`, …
///
/// # Errors
///
/// Returns any [`io::Error`] from the underlying writer.
pub fn write_groups<W: Write>(groups: &[VertexSet], mut writer: W) -> io::Result<()> {
    for (i, group) in groups.iter().enumerate() {
        write!(writer, "circle{i}")?;
        for v in group.iter() {
            write!(writer, "\t{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labelled_and_unlabelled_lines() {
        let groups = parse_groups("circle0\t5\t3\t5\n1 2\n# comment\n\n").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].as_slice(), &[3, 5]); // sorted, deduped
        assert_eq!(groups[1].as_slice(), &[1, 2]);
    }

    #[test]
    fn parse_rejects_mid_line_garbage() {
        let err = parse_groups("1 2 x 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("invalid node id"));
    }

    #[test]
    fn label_only_lines_are_dropped() {
        let groups = parse_groups("emptycircle\n1 2\n").unwrap();
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn roundtrip() {
        let groups = vec![
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![7]),
        ];
        let mut buf = Vec::new();
        write_groups(&groups, &mut buf).unwrap();
        let parsed = parse_groups(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, groups);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(parse_groups("").unwrap().is_empty());
        assert!(parse_groups("# only a comment\n").unwrap().is_empty());
    }
}
