//! Compact social-graph substrate for the `circlekit` workspace.
//!
//! This crate provides the graph representation used by every other crate in
//! the reproduction of *"Are Circles Communities?"* (Brauer & Schmidt,
//! ICDCS 2014): a compressed-sparse-row ([`Graph`]) structure supporting both
//! the **directed** social graphs of Google+/Twitter and the **undirected**
//! graphs of LiveJournal/Orkut, plus the [`VertexSet`] type used to represent
//! circles, communities, and sampled vertex sets.
//!
//! # Quick start
//!
//! ```
//! use circlekit_graph::{GraphBuilder, VertexSet};
//!
//! // A small directed graph: 0 -> 1 -> 2, 2 -> 0.
//! let mut b = GraphBuilder::directed();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(0, 1));
//! assert!(!g.has_edge(1, 0));
//!
//! let circle: VertexSet = [0u32, 1].into_iter().collect();
//! assert_eq!(circle.len(), 2);
//! assert!(circle.contains(1));
//! ```
//!
//! # Design notes
//!
//! * Node identifiers are dense `u32` indices in `0..node_count()`.
//! * Adjacency lists are sorted, enabling `O(log d)` [`Graph::has_edge`] and
//!   linear-time sorted-list intersection for triangle counting.
//! * For directed graphs both out- and in-adjacency are materialised; an
//!   undirected graph stores each edge in both endpoint lists.
//! * Parallel edges are collapsed and self-loops dropped at build time (both
//!   configurable on [`GraphBuilder`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod builder;
mod components;
mod control;
mod convert;
mod csr;
mod error;
mod graph;
mod groups_io;
mod ingest;
mod io;
mod raw;
mod scc;
mod serde_impl;
mod traversal;
mod vertex_set;

pub use access::AdjacencyAccess;
pub use builder::GraphBuilder;
pub use components::{connected_components, largest_component, ComponentLabels};
pub use control::{CancelFlag, Interrupted, RunControl, RunProgress};
pub use convert::Subgraph;
pub use error::{GraphError, ParseEdgeListError, ParseEdgeListReason};
pub use graph::{Direction, Edges, Graph, Neighbors};
pub use groups_io::{
    parse_groups, parse_groups_lenient, parse_groups_with_policy, validate_groups, write_groups,
};
pub use ingest::{IngestPolicy, IngestReport, LineIssue};
pub use io::{
    parse_edge_line, parse_edge_list, parse_edge_list_lenient, parse_edge_list_with_policy,
    read_edge_list, read_edge_list_lenient, write_edge_list,
};
pub use scc::{strongly_connected_components, SccLabels};
pub use traversal::{bfs_distances, bfs_reachable, eccentricity, UNREACHABLE};
pub use vertex_set::VertexSet;

/// Dense node identifier: an index in `0..Graph::node_count()`.
pub type NodeId = u32;
