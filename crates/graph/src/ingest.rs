//! Lenient ingestion: per-line error collection for real-world SNAP dumps.
//!
//! Crawled edge lists and community files are routinely truncated
//! mid-line, CRLF-mangled, or reference node ids outside the host graph.
//! The strict parsers in [`crate::io`] / [`crate::groups_io`] abort on the
//! first bad line; the `*_lenient` variants instead skip offending lines,
//! collect every problem into an [`IngestReport`], and return whatever
//! parsed cleanly. [`IngestPolicy`] names the three behaviours the CLI
//! exposes as `--on-error {fail,skip,report}`.

use crate::error::ParseEdgeListReason;
use std::fmt;

/// How ingestion reacts to malformed input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IngestPolicy {
    /// Abort on the first malformed line (the strict parsers' behaviour;
    /// the default).
    #[default]
    FailFast,
    /// Scan the whole input, then fail with the *first* issue if any line
    /// was malformed — useful for reporting all problems of a corpus in
    /// one pass before rejecting it.
    Strict,
    /// Skip malformed lines and out-of-range ids, recording each skip in
    /// the [`IngestReport`].
    Lenient,
}

impl IngestPolicy {
    /// Parses the CLI spelling (`fail` | `strict` | `skip` | `report`).
    /// `skip` and `report` both map to [`IngestPolicy::Lenient`]; the CLI
    /// decides whether to print the report.
    pub fn from_cli(value: &str) -> Option<IngestPolicy> {
        match value {
            "fail" => Some(IngestPolicy::FailFast),
            "strict" => Some(IngestPolicy::Strict),
            "skip" | "report" => Some(IngestPolicy::Lenient),
            _ => None,
        }
    }
}

/// One skipped line: where and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineIssue {
    /// 1-based line number in the source text (comment and blank lines
    /// count toward the numbering, matching editor line numbers).
    pub line: usize,
    /// What was wrong with the line.
    pub reason: ParseEdgeListReason,
}

impl fmt::Display for LineIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Outcome summary of one lenient ingestion pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Total lines scanned (including comments and blanks).
    pub lines: usize,
    /// Records kept: edges for edge lists, non-empty groups for group
    /// files.
    pub records: usize,
    /// Lines skipped because they failed to parse, in line order.
    pub skipped: Vec<LineIssue>,
    /// Duplicate edge occurrences observed (same `(u, v)` pair seen
    /// again; the graph builder would collapse these silently).
    pub duplicate_edges: usize,
    /// Group member ids dropped because they were `>=` the host graph's
    /// node count.
    pub dropped_members: usize,
    /// Groups dropped because every member was dropped, plus label-only
    /// lines that carried no members to begin with.
    pub empty_groups: usize,
}

impl IngestReport {
    /// Whether the input parsed without any skip, drop, or duplicate.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
            && self.duplicate_edges == 0
            && self.dropped_members == 0
            && self.empty_groups == 0
    }

    /// The first issue encountered, if any line was skipped — what
    /// [`IngestPolicy::Strict`] fails with.
    pub fn first_issue(&self) -> Option<&LineIssue> {
        self.skipped.first()
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ingest: {} lines, {} records kept, {} lines skipped, \
             {} duplicate edges, {} members dropped, {} empty groups",
            self.lines,
            self.records,
            self.skipped.len(),
            self.duplicate_edges,
            self.dropped_members,
            self.empty_groups
        )?;
        for issue in &self.skipped {
            writeln!(f, "  skipped {issue}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!(IngestPolicy::from_cli("fail"), Some(IngestPolicy::FailFast));
        assert_eq!(IngestPolicy::from_cli("strict"), Some(IngestPolicy::Strict));
        assert_eq!(IngestPolicy::from_cli("skip"), Some(IngestPolicy::Lenient));
        assert_eq!(IngestPolicy::from_cli("report"), Some(IngestPolicy::Lenient));
        assert_eq!(IngestPolicy::from_cli("explode"), None);
        assert_eq!(IngestPolicy::default(), IngestPolicy::FailFast);
    }

    #[test]
    fn clean_report_is_clean() {
        let report = IngestReport { lines: 10, records: 10, ..Default::default() };
        assert!(report.is_clean());
        assert!(report.first_issue().is_none());
    }

    #[test]
    fn report_display_lists_issues() {
        let report = IngestReport {
            lines: 3,
            records: 2,
            skipped: vec![LineIssue {
                line: 2,
                reason: ParseEdgeListReason::WrongFieldCount(3),
            }],
            ..Default::default()
        };
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("1 lines skipped"), "{text}");
        assert!(text.contains("line 2: expected 2 fields, found 3"), "{text}");
    }
}
