//! Strongly connected components (iterative Tarjan).

use crate::{Graph, NodeId, VertexSet};

/// Strongly-connected-component labelling of a directed graph.
///
/// Produced by [`strongly_connected_components`]. Component ids are
/// assigned in reverse topological order of the condensation (a Tarjan
/// property): if component `a` reaches component `b`, then
/// `label(a) > label(b)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccLabels {
    labels: Vec<u32>,
    count: usize,
}

impl SccLabels {
    /// Component id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// All labels, indexed by node.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Members of component `id`.
    pub fn members(&self, id: u32) -> VertexSet {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == id)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// The largest component's members (ties broken by lowest id); empty
    /// for an empty graph.
    pub fn largest(&self) -> VertexSet {
        match self
            .sizes()
            .iter()
            .enumerate()
            .max_by_key(|&(id, &s)| (s, std::cmp::Reverse(id)))
        {
            Some((id, _)) => self.members(id as u32),
            None => VertexSet::new(),
        }
    }
}

/// Computes the strongly connected components of a directed graph with an
/// iterative Tarjan algorithm (no recursion, safe for deep graphs).
///
/// On an undirected graph every edge is traversed in both orientations, so
/// the result coincides with
/// [`connected_components`](crate::connected_components).
///
/// ```
/// use circlekit_graph::{strongly_connected_components, Graph};
/// // 0 -> 1 -> 2 -> 0 is a cycle; 3 hangs off it.
/// let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (1, 3)]);
/// let scc = strongly_connected_components(&g);
/// assert_eq!(scc.component_count(), 2);
/// assert_eq!(scc.label(0), scc.label(1));
/// assert_ne!(scc.label(0), scc.label(3));
/// ```
pub fn strongly_connected_components(graph: &Graph) -> SccLabels {
    let n = graph.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vi = v as usize;
            if *child == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let neighbors = graph.out_neighbors(v);
            let mut descended = false;
            while *child < neighbors.len() {
                let w = neighbors[*child];
                *child += 1;
                let wi = w as usize;
                if index[wi] == UNSET {
                    frames.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            }
            if descended {
                continue;
            }
            // v finished: pop a component if v is a root.
            if lowlink[vi] == index[vi] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    labels[w as usize] = count;
                    if w == v {
                        break;
                    }
                }
                count += 1;
            }
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                let pi = parent as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
        }
    }
    SccLabels {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn cycle_is_one_component() {
        let g = Graph::from_edges(true, (0..5u32).map(|i| (i, (i + 1) % 5)));
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.component_count(), 1);
        assert_eq!(scc.largest().len(), 5);
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (0, 2), (1, 3), (2, 3)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.component_count(), 4);
        assert!(scc.sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn reverse_topological_label_order() {
        // a -> b (two singleton components): sink gets the smaller label.
        let g = Graph::from_edges(true, [(0u32, 1u32)]);
        let scc = strongly_connected_components(&g);
        assert!(scc.label(0) > scc.label(1));
    }

    #[test]
    fn two_cycles_with_bridge() {
        let g = Graph::from_edges(
            true,
            [(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2)],
        );
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.label(0), scc.label(1));
        assert_eq!(scc.label(2), scc.label(3));
        assert!(scc.label(0) > scc.label(2)); // {0,1} reaches {2,3}
        let mut sizes = scc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn undirected_matches_weak_components() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (4, 5)]);
        let scc = strongly_connected_components(&g);
        let weak = crate::connected_components(&g);
        assert_eq!(scc.component_count(), weak.component_count());
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                assert_eq!(
                    scc.label(u) == scc.label(v),
                    weak.label(u) == weak.label(v)
                );
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 100k-node directed path: recursion would blow the stack.
        let n = 100_000u32;
        let g = Graph::from_edges(true, (0..n - 1).map(|i| (i, i + 1)));
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.component_count(), n as usize);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut b = GraphBuilder::directed();
        b.add_edge(0, 1).reserve_nodes(4);
        let scc = strongly_connected_components(&b.build());
        assert_eq!(scc.component_count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::directed().build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.component_count(), 0);
        assert!(scc.largest().is_empty());
    }
}
