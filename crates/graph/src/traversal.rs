//! Breadth-first traversal primitives.

use crate::{Direction, Graph, NodeId};
use std::collections::VecDeque;

/// Distance value marking an unreachable node in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `src`, following `dir`.
///
/// Returns a vector of length `node_count()` with hop counts, or
/// [`UNREACHABLE`] for nodes not reachable from `src`.
///
/// # Panics
///
/// Panics if `src >= node_count()`.
///
/// ```
/// use circlekit_graph::{bfs_distances, Direction, Graph, UNREACHABLE};
/// let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
/// let d = bfs_distances(&g, 0, Direction::Out);
/// assert_eq!(d, vec![0, 1, 2]);
/// let d = bfs_distances(&g, 2, Direction::Out);
/// assert_eq!(d, vec![UNREACHABLE, UNREACHABLE, 0]);
/// ```
pub fn bfs_distances(graph: &Graph, src: NodeId, dir: Direction) -> Vec<u32> {
    assert!(
        (src as usize) < graph.node_count(),
        "source node {src} out of range"
    );
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    dist[src as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in graph.neighbors(u, dir) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The set of nodes reachable from `src` (including `src`), following `dir`.
pub fn bfs_reachable(graph: &Graph, src: NodeId, dir: Direction) -> crate::VertexSet {
    let dist = bfs_distances(graph, src, dir);
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .map(|(v, _)| v as NodeId)
        .collect()
}

/// Eccentricity of `src`: the maximum finite BFS distance from `src`.
///
/// Returns `None` if `src` reaches no other node.
pub fn eccentricity(graph: &Graph, src: NodeId, dir: Direction) -> Option<u32> {
    let dist = bfs_distances(graph, src, dir);
    dist.into_iter()
        .filter(|&d| d != UNREACHABLE && d > 0)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(false, (0u32..4).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_a_path() {
        let g = path5();
        let d = bfs_distances(&g, 0, Direction::Both);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2, Direction::Both);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn directed_in_direction_reverses_reachability() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let d = bfs_distances(&g, 2, Direction::In);
        assert_eq!(d, vec![2, 1, 0]);
    }

    #[test]
    fn both_direction_ignores_orientation() {
        let g = Graph::from_edges(true, [(1u32, 0u32), (1, 2)]);
        let d = bfs_distances(&g, 0, Direction::Both);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn reachable_set_excludes_disconnected() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (2, 3)]);
        let r = bfs_reachable(&g, 0, Direction::Both);
        assert_eq!(r.as_slice(), &[0, 1]);
    }

    #[test]
    fn eccentricity_of_path_endpoint() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0, Direction::Both), Some(4));
        assert_eq!(eccentricity(&g, 2, Direction::Both), Some(2));
    }

    #[test]
    fn eccentricity_isolated_is_none() {
        let g = Graph::from_edges(false, [(0u32, 1u32)]);
        let mut b = crate::GraphBuilder::undirected();
        b.add_edge(0, 1).reserve_nodes(3);
        let g2 = b.build();
        assert_eq!(eccentricity(&g, 0, Direction::Both), Some(1));
        assert_eq!(eccentricity(&g2, 2, Direction::Both), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_panics_on_bad_source() {
        bfs_distances(&path5(), 99, Direction::Both);
    }
}
