//! Cooperative run control: cancellation, soft deadlines, and progress
//! reporting for long-running batch work.
//!
//! Scoring thousands of vertex sets or BFS-ing a multi-million-node crawl
//! can run for minutes; [`RunControl`] is the handle the whole pipeline
//! threads through so such a run can be stopped cleanly. The model is
//! strictly cooperative: workers call [`RunControl::check`] at natural
//! checkpoint boundaries (per set, per BFS source, per chunk) and wind
//! down when it reports an interruption — nothing is ever killed
//! mid-computation, so partial results stay consistent.
//!
//! ```
//! use circlekit_graph::{Interrupted, RunControl};
//!
//! let control = RunControl::new();
//! let cancel = control.cancel_flag();
//! assert!(control.check().is_ok());
//! cancel.cancel();
//! assert_eq!(control.check(), Err(Interrupted::Cancelled));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped before finishing its batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupted {
    /// A [`CancelFlag`] was raised.
    Cancelled,
    /// The soft deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupted::Cancelled => write!(f, "run cancelled"),
            Interrupted::DeadlineExceeded => write!(f, "soft deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupted {}

/// Cloneable, thread-safe handle that requests cancellation of the run
/// its [`RunControl`] governs.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag {
    raised: Arc<AtomicBool>,
}

impl CancelFlag {
    /// Creates an un-raised flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.raised.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.raised.load(Ordering::Acquire)
    }
}

/// Progress snapshot passed to a [`RunControl`] progress callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunProgress<'a> {
    /// Which pipeline stage is reporting (e.g. `"fig5/google+/circles"`).
    pub stage: &'a str,
    /// Work items finished so far within the stage.
    pub completed: usize,
    /// Total work items the stage will process.
    pub total: usize,
}

type ProgressFn = dyn Fn(RunProgress<'_>) + Send + Sync;

/// Cancellation token + soft deadline + progress sink for one run.
///
/// A `RunControl` is cheap to clone (all state is shared) and is passed
/// by reference through the parallel scorer, the experiment drivers, and
/// the slow metrics. The default value never interrupts, so
/// `&RunControl::new()` is the "just run to completion" argument.
///
/// The deadline is *soft*: it is only observed at checkpoint boundaries,
/// so a run overshoots by at most one work item.
#[derive(Clone, Default)]
pub struct RunControl {
    cancel: CancelFlag,
    deadline: Option<Instant>,
    progress: Option<Arc<ProgressFn>>,
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("deadline", &self.deadline)
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

impl RunControl {
    /// A control handle that never interrupts and reports nowhere.
    pub fn new() -> RunControl {
        RunControl::default()
    }

    /// Sets a soft deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> RunControl {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets a soft deadline at an absolute instant.
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> RunControl {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a progress callback, invoked from whichever thread hits a
    /// checkpoint (hence `Send + Sync`).
    #[must_use]
    pub fn with_progress<F>(mut self, callback: F) -> RunControl
    where
        F: Fn(RunProgress<'_>) + Send + Sync + 'static,
    {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// The flag that cancels this run; clone it into watchdogs or signal
    /// handlers.
    pub fn cancel_flag(&self) -> CancelFlag {
        self.cancel.clone()
    }

    /// Cooperative checkpoint: `Err` once the run should wind down.
    ///
    /// Cancellation is checked before the deadline, so an explicit cancel
    /// wins when both apply.
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.cancel.is_cancelled() {
            return Err(Interrupted::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupted::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Non-consuming view of [`RunControl::check`].
    pub fn interruption(&self) -> Option<Interrupted> {
        self.check().err()
    }

    /// Reports stage progress to the callback, if one is installed.
    pub fn report(&self, stage: &str, completed: usize, total: usize) {
        if let Some(progress) = &self.progress {
            progress(RunProgress { stage, completed, total });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_control_never_interrupts() {
        let control = RunControl::new();
        assert!(control.check().is_ok());
        assert_eq!(control.interruption(), None);
        control.report("noop", 0, 10); // no callback installed: no-op
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let control = RunControl::new();
        let flag = control.cancel_flag();
        let clone = control.clone();
        assert!(!flag.is_cancelled());
        flag.cancel();
        assert_eq!(control.check(), Err(Interrupted::Cancelled));
        assert_eq!(clone.check(), Err(Interrupted::Cancelled));
    }

    #[test]
    fn elapsed_deadline_interrupts() {
        let control = RunControl::new().with_deadline(Duration::ZERO);
        assert_eq!(control.check(), Err(Interrupted::DeadlineExceeded));
        let future = RunControl::new().with_deadline(Duration::from_secs(3600));
        assert!(future.check().is_ok());
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let control = RunControl::new().with_deadline(Duration::ZERO);
        control.cancel_flag().cancel();
        assert_eq!(control.check(), Err(Interrupted::Cancelled));
    }

    #[test]
    fn progress_callback_observes_reports() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(String, usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let control = RunControl::new().with_progress(move |p| {
            sink.lock().unwrap().push((p.stage.to_string(), p.completed, p.total));
        });
        control.report("stage-a", 1, 4);
        control.report("stage-b", 4, 4);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], ("stage-a".to_string(), 1, 4));
        assert_eq!(seen[1], ("stage-b".to_string(), 4, 4));
    }

    #[test]
    fn interrupted_displays_and_errors() {
        assert_eq!(Interrupted::Cancelled.to_string(), "run cancelled");
        assert_eq!(
            Interrupted::DeadlineExceeded.to_string(),
            "soft deadline exceeded"
        );
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RunControl>();
        assert_send_sync::<CancelFlag>();
        assert_send_sync::<Interrupted>();
    }
}
