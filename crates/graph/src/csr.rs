//! Internal compressed-sparse-row adjacency storage.

use crate::NodeId;

/// Compressed sparse row adjacency: `offsets.len() == n + 1`, and the
/// neighbours of node `v` are `targets[offsets[v]..offsets[v + 1]]`, sorted
/// ascending and free of duplicates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR structure over `n` nodes from an edge list.
    ///
    /// `edges` need not be sorted; duplicates are collapsed. Every endpoint
    /// must be `< n`.
    pub(crate) fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Csr {
        let mut degree = vec![0usize; n];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; edges.len()];
        for &(u, v) in edges {
            let slot = cursor[u as usize];
            targets[slot] = v;
            cursor[u as usize] += 1;
        }
        // Sort and dedup each adjacency list in place.
        let mut deduped_targets = Vec::with_capacity(targets.len());
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        for v in 0..n {
            let (start, end) = (offsets[v], offsets[v + 1]);
            let list = &mut targets[start..end];
            list.sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &t in list.iter() {
                if prev != Some(t) {
                    deduped_targets.push(t);
                    prev = Some(t);
                }
            }
            new_offsets.push(deduped_targets.len());
        }
        Csr {
            offsets: new_offsets,
            targets: deduped_targets,
        }
    }

    /// Rebuilds a CSR from parts that already satisfy the invariants
    /// (`offsets` monotone with `offsets[0] == 0` and final entry
    /// `targets.len()`; each adjacency list strictly increasing). Callers
    /// validate before constructing — see `Graph::try_from_csr_parts`.
    pub(crate) fn from_raw_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Csr {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().expect("non-empty"), targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    /// The offset array: `offsets()[v]..offsets()[v + 1]` indexes the
    /// adjacency of `v` in [`Csr::targets`].
    #[inline]
    pub(crate) fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated adjacency lists.
    #[inline]
    pub(crate) fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    #[inline]
    pub(crate) fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    #[cfg(test)]
    pub(crate) fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub(crate) fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    #[inline]
    pub(crate) fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    #[inline]
    pub(crate) fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.arc_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let csr = Csr::from_edges(4, &[(0, 1)]);
        assert_eq!(csr.neighbors(0), &[1]);
        assert!(csr.neighbors(1).is_empty());
        assert!(csr.neighbors(2).is_empty());
        assert!(csr.neighbors(3).is_empty());
    }

    #[test]
    fn neighbors_sorted_and_deduped() {
        let csr = Csr::from_edges(5, &[(0, 4), (0, 2), (0, 4), (0, 1), (3, 0)]);
        assert_eq!(csr.neighbors(0), &[1, 2, 4]);
        assert_eq!(csr.neighbors(3), &[0]);
        assert_eq!(csr.arc_count(), 4);
    }

    #[test]
    fn contains_uses_sorted_order() {
        let csr = Csr::from_edges(3, &[(0, 2), (0, 1), (1, 2)]);
        assert!(csr.contains(0, 1));
        assert!(csr.contains(0, 2));
        assert!(!csr.contains(2, 0));
    }

    #[test]
    fn degree_matches_list_len() {
        let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.degree(2), 1);
    }
}
