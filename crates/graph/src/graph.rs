//! The [`Graph`] type: CSR-backed directed or undirected graph.

use crate::csr::Csr;
use crate::NodeId;

/// Which adjacency to follow when traversing a directed graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow out-edges (`v -> w`).
    #[default]
    Out,
    /// Follow in-edges (`w -> v`).
    In,
    /// Follow edges in either orientation (treat the graph as undirected).
    Both,
}

/// A compressed-sparse-row graph over dense `u32` node ids.
///
/// Construct one with [`GraphBuilder`](crate::GraphBuilder) or
/// [`Graph::from_edges`]. Adjacency lists are sorted and duplicate-free;
/// self-loops are removed at build time unless explicitly kept.
///
/// # Edge counting
///
/// [`Graph::edge_count`] returns the number of *arcs* for a directed graph
/// and the number of *undirected edges* for an undirected graph. This is the
/// convention the paper's scoring functions use: a fully connected directed
/// set of `k` vertices has `k(k-1)` edges, twice the undirected count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    directed: bool,
    /// Out-adjacency (or the symmetric adjacency for undirected graphs).
    out: Csr,
    /// In-adjacency; populated only for directed graphs.
    inn: Option<Csr>,
    /// Edge count: arcs (directed) or undirected edges (undirected).
    m: usize,
}

impl Graph {
    pub(crate) fn from_parts(directed: bool, out: Csr, inn: Option<Csr>, m: usize) -> Graph {
        debug_assert_eq!(directed, inn.is_some());
        Graph { directed, out, inn, m }
    }

    /// Out-adjacency CSR (symmetric adjacency for undirected graphs).
    pub(crate) fn out(&self) -> &Csr {
        &self.out
    }

    /// In-adjacency CSR; `None` for undirected graphs.
    pub(crate) fn inn(&self) -> Option<&Csr> {
        self.inn.as_ref()
    }

    /// Builds a graph directly from an edge iterator.
    ///
    /// Node count is inferred as `max id + 1`. Duplicate edges are collapsed
    /// and self-loops dropped. For a full set of options use
    /// [`GraphBuilder`](crate::GraphBuilder).
    ///
    /// ```
    /// use circlekit_graph::Graph;
    /// let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
    /// assert_eq!(g.node_count(), 3);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges<I>(directed: bool, edges: I) -> Graph
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = if directed {
            crate::GraphBuilder::directed()
        } else {
            crate::GraphBuilder::undirected()
        };
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Whether edges carry direction.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.node_count()
    }

    /// Number of edges `m`: arcs for directed graphs, undirected edges
    /// otherwise.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Out-neighbours of `v` (all neighbours for an undirected graph),
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.out.neighbors(v)
    }

    /// In-neighbours of `v` (all neighbours for an undirected graph),
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        match &self.inn {
            Some(inn) => inn.neighbors(v),
            None => self.out.neighbors(v),
        }
    }

    /// Neighbours of `v` in the requested [`Direction`].
    ///
    /// For [`Direction::Both`] on a directed graph this merges out- and
    /// in-neighbours (deduplicated); prefer [`Graph::out_neighbors`] /
    /// [`Graph::in_neighbors`] in hot loops, which return borrowed slices.
    pub fn neighbors(&self, v: NodeId, dir: Direction) -> Neighbors<'_> {
        match (dir, self.directed) {
            (Direction::Out, _) => Neighbors::Slice(self.out_neighbors(v).iter()),
            (Direction::In, _) => Neighbors::Slice(self.in_neighbors(v).iter()),
            (Direction::Both, false) => Neighbors::Slice(self.out_neighbors(v).iter()),
            (Direction::Both, true) => Neighbors::Merged {
                a: self.out_neighbors(v),
                b: self.in_neighbors(v),
                i: 0,
                j: 0,
            },
        }
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v` (equal to [`Graph::out_degree`] on undirected
    /// graphs).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    /// Total degree `d(v)`: adjacency size for undirected graphs, in-degree
    /// plus out-degree for directed graphs (the paper's Table I convention).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        if self.directed {
            self.out_degree(v) + self.in_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Whether the edge `u -> v` exists (for undirected graphs, whether
    /// `{u, v}` exists). `O(log d(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out.contains(u, v)
    }

    /// Iterates over all edges: every arc `(u, v)` for a directed graph, and
    /// every undirected edge once with `u <= v` for an undirected graph.
    ///
    /// ```
    /// use circlekit_graph::Graph;
    /// let g = Graph::from_edges(false, [(1u32, 0u32), (1, 2)]);
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 1), (1, 2)]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            node: 0,
            idx: 0,
        }
    }

    /// Fraction of directed arcs that are reciprocated (`u -> v` and
    /// `v -> u` both present). Returns `1.0` for undirected graphs and for
    /// directed graphs with no arcs.
    pub fn reciprocity(&self) -> f64 {
        if !self.directed || self.m == 0 {
            return 1.0;
        }
        let mut reciprocated = 0usize;
        for (u, v) in self.edges() {
            if self.has_edge(v, u) {
                reciprocated += 1;
            }
        }
        reciprocated as f64 / self.m as f64
    }

    /// Sum of `degree(v)` over all nodes. For undirected graphs this is
    /// `2m`; for directed graphs `2m` as well (each arc contributes one
    /// out- and one in-degree).
    pub fn total_degree(&self) -> usize {
        2 * self.m
    }
}

/// Iterator over the neighbours of a node; see [`Graph::neighbors`].
#[derive(Clone, Debug)]
pub enum Neighbors<'a> {
    /// Borrowed slice iteration (single adjacency list).
    Slice(std::slice::Iter<'a, NodeId>),
    /// Sorted merge of out- and in-adjacency with deduplication.
    Merged {
        /// Out-adjacency list.
        a: &'a [NodeId],
        /// In-adjacency list.
        b: &'a [NodeId],
        /// Cursor into `a`.
        i: usize,
        /// Cursor into `b`.
        j: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            Neighbors::Slice(it) => it.next().copied(),
            Neighbors::Merged { a, b, i, j } => {
                let x = a.get(*i).copied();
                let y = b.get(*j).copied();
                match (x, y) {
                    (None, None) => None,
                    (Some(u), None) => {
                        *i += 1;
                        Some(u)
                    }
                    (None, Some(v)) => {
                        *j += 1;
                        Some(v)
                    }
                    (Some(u), Some(v)) => {
                        if u < v {
                            *i += 1;
                            Some(u)
                        } else if v < u {
                            *j += 1;
                            Some(v)
                        } else {
                            *i += 1;
                            *j += 1;
                            Some(u)
                        }
                    }
                }
            }
        }
    }
}

/// Iterator over the edges of a [`Graph`]; see [`Graph::edges`].
#[derive(Clone, Debug)]
pub struct Edges<'a> {
    graph: &'a Graph,
    node: NodeId,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as NodeId;
        while self.node < n {
            let list = self.graph.out.neighbors(self.node);
            while self.idx < list.len() {
                let v = list[self.idx];
                self.idx += 1;
                if self.graph.directed || self.node <= v {
                    return Some((self.node, v));
                }
            }
            self.node += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_directed() -> Graph {
        Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)])
    }

    fn triangle_undirected() -> Graph {
        Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0)])
    }

    #[test]
    fn directed_counts() {
        let g = triangle_directed();
        assert!(g.is_directed());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn undirected_counts() {
        let g = triangle_undirected();
        assert!(!g.is_directed());
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let g = triangle_undirected();
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn directed_adjacency_is_asymmetric() {
        let g = triangle_directed();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn edges_iterator_directed_yields_all_arcs() {
        let g = triangle_directed();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn edges_iterator_undirected_yields_each_edge_once() {
        let g = triangle_undirected();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u <= v);
        }
    }

    #[test]
    fn reciprocity_full_cycle_is_zero() {
        let g = triangle_directed();
        assert_eq!(g.reciprocity(), 0.0);
    }

    #[test]
    fn reciprocity_mutual_pair() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 0), (1, 2)]);
        let r = g.reciprocity();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reciprocity_undirected_is_one() {
        assert_eq!(triangle_undirected().reciprocity(), 1.0);
    }

    #[test]
    fn neighbors_both_merges_directed_adjacency() {
        let g = Graph::from_edges(true, [(0u32, 2u32), (1, 0), (0, 1)]);
        let both: Vec<_> = g.neighbors(0, Direction::Both).collect();
        assert_eq!(both, vec![1, 2]);
    }

    #[test]
    fn neighbors_direction_out_and_in() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (2, 0)]);
        let out: Vec<_> = g.neighbors(0, Direction::Out).collect();
        let inn: Vec<_> = g.neighbors(0, Direction::In).collect();
        assert_eq!(out, vec![1]);
        assert_eq!(inn, vec![2]);
    }

    #[test]
    fn self_loops_removed_by_default() {
        let g = Graph::from_edges(true, [(0u32, 0u32), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_collapsed() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }
}
