//! Replication safety at the WAL-frame level: a replica fed torn,
//! truncated, or re-requested CKW1 frame batches must either apply a
//! whole committed prefix or reject the batch typed — and after a
//! reconnect it must catch up to a WAL byte-identical to the primary's.
//! Divergence (applying half a batch, or applying bytes the primary
//! never committed) is the one outcome that must be impossible.

use circlekit_graph::{Graph, VertexSet};
use circlekit_live::{wal_path_for, LiveError, LiveSnapshot, Mutation};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("circlekit-live-repl-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}", std::process::id(), name))
}

fn fixture() -> (Graph, Vec<VertexSet>) {
    let g = Graph::from_edges(
        false,
        [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)],
    );
    (g, vec![VertexSet::from_vec(vec![0, 1, 2, 3]), VertexSet::from_vec(vec![4, 5, 6])])
}

/// Packs the fixture at `name` and at `name`-replica (same bytes, so
/// the same base CRC) and opens both.
fn primary_and_replica(name: &str) -> (LiveSnapshot, LiveSnapshot, PathBuf, PathBuf) {
    let primary_path = tmp(&format!("{name}.cks"));
    let replica_path = tmp(&format!("{name}-replica.cks"));
    let (g, groups) = fixture();
    circlekit_store::save_snapshot(&primary_path, &g, &groups).unwrap();
    std::fs::copy(&primary_path, &replica_path).unwrap();
    let primary = LiveSnapshot::open(&primary_path).unwrap();
    let replica = LiveSnapshot::open(&replica_path).unwrap();
    (primary, replica, primary_path, replica_path)
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    }
}

/// The paper scores of every group, as raw bits.
fn score_bits(live: &LiveSnapshot) -> Vec<Vec<u64>> {
    (0..live.groups().len())
        .map(|g| live.paper_scores(g).unwrap().iter().map(|(_, s)| s.to_bits()).collect())
        .collect()
}

/// Same mix as the incremental-equivalence suite: deliberately includes
/// invalid mutations, which `apply` rejects without logging.
fn draw_mutation(rng: &mut SmallRng, live: &LiveSnapshot) -> Mutation {
    let n = live.node_count() as u32;
    let groups = live.groups().len() as u32;
    let node = |rng: &mut SmallRng| rng.gen_range(0..n + 2);
    match rng.gen_range(0..10u32) {
        0..=3 => Mutation::AddEdge { u: node(rng), v: node(rng) },
        4..=5 => Mutation::RemoveEdge { u: node(rng), v: node(rng) },
        6 => Mutation::AddVertex,
        7..=8 => Mutation::AddMember { group: rng.gen_range(0..groups + 1), node: node(rng) },
        _ => Mutation::RemoveMember { group: rng.gen_range(0..groups + 1), node: node(rng) },
    }
}

/// Asserts the replica matches the primary exactly: offsets, scores,
/// and the WAL files byte for byte.
fn assert_converged(primary: &LiveSnapshot, replica: &LiveSnapshot, ppath: &Path, rpath: &Path) {
    assert_eq!(replica.wal_offset(), primary.wal_offset(), "offsets diverge");
    assert_eq!(score_bits(replica), score_bits(primary), "scores diverge");
    assert_eq!(replica.node_count(), primary.node_count());
    assert_eq!(replica.edge_count(), primary.edge_count());
    let pwal = std::fs::read(wal_path_for(ppath)).unwrap_or_default();
    let rwal = std::fs::read(wal_path_for(rpath)).unwrap_or_default();
    assert_eq!(pwal, rwal, "replica WAL is not a byte-identical copy");
}

#[test]
fn every_byte_cut_of_a_shipped_batch_rejects_cleanly_then_catches_up() {
    let (mut primary, mut replica, ppath, rpath) = primary_and_replica("cut-sweep");
    for batch in [
        vec![Mutation::AddEdge { u: 0, v: 4 }, Mutation::RemoveEdge { u: 1, v: 2 }],
        vec![Mutation::AddVertex, Mutation::AddEdge { u: 7, v: 3 }],
        vec![Mutation::AddMember { group: 1, node: 3 }],
    ] {
        primary.apply(&batch).unwrap();
    }
    let frames = primary.replication_frames_from(0).unwrap();

    for cut in 0..frames.len() {
        let before_offset = replica.wal_offset();
        let before_bits = score_bits(&replica);
        match replica.apply_replicated(&frames[..cut]) {
            // A cut on a frame boundary ships whole records: fine, but
            // then this replica is ahead for later (shorter) cuts, so
            // rewind by reopening a fresh copy.
            Ok(_) => {
                std::fs::copy(&ppath, &rpath).unwrap();
                let _ = std::fs::remove_file(wal_path_for(&rpath));
                replica = LiveSnapshot::open(&rpath).unwrap();
            }
            // A mid-frame cut must reject typed and apply *nothing*.
            Err(LiveError::TornReplicationBatch { .. }) => {
                assert_eq!(replica.wal_offset(), before_offset, "cut {cut}: offset moved");
                assert_eq!(score_bits(&replica), before_bits, "cut {cut}: state moved");
            }
            Err(other) => panic!("cut {cut}: unexpected error {other}"),
        }
        // Reconnect semantics: re-request from the replica's own offset
        // and apply the rest. Every cut must end byte-identical.
        let rest = primary.replication_frames_from(replica.wal_offset()).unwrap();
        replica.apply_replicated(&rest).unwrap();
        assert_converged(&primary, &replica, &ppath, &rpath);
        // Reset for the next cut.
        std::fs::copy(&ppath, &rpath).unwrap();
        let _ = std::fs::remove_file(wal_path_for(&rpath));
        replica = LiveSnapshot::open(&rpath).unwrap();
    }
    cleanup(&[ppath, rpath]);
}

#[test]
fn corrupt_frames_reject_without_applying() {
    let (mut primary, mut replica, ppath, rpath) = primary_and_replica("corrupt");
    primary.apply(&[Mutation::AddEdge { u: 0, v: 4 }, Mutation::AddVertex]).unwrap();
    let frames = primary.replication_frames_from(0).unwrap();

    for flip in 0..frames.len() {
        let mut bad = frames.clone();
        bad[flip] ^= 0x10;
        match replica.apply_replicated(&bad) {
            // Flips can fail as a checksum mismatch, a torn batch (length
            // field flipped), or an offset error surfaced by the scan —
            // but never apply partially.
            Err(_) => {
                assert_eq!(replica.wal_offset(), 0, "flip {flip}: offset moved");
            }
            // A flip that still checks out would be a CRC collision on a
            // <100 byte payload — treat it as a bug.
            Ok(n) => panic!("flip {flip}: corrupt batch applied {n} records"),
        }
    }
    replica.apply_replicated(&frames).unwrap();
    assert_converged(&primary, &replica, &ppath, &rpath);
    cleanup(&[ppath, rpath]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary mutation histories, arbitrary batch splits, and an
    /// arbitrary torn cut in the middle of tailing: the replica either
    /// rejects typed or applies whole batches, and always converges to
    /// a byte-identical WAL after the reconnect.
    #[test]
    fn torn_tailing_never_diverges(
        seed in 0u64..1u64 << 48,
        ops in 1usize..60,
        splits in 1u64..8,
        cut_seed in 0u64..1u64 << 48,
    ) {
        let name = format!("prop-{seed}-{ops}-{splits}-{cut_seed}");
        let (mut primary, mut replica, ppath, rpath) = primary_and_replica(&name);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut applied = 0usize;
        // Ship in `splits` chunks as the primary commits, mimicking a
        // replica that tails live batches rather than one backlog.
        for chunk in 0..splits {
            for _ in 0..ops.div_ceil(splits as usize) {
                let m = draw_mutation(&mut rng, &primary);
                if primary.apply(&[m]).is_ok() {
                    applied += 1;
                }
            }
            let frames = primary
                .replication_frames_from(replica.wal_offset())
                .expect("replica offset is always a committed boundary");
            if chunk == splits - 1 && !frames.is_empty() {
                // Tear the final batch at an arbitrary byte.
                let cut = (cut_seed % frames.len() as u64) as usize;
                match replica.apply_replicated(&frames[..cut]) {
                    Ok(_) | Err(LiveError::TornReplicationBatch { .. }) => {}
                    Err(other) => panic!("unexpected error on torn batch: {other}"),
                }
                // Reconnect: request again from wherever the replica is.
                let rest = primary.replication_frames_from(replica.wal_offset()).unwrap();
                replica.apply_replicated(&rest).unwrap();
            } else {
                replica.apply_replicated(&frames).unwrap();
            }
        }
        prop_assert!(applied <= ops + splits as usize);
        assert_converged(&primary, &replica, &ppath, &rpath);
        // A replica restart replays its copied WAL to the same state.
        drop(replica);
        let reopened = LiveSnapshot::open(&rpath).unwrap();
        assert_converged(&primary, &reopened, &ppath, &rpath);
        cleanup(&[ppath, rpath]);
    }
}
