//! The tentpole property: after an *arbitrary* sequence of mutations,
//! the incrementally maintained aggregates — and the paper's four
//! scores computed from them — are bit-identical to a from-scratch
//! rescore of the materialized graph.

use circlekit_graph::{Graph, VertexSet};
use circlekit_live::{LiveSnapshot, Mutation};
use circlekit_scoring::{Scorer, ScoringFunction};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn arb_edges(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 1..120)
}

fn arb_groups(n: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..n, 0..16), 1..6)
}

fn build(directed: bool, edges: &[(u32, u32)], raw_groups: &[Vec<u32>]) -> LiveSnapshot {
    let graph = Graph::from_edges(directed, edges.iter().copied());
    let n = graph.node_count();
    let groups: Vec<VertexSet> = raw_groups
        .iter()
        .map(|members| members.iter().copied().filter(|&v| (v as usize) < n).collect())
        .collect();
    LiveSnapshot::in_memory(graph, groups)
}

/// Draws the next mutation from `rng`. Deliberately unbiased towards
/// validity: roughly a third of the drawn mutations are rejected
/// (duplicate edges, absent members, out-of-range ids), which asserts
/// that rejection never corrupts the maintained state either.
fn draw_mutation(rng: &mut SmallRng, live: &LiveSnapshot) -> Mutation {
    let n = live.node_count() as u32;
    let groups = live.groups().len() as u32;
    // +2 lets out-of-range ids appear.
    let node = |rng: &mut SmallRng| rng.gen_range(0..n + 2);
    match rng.gen_range(0..10u32) {
        0..=3 => Mutation::AddEdge { u: node(rng), v: node(rng) },
        4..=5 => Mutation::RemoveEdge { u: node(rng), v: node(rng) },
        6 => Mutation::AddVertex,
        7..=8 => Mutation::AddMember { group: rng.gen_range(0..groups + 1), node: node(rng) },
        _ => Mutation::RemoveMember { group: rng.gen_range(0..groups + 1), node: node(rng) },
    }
}

/// Asserts the maintained aggregates and PAPER scores of every group
/// match a full rescore bit-for-bit.
fn assert_bit_identical(live: &LiveSnapshot) {
    let graph = live.materialize();
    let mut scorer = Scorer::new(&graph);
    for (i, set) in live.groups().iter().enumerate() {
        let full = scorer.stats(set);
        let inc = live.set_stats(i).expect("registered group");
        assert_eq!(inc.n, full.n, "n diverged for group {i}");
        assert_eq!(inc.m, full.m, "m diverged for group {i}");
        assert_eq!(inc.n_c, full.n_c, "n_c diverged for group {i}");
        assert_eq!(inc.m_c, full.m_c, "m_c diverged for group {i}");
        assert_eq!(inc.c_c, full.c_c, "c_c diverged for group {i}");
        assert_eq!(inc.out_degree_sum, full.out_degree_sum, "Σd_out diverged for group {i}");
        assert_eq!(inc.in_degree_sum, full.in_degree_sum, "Σd_in diverged for group {i}");
        for f in ScoringFunction::PAPER {
            assert_eq!(
                f.score(&inc).to_bits(),
                f.score(&full).to_bits(),
                "{f} not bit-identical for group {i}"
            );
        }
    }
}

fn run_sequence(directed: bool, edges: &[(u32, u32)], raw_groups: &[Vec<u32>], seed: u64) {
    let mut live = build(directed, edges, raw_groups);
    let mut rng = SmallRng::seed_from_u64(seed);
    assert_bit_identical(&live);
    let mut applied = 0usize;
    for step in 0..80 {
        let m = draw_mutation(&mut rng, &live);
        let outcome = live.apply(&[m]).expect("in-memory apply cannot fail on I/O");
        applied += outcome.applied;
        // Check at every step: divergence is easiest to localise at the
        // mutation that introduced it.
        assert_bit_identical(&live);
        let _ = step;
    }
    // The unbiased generator must exercise the applied path, not only
    // rejections.
    assert!(applied > 0, "mutation generator applied nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn undirected_sequences_stay_bit_identical(
        edges in arb_edges(48),
        raw_groups in arb_groups(48),
        seed in any::<u64>(),
    ) {
        run_sequence(false, &edges, &raw_groups, seed);
    }

    #[test]
    fn directed_sequences_stay_bit_identical(
        edges in arb_edges(48),
        raw_groups in arb_groups(48),
        seed in any::<u64>(),
    ) {
        run_sequence(true, &edges, &raw_groups, seed);
    }
}

/// Batches through the WAL path must replay to bit-identical scores too:
/// the durable variant of the property above, one seed, on disk.
#[test]
fn durable_sequence_replays_bit_identical() {
    let dir = std::env::temp_dir().join("circlekit-live-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("equiv-{}.cks", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(circlekit_live::wal_path_for(&path));

    let graph = Graph::from_edges(false, (0u32..40).map(|i| (i, (i * 7 + 1) % 41 % 40)));
    let groups: Vec<VertexSet> =
        vec![(0u32..10).collect(), (5u32..25).collect(), (30u32..40).collect()];
    circlekit_store::save_snapshot(&path, &graph, &groups).unwrap();

    let mut live = LiveSnapshot::open(&path).unwrap();
    let mut rng = SmallRng::seed_from_u64(2014);
    for _ in 0..10 {
        let batch: Vec<Mutation> =
            (0..8).map(|_| draw_mutation(&mut rng, &live)).collect();
        live.apply(&batch).unwrap();
    }
    assert_bit_identical(&live);
    let expected: Vec<_> = (0..3).map(|i| live.paper_scores(i).unwrap()).collect();
    drop(live);

    let replayed = LiveSnapshot::open(&path).unwrap();
    assert_bit_identical(&replayed);
    for (i, want) in expected.iter().enumerate() {
        let got = replayed.paper_scores(i).unwrap();
        for ((f, a), (_, b)) in got.iter().zip(want.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{f} changed across replay");
        }
    }

    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(circlekit_live::wal_path_for(&path));
}
