//! Crash-safety properties of the CKW1 WAL and the compaction protocol,
//! exercised through the public API on real files: a kill at *any* byte
//! boundary of the log must replay to the exact last-committed state.

use circlekit_graph::{Graph, VertexSet};
use circlekit_live::{wal_path_for, LiveError, LiveSnapshot, Mutation};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("circlekit-live-crash-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}", std::process::id(), name))
}

fn fixture() -> (Graph, Vec<VertexSet>) {
    let g = Graph::from_edges(
        false,
        [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)],
    );
    (g, vec![VertexSet::from_vec(vec![0, 1, 2, 3]), VertexSet::from_vec(vec![4, 5, 6])])
}

fn batches() -> Vec<Vec<Mutation>> {
    vec![
        vec![Mutation::AddEdge { u: 0, v: 4 }, Mutation::RemoveEdge { u: 1, v: 2 }],
        vec![Mutation::AddVertex, Mutation::AddEdge { u: 7, v: 3 }],
        vec![Mutation::AddMember { group: 1, node: 3 }, Mutation::RemoveMember { group: 0, node: 0 }],
        vec![Mutation::AddEdge { u: 2, v: 6 }],
    ]
}

/// The paper scores of every group, as raw bits, for state comparison.
fn score_bits(live: &LiveSnapshot) -> Vec<Vec<u64>> {
    (0..live.groups().len())
        .map(|g| live.paper_scores(g).unwrap().iter().map(|(_, s)| s.to_bits()).collect())
        .collect()
}

#[test]
fn replay_after_truncation_at_every_byte_matches_a_committed_prefix() {
    let snap = tmp("sweep.cks");
    let (g, groups) = fixture();
    circlekit_store::save_snapshot(&snap, &g, &groups).unwrap();

    // Build the full WAL and record the expected state after each
    // committed record count.
    let mut live = LiveSnapshot::open(&snap).unwrap();
    let mut states = vec![(score_bits(&live), live.node_count(), live.edge_count())];
    let mut flat: Vec<Mutation> = Vec::new();
    for batch in batches() {
        for &m in &batch {
            // Apply one by one so `states[k]` is the state after k records.
            live.apply(&[m]).unwrap();
            flat.push(m);
            states.push((score_bits(&live), live.node_count(), live.edge_count()));
        }
    }
    drop(live);
    let wal = wal_path_for(&snap);
    let full_wal = std::fs::read(&wal).unwrap();

    // Kill at every byte boundary: truncate a copy of the WAL there and
    // reopen. Replay must land exactly on the state after some committed
    // prefix of records — and re-opening must have repaired the log so a
    // second open agrees.
    let crash_snap = tmp("sweep-crash.cks");
    let crash_wal = wal_path_for(&crash_snap);
    for cut in 0..=full_wal.len() {
        std::fs::copy(&snap, &crash_snap).unwrap();
        std::fs::write(&crash_wal, &full_wal[..cut]).unwrap();
        if cut < 32 {
            // Inside the header nothing was ever committed: a torn
            // header is indistinguishable from a torn create. The open
            // must fail typed (never panic), and the snapshot itself
            // still opens once the torn log is removed.
            let err = LiveSnapshot::open(&crash_snap).unwrap_err();
            assert!(
                matches!(err, LiveError::WalTooShort { .. }),
                "cut {cut}: unexpected error {err}"
            );
            std::fs::remove_file(&crash_wal).unwrap();
            let live = LiveSnapshot::open(&crash_snap).unwrap();
            assert_eq!(score_bits(&live), states[0].0);
            continue;
        }
        let live = LiveSnapshot::open(&crash_snap).unwrap();
        let k = live.replayed_records();
        assert!(k <= flat.len(), "cut {cut}: replayed more records than written");
        let (bits, n, m) = &states[k];
        assert_eq!(&score_bits(&live), bits, "cut {cut}: scores diverge after replay");
        assert_eq!(live.node_count(), *n, "cut {cut}");
        assert_eq!(live.edge_count(), *m, "cut {cut}");
        drop(live);
        // The torn tail was truncated away: a second open sees a clean
        // log with the same k records.
        let again = LiveSnapshot::open(&crash_snap).unwrap();
        assert_eq!(again.replayed_records(), k, "cut {cut}: repair not idempotent");
    }

    for p in [&snap, &wal, &crash_snap, &crash_wal] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn compaction_crash_before_rename_keeps_old_snapshot_and_wal() {
    // CrashPoint::TmpWritten cannot be simulated in-process (it exits);
    // reproduce its on-disk outcome: original snapshot, intact WAL and a
    // leftover `.tmp` sibling. Recovery must replay the WAL and ignore
    // the tmp file.
    let snap = tmp("pre-rename.cks");
    let (g, groups) = fixture();
    circlekit_store::save_snapshot(&snap, &g, &groups).unwrap();

    let mut live = LiveSnapshot::open(&snap).unwrap();
    live.apply(&batches()[0]).unwrap();
    let expected = score_bits(&live);
    drop(live);

    // The fsync'd-but-unrenamed compaction output.
    let mut tmp_os = snap.clone().into_os_string();
    tmp_os.push(".tmp");
    std::fs::write(PathBuf::from(&tmp_os), b"half-finished compaction output").unwrap();

    let recovered = LiveSnapshot::open(&snap).unwrap();
    assert_eq!(recovered.replayed_records(), 2);
    assert_eq!(score_bits(&recovered), expected);

    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(wal_path_for(&snap));
    let _ = std::fs::remove_file(PathBuf::from(tmp_os));
}

#[test]
fn compaction_crash_after_rename_discards_stale_wal() {
    // CrashPoint::Renamed outcome: the compacted snapshot is in place
    // but the WAL (already folded in) survived. Its base CRC no longer
    // matches, so open must discard it rather than double-apply.
    let snap = tmp("post-rename.cks");
    let (g, groups) = fixture();
    circlekit_store::save_snapshot(&snap, &g, &groups).unwrap();

    let mut live = LiveSnapshot::open(&snap).unwrap();
    live.apply(&batches()[0]).unwrap();
    let expected = score_bits(&live);
    let n = live.node_count();
    let m = live.edge_count();

    // Perform the real compaction, then resurrect the pre-compaction WAL
    // as the crash would have left it.
    let stale_wal = std::fs::read(wal_path_for(&snap)).unwrap();
    live.compact().unwrap();
    drop(live);
    std::fs::write(wal_path_for(&snap), &stale_wal).unwrap();

    let recovered = LiveSnapshot::open(&snap).unwrap();
    assert!(recovered.discarded_stale_wal());
    assert_eq!(recovered.replayed_records(), 0);
    assert_eq!(score_bits(&recovered), expected);
    assert_eq!(recovered.node_count(), n);
    assert_eq!(recovered.edge_count(), m);
    assert!(!wal_path_for(&snap).exists(), "stale WAL must be unlinked");

    let _ = std::fs::remove_file(&snap);
}

#[test]
fn corrupt_committed_record_is_a_typed_error_not_a_replay() {
    let snap = tmp("corrupt.cks");
    let (g, groups) = fixture();
    circlekit_store::save_snapshot(&snap, &g, &groups).unwrap();

    let mut live = LiveSnapshot::open(&snap).unwrap();
    live.apply(&batches()[0]).unwrap();
    drop(live);

    let wal = wal_path_for(&snap);
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01; // flip a payload bit of a *complete* record
    std::fs::write(&wal, &bytes).unwrap();

    match LiveSnapshot::open(&snap) {
        Err(LiveError::RecordChecksum { .. }) => {}
        other => panic!("expected RecordChecksum, got {other:?}"),
    }

    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(&wal);
}
