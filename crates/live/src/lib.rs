//! Live mutation layer over CKS1 snapshots.
//!
//! The rest of the workspace treats a graph as frozen: text or snapshot
//! in, scores out. Circles, though, are owner-curated and evolve — a
//! production service cannot re-ingest a snapshot for every added edge
//! or membership change. This crate makes a loaded snapshot *mutable*
//! without giving up any of the store's guarantees:
//!
//! * [`DeltaOverlay`] layers add/remove-edge and add-vertex deltas over
//!   the read-only CSR arrays without copying them; queries merge the
//!   base adjacency slices with small sorted delta sets.
//! * [`LiveSnapshot`] additionally owns the group memberships and keeps
//!   per-group sufficient statistics (set size, internal and boundary
//!   edges, degree sums, global edge count) in lock-step with every
//!   mutation — O(deg(v)) per membership change, O(groups) per edge —
//!   so the paper's four scores (Average Degree, Ratio Cut, Conductance,
//!   Modularity) are recomputed in O(1) and **bit-identical** to a
//!   from-scratch rescore of the materialized graph.
//! * Every committed batch is first appended to a CKW1 write-ahead log
//!   (CRC-framed little-endian records, one fsync per batch; layout in
//!   `wal.rs` and DESIGN.md §12). A SIGKILL at any byte boundary
//!   replays to the exact last-committed state; [`LiveSnapshot::compact`]
//!   folds the log back into a CKS1 snapshot via atomic tmp + rename.
//!
//! ```
//! use circlekit_graph::{Graph, VertexSet};
//! use circlekit_live::{LiveSnapshot, Mutation};
//!
//! let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3)]);
//! let circles = vec![VertexSet::from_vec(vec![0, 1, 2])];
//! let mut live = LiveSnapshot::in_memory(g, circles);
//!
//! let before = live.paper_scores(0).unwrap();
//! live.apply(&[Mutation::AddEdge { u: 0, v: 2 }]).expect("in-memory apply");
//! let after = live.paper_scores(0).unwrap();
//! assert_ne!(before[0].1, after[0].1); // average degree moved
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod live;
mod mutation;
mod overlay;
mod wal;

pub use error::{LiveError, MutationError};
pub use live::{wal_path_for, ApplyOutcome, CrashPoint, LiveSnapshot};
pub use mutation::Mutation;
pub use overlay::DeltaOverlay;
