//! The mutation vocabulary: one enum, its text form and its WAL wire form.

use circlekit_graph::NodeId;

/// One atomic change to a live snapshot.
///
/// Text form (one mutation per line, `#` comments and blank lines
/// ignored — see [`Mutation::parse_line`]):
///
/// ```text
/// add-edge 3 17
/// remove-edge 3 4
/// add-vertex
/// add-member 2 17
/// remove-member 0 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the edge `u -> v` (undirected graphs: the edge `{u, v}`).
    AddEdge {
        /// Source endpoint.
        u: NodeId,
        /// Target endpoint.
        v: NodeId,
    },
    /// Delete the edge `u -> v` (undirected graphs: the edge `{u, v}`).
    RemoveEdge {
        /// Source endpoint.
        u: NodeId,
        /// Target endpoint.
        v: NodeId,
    },
    /// Append one isolated vertex; its id is the current node count.
    AddVertex,
    /// Add `node` to group `group`.
    AddMember {
        /// Group index.
        group: u32,
        /// Node id.
        node: NodeId,
    },
    /// Remove `node` from group `group`.
    RemoveMember {
        /// Group index.
        group: u32,
        /// Node id.
        node: NodeId,
    },
}

/// WAL opcodes (first payload byte of every CKW1 record).
pub(crate) mod opcode {
    pub const ADD_EDGE: u8 = 1;
    pub const REMOVE_EDGE: u8 = 2;
    pub const ADD_VERTEX: u8 = 3;
    pub const ADD_MEMBER: u8 = 4;
    pub const REMOVE_MEMBER: u8 = 5;
}

impl Mutation {
    /// Encodes the record payload: opcode byte followed by little-endian
    /// `u32` operands.
    pub(crate) fn encode(&self) -> Vec<u8> {
        fn pair(op: u8, a: u32, b: u32) -> Vec<u8> {
            let mut out = Vec::with_capacity(9);
            out.push(op);
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out
        }
        match *self {
            Mutation::AddEdge { u, v } => pair(opcode::ADD_EDGE, u, v),
            Mutation::RemoveEdge { u, v } => pair(opcode::REMOVE_EDGE, u, v),
            Mutation::AddVertex => vec![opcode::ADD_VERTEX],
            Mutation::AddMember { group, node } => pair(opcode::ADD_MEMBER, group, node),
            Mutation::RemoveMember { group, node } => pair(opcode::REMOVE_MEMBER, group, node),
        }
    }

    /// Decodes a record payload; `None` on unknown opcode or short payload
    /// (the WAL reader maps those to typed errors with the frame offset).
    pub(crate) fn decode(payload: &[u8]) -> Option<Mutation> {
        fn pair(payload: &[u8]) -> Option<(u32, u32)> {
            if payload.len() != 9 {
                return None;
            }
            let a = u32::from_le_bytes(payload[1..5].try_into().ok()?);
            let b = u32::from_le_bytes(payload[5..9].try_into().ok()?);
            Some((a, b))
        }
        let op = *payload.first()?;
        match op {
            opcode::ADD_EDGE => pair(payload).map(|(u, v)| Mutation::AddEdge { u, v }),
            opcode::REMOVE_EDGE => pair(payload).map(|(u, v)| Mutation::RemoveEdge { u, v }),
            opcode::ADD_VERTEX => (payload.len() == 1).then_some(Mutation::AddVertex),
            opcode::ADD_MEMBER => {
                pair(payload).map(|(group, node)| Mutation::AddMember { group, node })
            }
            opcode::REMOVE_MEMBER => {
                pair(payload).map(|(group, node)| Mutation::RemoveMember { group, node })
            }
            _ => None,
        }
    }

    /// Parses the one-line text form used by mutation scripts
    /// (`circlekit live apply --script`). Blank lines and lines starting
    /// with `#` yield `Ok(None)`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line.
    pub fn parse_line(line: &str) -> Result<Option<Mutation>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let mut arg = |name: &str| -> Result<u32, String> {
            parts
                .next()
                .ok_or_else(|| format!("{op}: missing {name}"))?
                .parse::<u32>()
                .map_err(|_| format!("{op}: {name} is not a non-negative integer"))
        };
        let parsed = match op {
            "add-edge" => Mutation::AddEdge { u: arg("source")?, v: arg("target")? },
            "remove-edge" => Mutation::RemoveEdge { u: arg("source")?, v: arg("target")? },
            "add-vertex" => Mutation::AddVertex,
            "add-member" => Mutation::AddMember { group: arg("group")?, node: arg("node")? },
            "remove-member" => Mutation::RemoveMember { group: arg("group")?, node: arg("node")? },
            other => return Err(format!("unknown mutation '{other}'")),
        };
        if parts.next().is_some() {
            return Err(format!("{op}: trailing tokens"));
        }
        Ok(Some(parsed))
    }

    /// Renders the one-line text form parsed by [`Mutation::parse_line`].
    pub fn to_line(&self) -> String {
        match *self {
            Mutation::AddEdge { u, v } => format!("add-edge {u} {v}"),
            Mutation::RemoveEdge { u, v } => format!("remove-edge {u} {v}"),
            Mutation::AddVertex => "add-vertex".to_string(),
            Mutation::AddMember { group, node } => format!("add-member {group} {node}"),
            Mutation::RemoveMember { group, node } => format!("remove-member {group} {node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let all = [
            Mutation::AddEdge { u: 3, v: 17 },
            Mutation::RemoveEdge { u: 0, v: u32::MAX },
            Mutation::AddVertex,
            Mutation::AddMember { group: 2, node: 9 },
            Mutation::RemoveMember { group: 0, node: 0 },
        ];
        for m in all {
            assert_eq!(Mutation::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Mutation::decode(&[]), None);
        assert_eq!(Mutation::decode(&[99]), None);
        assert_eq!(Mutation::decode(&[opcode::ADD_EDGE, 1, 2]), None); // short
        assert_eq!(Mutation::decode(&[opcode::ADD_VERTEX, 0]), None); // long
    }

    #[test]
    fn parse_line_roundtrip() {
        for text in ["add-edge 3 17", "remove-edge 3 4", "add-vertex", "add-member 2 17"] {
            let m = Mutation::parse_line(text).unwrap().unwrap();
            assert_eq!(m.to_line(), text);
        }
    }

    #[test]
    fn parse_line_skips_comments_and_blanks() {
        assert_eq!(Mutation::parse_line("").unwrap(), None);
        assert_eq!(Mutation::parse_line("  # add-edge 1 2").unwrap(), None);
    }

    #[test]
    fn parse_line_reports_malformed_input() {
        assert!(Mutation::parse_line("add-edge 1").is_err());
        assert!(Mutation::parse_line("add-edge 1 x").is_err());
        assert!(Mutation::parse_line("add-vertex 1").is_err());
        assert!(Mutation::parse_line("drop-table users").is_err());
        assert!(Mutation::parse_line("add-edge 1 2 3").is_err());
    }
}
