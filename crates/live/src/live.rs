//! [`LiveSnapshot`]: a snapshot plus overlay, aggregates and WAL.

use crate::error::{LiveError, MutationError};
use crate::mutation::Mutation;
use crate::overlay::DeltaOverlay;
use crate::wal::{read_wal, scan_frames, sync_parent_dir, WalHeader, WalWriter, WAL_HEADER_LEN};
use circlekit_graph::{Graph, NodeId, VertexSet};
use circlekit_scoring::{ScoringFunction, SetStats};
use circlekit_store::{crc32, decode_snapshot, write_snapshot};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The per-group sufficient statistics maintained incrementally: exactly
/// the [`SetStats`] fields the paper's four scoring functions read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Aggregate {
    n_c: usize,
    /// Internal edges (undirected) / arcs (directed), matching the
    /// host-graph convention of [`SetStats`].
    m_c: usize,
    /// Boundary edges/arcs, each counted once.
    c_c: usize,
    out_degree_sum: usize,
    in_degree_sum: usize,
}

impl Aggregate {
    /// Computes the aggregate of `set` in `graph` from scratch — the same
    /// single pass as [`SetStats::compute`], minus the fields the live
    /// layer does not maintain.
    fn compute(graph: &Graph, set: &VertexSet) -> Aggregate {
        let mut internal_arcs = 0usize;
        let mut c_c = 0usize;
        let mut out_degree_sum = 0usize;
        let mut in_degree_sum = 0usize;
        for v in set.iter() {
            for &w in graph.out_neighbors(v) {
                if set.contains(w) {
                    internal_arcs += 1;
                } else {
                    c_c += 1;
                }
            }
            if graph.is_directed() {
                for &w in graph.in_neighbors(v) {
                    if set.contains(w) {
                        internal_arcs += 1;
                    } else {
                        c_c += 1;
                    }
                }
            }
            out_degree_sum += graph.out_degree(v);
            in_degree_sum += graph.in_degree(v);
        }
        debug_assert_eq!(internal_arcs % 2, 0);
        Aggregate { n_c: set.len(), m_c: internal_arcs / 2, c_c, out_degree_sum, in_degree_sum }
    }
}

/// Outcome of applying a batch of mutations: how many of them were
/// applied (a prefix — application stops at the first rejection), and
/// the rejection, if any, with its index in the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Number of leading mutations applied (and, for durable snapshots,
    /// committed to the WAL).
    pub applied: usize,
    /// The first rejected mutation, as `(index_in_batch, error)`.
    /// Everything before it is applied; everything after it is not.
    pub rejected: Option<(usize, MutationError)>,
}

/// Where to simulate a crash inside [`LiveSnapshot::compact_with_crash_point`]
/// — the process exits with status 137 (the SIGKILL status) at the chosen
/// point, leaving the on-disk state exactly as a real kill would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the compacted snapshot is written and fsync'd under its
    /// temporary name, before the rename: the original snapshot and the
    /// WAL are both intact.
    TmpWritten,
    /// After the rename of the compacted snapshot into place, before the
    /// WAL is unlinked: the WAL is stale (its base CRC no longer matches).
    Renamed,
}

impl CrashPoint {
    /// Parses the `--crash-point` CLI value.
    pub fn from_name(name: &str) -> Option<CrashPoint> {
        match name {
            "tmp-written" => Some(CrashPoint::TmpWritten),
            "renamed" => Some(CrashPoint::Renamed),
            _ => None,
        }
    }
}

/// A CKS1 snapshot opened for mutation: base graph + [`DeltaOverlay`] +
/// mutable group memberships + per-group [`Aggregate`]s, all kept in
/// lock-step by [`LiveSnapshot::apply`], with an optional CKW1 WAL
/// making every committed batch durable.
#[derive(Debug)]
pub struct LiveSnapshot {
    snapshot_path: Option<PathBuf>,
    wal_path: Option<PathBuf>,
    base: Graph,
    /// CRC-32 of the snapshot file backing `base` (0 for in-memory).
    base_crc: u32,
    overlay: DeltaOverlay,
    groups: Vec<VertexSet>,
    aggs: Vec<Aggregate>,
    wal: Option<WalWriter>,
    wal_records: usize,
    /// Committed record bytes past the 32-byte WAL header — the
    /// replication stream position. 0 when no WAL exists (or in memory).
    wal_offset: u64,
    replayed: usize,
    discarded_stale_wal: bool,
}

impl LiveSnapshot {
    /// Opens the snapshot at `path` for mutation. If a WAL
    /// (`<path>.ckw`) is present its committed records are replayed —
    /// after a crash this restores the exact last-committed state — and
    /// any torn tail is truncated away. A WAL whose base CRC does not
    /// match the snapshot is stale (see [`CrashPoint::Renamed`]) and is
    /// discarded.
    ///
    /// # Errors
    ///
    /// Snapshot decode failures ([`LiveError::Store`]), WAL corruption
    /// (typed per defect) and I/O errors.
    pub fn open(path: impl AsRef<Path>) -> Result<LiveSnapshot, LiveError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let snap = decode_snapshot(&bytes)?;
        let base_crc = crc32(&bytes);
        let wal_path = wal_path_for(path);

        let mut live = LiveSnapshot {
            snapshot_path: Some(path.to_path_buf()),
            wal_path: Some(wal_path.clone()),
            base_crc,
            overlay: DeltaOverlay::new(&snap.graph),
            aggs: snap.groups.iter().map(|g| Aggregate::compute(&snap.graph, g)).collect(),
            base: snap.graph,
            groups: snap.groups,
            wal: None,
            wal_records: 0,
            wal_offset: 0,
            replayed: 0,
            discarded_stale_wal: false,
        };

        if wal_path.exists() {
            let scan = read_wal(&wal_path)?;
            if scan.header.base_crc != base_crc {
                // Compaction renamed the folded snapshot into place but
                // died before unlinking the log: every record in it is
                // already part of `base`.
                std::fs::remove_file(&wal_path)?;
                sync_parent_dir(&wal_path)?;
                live.discarded_stale_wal = true;
            } else {
                for (i, m) in scan.records.iter().enumerate() {
                    live.apply_unlogged(*m)
                        .map_err(|error| LiveError::ReplayRejected { record: i, error })?;
                }
                live.replayed = scan.records.len();
                live.wal_records = scan.records.len();
                live.wal_offset = scan.valid_len - WAL_HEADER_LEN as u64;
                live.wal = Some(WalWriter::open_at(&wal_path, scan.valid_len)?);
            }
        }
        Ok(live)
    }

    /// Wraps an already-loaded graph + groups without any backing file:
    /// mutations are applied in memory only (no WAL, no compaction).
    pub fn in_memory(graph: Graph, groups: Vec<VertexSet>) -> LiveSnapshot {
        LiveSnapshot {
            snapshot_path: None,
            wal_path: None,
            base_crc: 0,
            overlay: DeltaOverlay::new(&graph),
            aggs: groups.iter().map(|g| Aggregate::compute(&graph, g)).collect(),
            base: graph,
            groups,
            wal: None,
            wal_records: 0,
            wal_offset: 0,
            replayed: 0,
            discarded_stale_wal: false,
        }
    }

    /// Whether the composed graph is directed.
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// Nodes in the composed graph.
    pub fn node_count(&self) -> usize {
        self.overlay.node_count()
    }

    /// Edges (undirected) / arcs (directed) in the composed graph.
    pub fn edge_count(&self) -> usize {
        self.overlay.edge_count(&self.base)
    }

    /// The registered groups with all membership mutations applied.
    pub fn groups(&self) -> &[VertexSet] {
        &self.groups
    }

    /// The base graph the overlay composes over (the snapshot as loaded).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The delta overlay itself (read-only).
    pub fn overlay(&self) -> &DeltaOverlay {
        &self.overlay
    }

    /// Records replayed from the WAL when this snapshot was opened.
    pub fn replayed_records(&self) -> usize {
        self.replayed
    }

    /// Records currently committed in the WAL.
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    /// CRC-32 of the snapshot file backing the base graph (0 for
    /// in-memory snapshots). Replication subscribers present this in
    /// their handshake to prove they replicate the same history.
    pub fn base_crc(&self) -> u32 {
        self.base_crc
    }

    /// Committed record bytes past the WAL header — the replication
    /// stream position. Two live snapshots with equal [`base_crc`]
    /// (`self.base_crc()`) and equal `wal_offset` hold byte-identical
    /// WALs and therefore identical composed state.
    pub fn wal_offset(&self) -> u64 {
        self.wal_offset
    }

    /// The committed WAL record bytes from `offset` (bytes past the
    /// header) to the current [`LiveSnapshot::wal_offset`], verbatim —
    /// whole CRC-framed records, suitable for shipping to a replica's
    /// [`LiveSnapshot::apply_replicated`].
    ///
    /// # Errors
    ///
    /// [`LiveError::BadReplicationOffset`] if `offset` is beyond the
    /// committed length or does not land on a frame boundary; I/O and
    /// corruption errors reading the WAL back.
    pub fn replication_frames_from(&self, offset: u64) -> Result<Vec<u8>, LiveError> {
        if offset > self.wal_offset {
            return Err(LiveError::BadReplicationOffset {
                offset,
                committed: self.wal_offset,
            });
        }
        if offset == self.wal_offset {
            return Ok(Vec::new());
        }
        let wal_path = self.wal_path.as_ref().ok_or_else(|| {
            LiveError::Io(std::io::Error::other("in-memory snapshot has no WAL to replicate"))
        })?;
        let bytes = std::fs::read(wal_path)?;
        let end = WAL_HEADER_LEN + self.wal_offset as usize;
        if bytes.len() < end {
            return Err(LiveError::WalTooShort { len: bytes.len() as u64 });
        }
        let records = &bytes[WAL_HEADER_LEN..end];
        // `offset` must be a frame boundary: the longest clean frame run
        // inside the prefix must consume it exactly.
        let (_, consumed) = scan_frames(&records[..offset as usize], WAL_HEADER_LEN as u64, true)?;
        if consumed != offset {
            return Err(LiveError::BadReplicationOffset {
                offset,
                committed: self.wal_offset,
            });
        }
        // The shipped tail must itself be whole, valid frames.
        scan_frames(&records[offset as usize..], WAL_HEADER_LEN as u64 + offset, false)?;
        Ok(records[offset as usize..].to_vec())
    }

    /// Applies a batch of raw CRC-framed WAL records received from a
    /// primary: validates the *whole* batch first (a torn or corrupt
    /// batch applies nothing), applies every record, then appends the
    /// bytes verbatim to this snapshot's WAL — so a replica's WAL is a
    /// byte-identical prefix of the primary's at every acked offset.
    /// Returns the number of records applied.
    ///
    /// # Errors
    ///
    /// [`LiveError::TornReplicationBatch`] if the batch ends mid-frame,
    /// [`LiveError::RecordChecksum`] / decode errors on corruption
    /// (nothing applied in all three cases), and
    /// [`LiveError::ReplayRejected`] if a record does not apply — the
    /// streams have diverged, which only corruption can cause.
    pub fn apply_replicated(&mut self, frames: &[u8]) -> Result<usize, LiveError> {
        let (records, consumed) = scan_frames(frames, 0, false)?;
        debug_assert_eq!(consumed, frames.len() as u64);
        for (i, m) in records.iter().enumerate() {
            self.apply_unlogged(*m)
                .map_err(|error| LiveError::ReplayRejected { record: i, error })?;
        }
        if !records.is_empty() && self.wal_path.is_some() {
            self.ensure_wal()?;
            let written =
                self.wal.as_mut().expect("ensure_wal just opened it").append_raw(frames)?;
            self.wal_offset += written;
            self.wal_records += records.len();
        }
        Ok(records.len())
    }

    /// Whether `open` found and discarded a stale WAL (left behind by a
    /// crash between compaction's rename and WAL unlink).
    pub fn discarded_stale_wal(&self) -> bool {
        self.discarded_stale_wal
    }

    /// Applies a batch of mutations in order, stopping at the first
    /// rejection. The applied prefix — and only it — is committed to the
    /// WAL as one fsync'd batch before this returns.
    ///
    /// # Errors
    ///
    /// Only I/O / WAL failures surface as `Err`; per-mutation rejections
    /// are data, reported in [`ApplyOutcome::rejected`].
    pub fn apply(&mut self, mutations: &[Mutation]) -> Result<ApplyOutcome, LiveError> {
        let mut applied = 0usize;
        let mut rejected = None;
        for (i, m) in mutations.iter().enumerate() {
            match self.apply_unlogged(*m) {
                Ok(()) => applied += 1,
                Err(e) => {
                    rejected = Some((i, e));
                    break;
                }
            }
        }
        if applied > 0 && self.wal_path.is_some() {
            self.ensure_wal()?;
            let written = self
                .wal
                .as_mut()
                .expect("ensure_wal just opened it")
                .append(&mutations[..applied])?;
            self.wal_offset += written;
            self.wal_records += applied;
        }
        Ok(ApplyOutcome { applied, rejected })
    }

    fn ensure_wal(&mut self) -> Result<(), LiveError> {
        if self.wal.is_none() {
            let path = self.wal_path.as_ref().expect("caller checked wal_path");
            let header = WalHeader {
                directed: self.base.is_directed(),
                base_crc: self.base_crc,
                base_nodes: self.base.node_count() as u64,
                base_edges: self.base.edge_count() as u64,
            };
            self.wal = Some(WalWriter::create(path, header)?);
        }
        Ok(())
    }

    /// Validates and applies one mutation to the overlay, groups and
    /// aggregates, without logging. Rejection leaves every structure
    /// untouched.
    fn apply_unlogged(&mut self, m: Mutation) -> Result<(), MutationError> {
        match m {
            Mutation::AddEdge { u, v } => {
                self.overlay.add_edge(&self.base, u, v)?;
                self.edge_delta(u, v, true);
            }
            Mutation::RemoveEdge { u, v } => {
                self.overlay.remove_edge(&self.base, u, v)?;
                self.edge_delta(u, v, false);
            }
            Mutation::AddVertex => {
                self.overlay.add_vertex();
            }
            Mutation::AddMember { group, node } => {
                let g = self.check_group(group)?;
                self.check_node(node)?;
                if self.groups[g].contains(node) {
                    return Err(MutationError::AlreadyMember { group, node });
                }
                // Membership effects are measured against the set
                // *without* the node, so insert after scanning.
                let (int_out, int_in, deg_out, deg_in) = self.membership_scan(g, node);
                let agg = &mut self.aggs[g];
                agg.n_c += 1;
                agg.m_c += int_out + int_in;
                agg.c_c = agg.c_c + (deg_out - int_out) + (deg_in - int_in) - (int_out + int_in);
                if self.base.is_directed() {
                    agg.out_degree_sum += deg_out;
                    agg.in_degree_sum += deg_in;
                } else {
                    agg.out_degree_sum += deg_out;
                    agg.in_degree_sum += deg_out;
                }
                self.groups[g].insert(node);
            }
            Mutation::RemoveMember { group, node } => {
                let g = self.check_group(group)?;
                if !self.groups[g].contains(node) {
                    return Err(MutationError::NotMember { group, node });
                }
                // Remove first so the scan sees the set without the node —
                // the exact inverse of AddMember.
                self.groups[g].remove(node);
                let (int_out, int_in, deg_out, deg_in) = self.membership_scan(g, node);
                let agg = &mut self.aggs[g];
                agg.n_c -= 1;
                agg.m_c -= int_out + int_in;
                agg.c_c = agg.c_c + (int_out + int_in) - (deg_out - int_out) - (deg_in - int_in);
                if self.base.is_directed() {
                    agg.out_degree_sum -= deg_out;
                    agg.in_degree_sum -= deg_in;
                } else {
                    agg.out_degree_sum -= deg_out;
                    agg.in_degree_sum -= deg_out;
                }
            }
        }
        Ok(())
    }

    /// Scans `node`'s adjacency in the composed graph against group `g`:
    /// `(internal out-arcs, internal in-arcs, out-degree, in-degree)`.
    /// For undirected graphs the `in` components are zero and `deg_out`
    /// is the total degree — O(deg(node)).
    fn membership_scan(&self, g: usize, node: NodeId) -> (usize, usize, usize, usize) {
        let set = &self.groups[g];
        let mut int_out = 0usize;
        let mut deg_out = 0usize;
        for w in self.overlay.out_neighbors(&self.base, node) {
            deg_out += 1;
            if set.contains(w) {
                int_out += 1;
            }
        }
        let (mut int_in, mut deg_in) = (0usize, 0usize);
        if self.base.is_directed() {
            for w in self.overlay.in_neighbors(&self.base, node) {
                deg_in += 1;
                if set.contains(w) {
                    int_in += 1;
                }
            }
        }
        (int_out, int_in, deg_out, deg_in)
    }

    /// Aggregate updates for inserting (`insert = true`) or deleting the
    /// edge `u -> v`, applied to every registered group — O(1) each.
    fn edge_delta(&mut self, u: NodeId, v: NodeId, insert: bool) {
        let directed = self.base.is_directed();
        for (set, agg) in self.groups.iter().zip(self.aggs.iter_mut()) {
            let u_in = set.contains(u);
            let v_in = set.contains(v);
            if !u_in && !v_in {
                continue;
            }
            let (m_d, c_d) = if u_in && v_in { (1, 0) } else { (0, 1) };
            let (out_d, in_d) = if directed {
                (usize::from(u_in), usize::from(v_in))
            } else {
                // Undirected degree sums count total degree for both
                // endpoints, on both the out and in side.
                let both = usize::from(u_in) + usize::from(v_in);
                (both, both)
            };
            if insert {
                agg.m_c += m_d;
                agg.c_c += c_d;
                agg.out_degree_sum += out_d;
                agg.in_degree_sum += in_d;
            } else {
                agg.m_c -= m_d;
                agg.c_c -= c_d;
                agg.out_degree_sum -= out_d;
                agg.in_degree_sum -= in_d;
            }
        }
    }

    fn check_group(&self, group: u32) -> Result<usize, MutationError> {
        let g = group as usize;
        if g >= self.groups.len() {
            return Err(MutationError::GroupOutOfRange { group, group_count: self.groups.len() });
        }
        Ok(g)
    }

    fn check_node(&self, node: NodeId) -> Result<(), MutationError> {
        if (node as usize) >= self.node_count() {
            return Err(MutationError::NodeOutOfRange { node, node_count: self.node_count() });
        }
        Ok(())
    }

    /// The maintained statistics of group `group`, shaped as a
    /// [`SetStats`]. Only the fields the paper's four functions read
    /// (`n`, `m`, `directed`, `n_c`, `m_c`, `c_c` and the degree sums)
    /// are populated; the rest are zero. Feeding this to
    /// [`ScoringFunction::score`] for Average Degree, Ratio Cut,
    /// Conductance or Modularity yields bits identical to a from-scratch
    /// [`SetStats::compute`] on the materialized graph.
    pub fn set_stats(&self, group: usize) -> Option<SetStats> {
        let agg = self.aggs.get(group)?;
        Some(SetStats {
            n: self.node_count(),
            m: self.edge_count(),
            directed: self.base.is_directed(),
            n_c: agg.n_c,
            m_c: agg.m_c,
            c_c: agg.c_c,
            out_degree_sum: agg.out_degree_sum,
            in_degree_sum: agg.in_degree_sum,
            above_median_internal: 0,
            in_internal_triangle: 0,
            max_odf: 0.0,
            avg_odf: 0.0,
            flake_odf: 0.0,
        })
    }

    /// The paper's four scores of group `group`, recomputed from the
    /// maintained aggregates in O(1).
    pub fn paper_scores(&self, group: usize) -> Option<[(ScoringFunction, f64); 4]> {
        let stats = self.set_stats(group)?;
        Some(ScoringFunction::PAPER.map(|f| (f, f.score(&stats))))
    }

    /// Builds a standalone [`Graph`] equal to the composed graph.
    pub fn materialize(&self) -> Graph {
        self.overlay.materialize(&self.base)
    }

    /// Folds the overlay and WAL into a fresh CKS1 snapshot: write to a
    /// temporary sibling, fsync, atomically rename over the snapshot,
    /// fsync the directory, then unlink the WAL. A kill at any point
    /// leaves either the old snapshot + replayable WAL or the new
    /// snapshot (+ a stale WAL that [`LiveSnapshot::open`] discards) —
    /// never a torn file. Afterwards the overlay is empty and the WAL
    /// is gone; state is unchanged.
    ///
    /// # Errors
    ///
    /// [`LiveError::Store`] if this snapshot is in-memory (no backing
    /// path — reported as an I/O error) or packing fails; I/O errors
    /// otherwise.
    pub fn compact(&mut self) -> Result<(), LiveError> {
        self.compact_with_crash_point(None)
    }

    /// [`LiveSnapshot::compact`] with a deterministic simulated kill for
    /// crash-recovery tests; see [`CrashPoint`].
    pub fn compact_with_crash_point(
        &mut self,
        crash: Option<CrashPoint>,
    ) -> Result<(), LiveError> {
        let snapshot_path = self
            .snapshot_path
            .clone()
            .ok_or_else(|| {
                LiveError::Io(std::io::Error::other("in-memory snapshot cannot be compacted"))
            })?;
        let graph = self.materialize();

        let mut tmp_os = snapshot_path.clone().into_os_string();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            write_snapshot(&graph, &self.groups, &mut writer)?;
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        if crash == Some(CrashPoint::TmpWritten) {
            std::process::exit(137);
        }

        std::fs::rename(&tmp, &snapshot_path)?;
        sync_parent_dir(&snapshot_path)?;
        if crash == Some(CrashPoint::Renamed) {
            std::process::exit(137);
        }

        self.wal = None; // close before unlink
        if let Some(wal_path) = &self.wal_path {
            if wal_path.exists() {
                std::fs::remove_file(wal_path)?;
                sync_parent_dir(wal_path)?;
            }
        }
        self.wal_records = 0;
        self.wal_offset = 0;

        // Same composed graph, now the base; aggregates are untouched.
        self.base_crc = crc32(&std::fs::read(&snapshot_path)?);
        self.overlay = DeltaOverlay::new(&graph);
        self.base = graph;
        Ok(())
    }
}

/// The WAL path adjacent to a snapshot: `<snapshot>.ckw`.
pub fn wal_path_for(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.to_path_buf().into_os_string();
    os.push(".ckw");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_scoring::Scorer;

    fn fixture() -> (Graph, Vec<VertexSet>) {
        // 4-clique {0,1,2,3} with a tail 3-4-5 and a spare node 6.
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)],
        );
        let groups = vec![VertexSet::from_vec(vec![0, 1, 2, 3]), VertexSet::from_vec(vec![4, 5])];
        (g, groups)
    }

    fn assert_matches_rescore(live: &LiveSnapshot) {
        let graph = live.materialize();
        let mut scorer = Scorer::new(&graph);
        for (i, set) in live.groups().iter().enumerate() {
            let full = scorer.stats(set);
            let inc = live.set_stats(i).unwrap();
            assert_eq!(
                (inc.n, inc.m, inc.n_c, inc.m_c, inc.c_c, inc.out_degree_sum, inc.in_degree_sum),
                (
                    full.n,
                    full.m,
                    full.n_c,
                    full.m_c,
                    full.c_c,
                    full.out_degree_sum,
                    full.in_degree_sum
                ),
                "aggregate mismatch for group {i}"
            );
            for f in ScoringFunction::PAPER {
                assert_eq!(
                    f.score(&inc).to_bits(),
                    f.score(&full).to_bits(),
                    "{f} diverged for group {i}"
                );
            }
        }
    }

    #[test]
    fn in_memory_apply_maintains_aggregates() {
        let (g, groups) = fixture();
        let mut live = LiveSnapshot::in_memory(g, groups);
        assert_matches_rescore(&live);
        let outcome = live
            .apply(&[
                Mutation::AddEdge { u: 0, v: 4 },
                Mutation::RemoveEdge { u: 1, v: 2 },
                Mutation::AddVertex,
                Mutation::AddMember { group: 1, node: 6 },
                Mutation::RemoveMember { group: 0, node: 3 },
                Mutation::AddEdge { u: 7, v: 3 },
            ])
            .unwrap();
        assert_eq!(outcome, ApplyOutcome { applied: 6, rejected: None });
        assert_eq!(live.node_count(), 8);
        assert_matches_rescore(&live);
    }

    #[test]
    fn batch_stops_at_first_rejection() {
        let (g, groups) = fixture();
        let mut live = LiveSnapshot::in_memory(g, groups);
        let outcome = live
            .apply(&[
                Mutation::AddEdge { u: 0, v: 4 },
                Mutation::AddEdge { u: 0, v: 4 }, // duplicate
                Mutation::AddEdge { u: 0, v: 5 }, // never reached
            ])
            .unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.rejected, Some((1, MutationError::EdgeExists { u: 0, v: 4 })));
        assert!(!live.overlay().has_edge(live.base(), 0, 5));
        assert_matches_rescore(&live);
    }

    #[test]
    fn membership_rejections_are_typed() {
        let (g, groups) = fixture();
        let mut live = LiveSnapshot::in_memory(g, groups);
        let mut reject = |m: Mutation| live.apply(&[m]).unwrap().rejected.unwrap().1;
        assert_eq!(
            reject(Mutation::AddMember { group: 9, node: 0 }),
            MutationError::GroupOutOfRange { group: 9, group_count: 2 }
        );
        assert_eq!(
            reject(Mutation::AddMember { group: 0, node: 99 }),
            MutationError::NodeOutOfRange { node: 99, node_count: 7 }
        );
        assert_eq!(
            reject(Mutation::AddMember { group: 0, node: 3 }),
            MutationError::AlreadyMember { group: 0, node: 3 }
        );
        assert_eq!(
            reject(Mutation::RemoveMember { group: 1, node: 3 }),
            MutationError::NotMember { group: 1, node: 3 }
        );
    }

    #[test]
    fn directed_aggregates_match_rescore() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 3), (4, 1)]);
        let groups = vec![VertexSet::from_vec(vec![0, 1, 2])];
        let mut live = LiveSnapshot::in_memory(g, groups);
        assert_matches_rescore(&live);
        live.apply(&[
            Mutation::AddEdge { u: 3, v: 2 },
            Mutation::AddMember { group: 0, node: 4 },
            Mutation::RemoveEdge { u: 2, v: 0 },
            Mutation::RemoveMember { group: 0, node: 1 },
        ])
        .unwrap();
        assert_matches_rescore(&live);
    }

    #[test]
    fn wal_persists_and_replays() {
        let dir = std::env::temp_dir().join("circlekit-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("replay-{}.cks", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(wal_path_for(&path));

        let (g, groups) = fixture();
        circlekit_store::save_snapshot(&path, &g, &groups).unwrap();

        let muts = [
            Mutation::AddEdge { u: 0, v: 4 },
            Mutation::AddMember { group: 1, node: 6 },
            Mutation::RemoveEdge { u: 0, v: 1 },
        ];
        let mut live = LiveSnapshot::open(&path).unwrap();
        live.apply(&muts).unwrap();
        let expect: Vec<_> = (0..2).map(|i| live.paper_scores(i).unwrap()).collect();
        drop(live);

        // A fresh open replays the WAL to the same state.
        let reopened = LiveSnapshot::open(&path).unwrap();
        assert_eq!(reopened.replayed_records(), 3);
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&reopened.paper_scores(i).unwrap(), want);
        }
        assert_matches_rescore(&reopened);

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(wal_path_for(&path)).unwrap();
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let dir = std::env::temp_dir().join("circlekit-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("compact-{}.cks", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(wal_path_for(&path));

        let (g, groups) = fixture();
        circlekit_store::save_snapshot(&path, &g, &groups).unwrap();

        let mut live = LiveSnapshot::open(&path).unwrap();
        live.apply(&[Mutation::AddEdge { u: 0, v: 4 }, Mutation::AddVertex]).unwrap();
        let expect = live.paper_scores(0).unwrap();
        live.compact().unwrap();
        assert!(!wal_path_for(&path).exists());
        assert_eq!(live.wal_records(), 0);
        assert_eq!(live.paper_scores(0).unwrap(), expect);

        // The snapshot on disk now *is* the mutated graph.
        let reopened = LiveSnapshot::open(&path).unwrap();
        assert_eq!(reopened.replayed_records(), 0);
        assert_eq!(reopened.node_count(), 8);
        assert_eq!(reopened.paper_scores(0).unwrap(), expect);
        assert_matches_rescore(&reopened);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replication_ships_byte_identical_wal() {
        let dir = std::env::temp_dir().join("circlekit-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let primary = dir.join(format!("repl-primary-{}.cks", std::process::id()));
        let replica = dir.join(format!("repl-replica-{}.cks", std::process::id()));
        for p in [&primary, &replica] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(wal_path_for(p));
        }

        let (g, groups) = fixture();
        circlekit_store::save_snapshot(&primary, &g, &groups).unwrap();
        std::fs::copy(&primary, &replica).unwrap();

        let mut p = LiveSnapshot::open(&primary).unwrap();
        let mut r = LiveSnapshot::open(&replica).unwrap();
        assert_eq!(p.base_crc(), r.base_crc());
        assert_eq!((p.wal_offset(), r.wal_offset()), (0, 0));
        assert!(p.replication_frames_from(0).unwrap().is_empty());

        // First batch ships, second ships from the replica's offset.
        p.apply(&[Mutation::AddEdge { u: 0, v: 4 }, Mutation::AddVertex]).unwrap();
        let frames = p.replication_frames_from(r.wal_offset()).unwrap();
        assert_eq!(r.apply_replicated(&frames).unwrap(), 2);
        assert_eq!(r.wal_offset(), p.wal_offset());

        p.apply(&[Mutation::AddMember { group: 1, node: 6 }]).unwrap();
        let frames = p.replication_frames_from(r.wal_offset()).unwrap();
        assert_eq!(r.apply_replicated(&frames).unwrap(), 1);
        assert_eq!(r.wal_offset(), p.wal_offset());

        for i in 0..2 {
            assert_eq!(r.paper_scores(i).unwrap(), p.paper_scores(i).unwrap());
        }
        assert_matches_rescore(&r);
        assert_eq!(
            std::fs::read(wal_path_for(&primary)).unwrap(),
            std::fs::read(wal_path_for(&replica)).unwrap(),
            "replica WAL must be byte-identical to the primary's"
        );

        // A replica restart replays its own WAL back to the same offset.
        drop(r);
        let reopened = LiveSnapshot::open(&replica).unwrap();
        assert_eq!(reopened.wal_offset(), p.wal_offset());
        assert_eq!(reopened.replayed_records(), 3);

        for path in [&primary, &replica] {
            std::fs::remove_file(path).unwrap();
            std::fs::remove_file(wal_path_for(path)).unwrap();
        }
    }

    #[test]
    fn replication_offsets_are_validated() {
        let dir = std::env::temp_dir().join("circlekit-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("repl-offsets-{}.cks", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(wal_path_for(&path));

        let (g, groups) = fixture();
        circlekit_store::save_snapshot(&path, &g, &groups).unwrap();
        let mut live = LiveSnapshot::open(&path).unwrap();
        live.apply(&[Mutation::AddEdge { u: 0, v: 4 }, Mutation::AddVertex]).unwrap();
        let committed = live.wal_offset();

        // Past the end.
        assert!(matches!(
            live.replication_frames_from(committed + 1),
            Err(LiveError::BadReplicationOffset { offset, .. }) if offset == committed + 1
        ));
        // Mid-frame.
        assert!(matches!(
            live.replication_frames_from(3),
            Err(LiveError::BadReplicationOffset { offset: 3, .. })
        ));

        // A torn batch applies nothing on the replica side.
        let (g2, groups2) = fixture();
        let mut replica = LiveSnapshot::in_memory(g2, groups2);
        let frames = live.replication_frames_from(0).unwrap();
        let torn = &frames[..frames.len() - 1];
        assert!(matches!(
            replica.apply_replicated(torn),
            Err(LiveError::TornReplicationBatch { .. })
        ));
        assert_eq!(replica.node_count(), 7, "torn batch must apply nothing");
        assert_eq!(replica.apply_replicated(&frames).unwrap(), 2);
        assert_eq!(replica.node_count(), 8);

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(wal_path_for(&path)).unwrap();
    }

    #[test]
    fn stale_wal_is_discarded() {
        let dir = std::env::temp_dir().join("circlekit-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stale-{}.cks", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(wal_path_for(&path));

        let (g, groups) = fixture();
        circlekit_store::save_snapshot(&path, &g, &groups).unwrap();

        // A WAL against a *different* base CRC (as a crash between
        // compaction's rename and unlink leaves behind).
        let header = WalHeader { directed: false, base_crc: 1, base_nodes: 7, base_edges: 9 };
        let mut w = WalWriter::create(&wal_path_for(&path), header).unwrap();
        w.append(&[Mutation::AddEdge { u: 0, v: 4 }]).unwrap();
        drop(w);

        let live = LiveSnapshot::open(&path).unwrap();
        assert!(live.discarded_stale_wal());
        assert!(!wal_path_for(&path).exists());
        assert_eq!(live.replayed_records(), 0);
        assert_eq!(live.edge_count(), 9);

        std::fs::remove_file(&path).unwrap();
    }
}
