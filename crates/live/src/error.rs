//! Typed failure modes of the live mutation layer.

use circlekit_store::StoreError;
use std::fmt;
use std::io;

/// Why a single [`Mutation`](crate::Mutation) was rejected.
///
/// Rejection is stateless: nothing is applied and nothing is logged for
/// the failing mutation, so the in-memory state and the WAL stay
/// consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The edge to add is already present.
    EdgeExists {
        /// Source endpoint.
        u: u32,
        /// Target endpoint.
        v: u32,
    },
    /// The edge to remove is not present.
    EdgeMissing {
        /// Source endpoint.
        u: u32,
        /// Target endpoint.
        v: u32,
    },
    /// Self-loops are dropped at ingestion and cannot be added live.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// An endpoint or member is not a node of the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Current number of nodes.
        node_count: usize,
    },
    /// The group index does not name a registered group.
    GroupOutOfRange {
        /// The offending group index.
        group: u32,
        /// Current number of groups.
        group_count: usize,
    },
    /// The node is already a member of the group.
    AlreadyMember {
        /// Group index.
        group: u32,
        /// Node id.
        node: u32,
    },
    /// The node is not a member of the group.
    NotMember {
        /// Group index.
        group: u32,
        /// Node id.
        node: u32,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::EdgeExists { u, v } => {
                write!(f, "edge {u} -> {v} already exists")
            }
            MutationError::EdgeMissing { u, v } => {
                write!(f, "edge {u} -> {v} does not exist")
            }
            MutationError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not representable")
            }
            MutationError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            MutationError::GroupOutOfRange { group, group_count } => {
                write!(f, "group {group} out of range ({group_count} groups registered)")
            }
            MutationError::AlreadyMember { group, node } => {
                write!(f, "node {node} is already a member of group {group}")
            }
            MutationError::NotMember { group, node } => {
                write!(f, "node {node} is not a member of group {group}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Everything that can go wrong opening, replaying, appending to or
/// compacting a live snapshot.
#[derive(Debug)]
pub enum LiveError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The WAL file is shorter than its fixed-size header.
    WalTooShort {
        /// Actual length in bytes.
        len: u64,
    },
    /// The WAL does not start with the `CKW1` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The WAL header declares an unsupported format version.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// The WAL header carries flag bits this implementation does not know.
    UnknownFlags {
        /// The declared flags.
        flags: u16,
    },
    /// The WAL header checksum does not match its contents.
    HeaderChecksum {
        /// Stored checksum.
        stored: u32,
        /// Recomputed checksum.
        computed: u32,
    },
    /// A complete record frame failed its CRC check — corruption, not a
    /// torn tail (torn tails are silently discarded on replay).
    RecordChecksum {
        /// Byte offset of the corrupt frame.
        offset: u64,
    },
    /// A record carries an opcode this implementation does not know.
    UnknownOpcode {
        /// The opcode byte.
        opcode: u8,
        /// Byte offset of the frame.
        offset: u64,
    },
    /// A record payload is shorter than its opcode requires.
    ShortRecord {
        /// The opcode byte.
        opcode: u8,
        /// Byte offset of the frame.
        offset: u64,
    },
    /// The WAL was written against a different snapshot file (its
    /// `base_crc32` does not match the snapshot on disk). A stale WAL is
    /// left behind when a crash lands after compaction has renamed the
    /// new snapshot into place but before the old WAL was unlinked; it
    /// is already folded in and safe to discard.
    StaleWal {
        /// CRC the WAL expects the snapshot file to have.
        expected: u32,
        /// CRC of the snapshot file found on disk.
        found: u32,
    },
    /// A WAL record replayed against the snapshot was rejected — the
    /// log and the snapshot disagree, which only corruption can cause
    /// (committed records were validated before being written).
    ReplayRejected {
        /// Index of the record within the WAL.
        record: usize,
        /// The underlying rejection.
        error: MutationError,
    },
    /// A mutation was rejected (apply-time validation).
    Mutation(MutationError),
    /// A snapshot read or write failed.
    Store(StoreError),
    /// A replication offset does not land on a committed frame boundary
    /// of this WAL — the subscriber and primary disagree about history.
    BadReplicationOffset {
        /// The offset the subscriber asked to resume from (bytes past
        /// the WAL header).
        offset: u64,
        /// Bytes of committed records this WAL actually holds.
        committed: u64,
    },
    /// A replication batch ended mid-frame. Batches are shipped whole;
    /// a torn one means the transport lost bytes, not that the primary
    /// crashed (torn *tails on disk* are repaired by replay instead).
    TornReplicationBatch {
        /// Bytes left in the batch at the torn frame.
        have: u64,
        /// Bytes the frame header declares the frame needs.
        need: u64,
    },
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "I/O error: {e}"),
            LiveError::WalTooShort { len } => {
                write!(f, "WAL truncated: {len} bytes is shorter than the 32-byte header")
            }
            LiveError::BadMagic { found } => {
                write!(f, "not a CKW1 write-ahead log (magic {found:02x?})")
            }
            LiveError::UnsupportedVersion { version } => {
                write!(f, "unsupported CKW1 version {version}")
            }
            LiveError::UnknownFlags { flags } => {
                write!(f, "unknown CKW1 flag bits {flags:#06x}")
            }
            LiveError::HeaderChecksum { stored, computed } => write!(
                f,
                "WAL header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            LiveError::RecordChecksum { offset } => {
                write!(f, "WAL record checksum mismatch at byte {offset}")
            }
            LiveError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown WAL opcode {opcode} at byte {offset}")
            }
            LiveError::ShortRecord { opcode, offset } => {
                write!(f, "WAL record at byte {offset} too short for opcode {opcode}")
            }
            LiveError::StaleWal { expected, found } => write!(
                f,
                "stale WAL: written against snapshot crc {expected:#010x}, \
                 found {found:#010x} on disk"
            ),
            LiveError::ReplayRejected { record, error } => {
                write!(f, "WAL record {record} rejected on replay: {error}")
            }
            LiveError::Mutation(e) => write!(f, "mutation rejected: {e}"),
            LiveError::Store(e) => write!(f, "snapshot error: {e}"),
            LiveError::BadReplicationOffset { offset, committed } => write!(
                f,
                "replication offset {offset} is not a frame boundary of this WAL \
                 ({committed} committed record bytes)"
            ),
            LiveError::TornReplicationBatch { have, need } => write!(
                f,
                "replication batch torn mid-frame: {have} bytes left, frame needs {need}"
            ),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            LiveError::Mutation(e) | LiveError::ReplayRejected { error: e, .. } => Some(e),
            LiveError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LiveError {
    fn from(e: io::Error) -> LiveError {
        LiveError::Io(e)
    }
}

impl From<MutationError> for LiveError {
    fn from(e: MutationError) -> LiveError {
        LiveError::Mutation(e)
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> LiveError {
        LiveError::Store(e)
    }
}
