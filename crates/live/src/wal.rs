//! CKW1: the crash-safe write-ahead log behind a live snapshot.
//!
//! Byte layout (everything little-endian):
//!
//! ```text
//! header (32 bytes)
//!   0..4    magic "CKW1"
//!   4..6    version (currently 1)
//!   6..8    flags (bit 0: base graph is directed)
//!   8..12   crc32 of the base snapshot file, in full
//!   12..20  base node count
//!   20..28  base edge count
//!   28..32  crc32 of bytes 0..28
//! records (repeated until EOF)
//!   0..4    payload length
//!   4..8    crc32 of the payload
//!   8..     payload: opcode byte + u32 operands (see mutation.rs)
//! ```
//!
//! Records are appended in fsync'd batches (one `write_all` + one
//! `sync_data` per committed batch). A crash can therefore leave at
//! most one *torn* batch at the tail; replay stops cleanly at the first
//! incomplete frame and the tail is truncated away before appending
//! resumes. A CRC mismatch on a *complete* frame is different — that is
//! media corruption, reported as a typed error rather than repaired.
//!
//! The `base_crc32` field pins a WAL to the exact snapshot file it was
//! written against. Compaction folds the log into a fresh snapshot via
//! atomic rename *before* deleting the log, so a crash between the two
//! steps leaves a WAL whose base CRC no longer matches — already
//! applied, detected, and safe to discard.

use crate::error::LiveError;
use crate::mutation::Mutation;
use circlekit_store::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const WAL_MAGIC: [u8; 4] = *b"CKW1";
pub(crate) const WAL_VERSION: u16 = 1;
pub(crate) const WAL_HEADER_LEN: usize = 32;
pub(crate) const WAL_FLAG_DIRECTED: u16 = 1 << 0;
const FRAME_HEADER_LEN: usize = 8;

/// The fixed-size CKW1 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WalHeader {
    pub directed: bool,
    /// CRC-32 of the full snapshot file this log mutates.
    pub base_crc: u32,
    pub base_nodes: u64,
    pub base_edges: u64,
}

impl WalHeader {
    pub(crate) fn encode(&self) -> [u8; WAL_HEADER_LEN] {
        let mut out = [0u8; WAL_HEADER_LEN];
        out[0..4].copy_from_slice(&WAL_MAGIC);
        out[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
        let flags: u16 = if self.directed { WAL_FLAG_DIRECTED } else { 0 };
        out[6..8].copy_from_slice(&flags.to_le_bytes());
        out[8..12].copy_from_slice(&self.base_crc.to_le_bytes());
        out[12..20].copy_from_slice(&self.base_nodes.to_le_bytes());
        out[20..28].copy_from_slice(&self.base_edges.to_le_bytes());
        let crc = crc32(&out[0..28]);
        out[28..32].copy_from_slice(&crc.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<WalHeader, LiveError> {
        if bytes.len() < WAL_HEADER_LEN {
            return Err(LiveError::WalTooShort { len: bytes.len() as u64 });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("sliced to length");
        if magic != WAL_MAGIC {
            return Err(LiveError::BadMagic { found: magic });
        }
        let stored = u32::from_le_bytes(bytes[28..32].try_into().expect("sliced to length"));
        let computed = crc32(&bytes[0..28]);
        if stored != computed {
            return Err(LiveError::HeaderChecksum { stored, computed });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sliced to length"));
        if version != WAL_VERSION {
            return Err(LiveError::UnsupportedVersion { version });
        }
        let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("sliced to length"));
        if flags & !WAL_FLAG_DIRECTED != 0 {
            return Err(LiveError::UnknownFlags { flags });
        }
        Ok(WalHeader {
            directed: flags & WAL_FLAG_DIRECTED != 0,
            base_crc: u32::from_le_bytes(bytes[8..12].try_into().expect("sliced to length")),
            base_nodes: u64::from_le_bytes(bytes[12..20].try_into().expect("sliced to length")),
            base_edges: u64::from_le_bytes(bytes[20..28].try_into().expect("sliced to length")),
        })
    }
}

/// Result of scanning a WAL file: the committed records plus the byte
/// length of the valid prefix (a torn batch at the tail, if any, lies
/// beyond `valid_len` and is discarded by truncation before new
/// appends).
#[derive(Debug)]
pub(crate) struct WalScan {
    pub header: WalHeader,
    pub records: Vec<Mutation>,
    pub valid_len: u64,
}

/// Reads and validates `path`.
///
/// Truncated tails (torn final batch after a crash) end the scan
/// cleanly; CRC failures on complete frames, unknown opcodes and short
/// payloads are typed errors.
pub(crate) fn read_wal(path: &Path) -> Result<WalScan, LiveError> {
    let bytes = std::fs::read(path)?;
    scan_wal(&bytes)
}

pub(crate) fn scan_wal(bytes: &[u8]) -> Result<WalScan, LiveError> {
    let header = WalHeader::decode(bytes)?;
    let (records, consumed) =
        scan_frames(&bytes[WAL_HEADER_LEN..], WAL_HEADER_LEN as u64, true)?;
    Ok(WalScan { header, records, valid_len: WAL_HEADER_LEN as u64 + consumed })
}

/// Decodes a contiguous run of CKW1 record frames from `bytes`,
/// returning the records and how many bytes they span. `file_offset` is
/// where `bytes` starts within its file, for error diagnostics only.
///
/// A torn frame at the tail ends the scan cleanly when `allow_torn` is
/// set (WAL replay after a crash) and is a typed
/// [`LiveError::TornReplicationBatch`] otherwise (a replication batch
/// must arrive whole). CRC failures on complete frames, unknown opcodes
/// and short payloads are typed errors either way.
pub(crate) fn scan_frames(
    bytes: &[u8],
    file_offset: u64,
    allow_torn: bool,
) -> Result<(Vec<Mutation>, u64), LiveError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break;
        }
        let len = if remaining >= FRAME_HEADER_LEN {
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("sliced")) as usize
        } else {
            0
        };
        if remaining < FRAME_HEADER_LEN || remaining - FRAME_HEADER_LEN < len {
            // Torn frame header or torn payload.
            if allow_torn {
                break;
            }
            return Err(LiveError::TornReplicationBatch {
                have: remaining as u64,
                need: (FRAME_HEADER_LEN + len) as u64,
            });
        }
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("sliced"));
        let payload = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + len];
        let at = file_offset + offset as u64;
        if crc32(payload) != stored_crc {
            return Err(LiveError::RecordChecksum { offset: at });
        }
        match Mutation::decode(payload) {
            Some(m) => records.push(m),
            None => {
                let opcode = payload.first().copied().unwrap_or(0);
                // Distinguish "opcode we know, payload too short/long"
                // from "opcode we don't know" for diagnostics.
                return if (1..=5).contains(&opcode) {
                    Err(LiveError::ShortRecord { opcode, offset: at })
                } else {
                    Err(LiveError::UnknownOpcode { opcode, offset: at })
                };
            }
        }
        offset += FRAME_HEADER_LEN + len;
    }
    Ok((records, offset as u64))
}

/// Encodes `mutations` as a contiguous run of CKW1 record frames.
pub(crate) fn encode_records(mutations: &[Mutation]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in mutations {
        let payload = m.encode();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Append-only handle on an open WAL file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any leftover), writes
    /// the header and makes it durable (file + parent directory fsync).
    pub(crate) fn create(path: &Path, header: WalHeader) -> Result<WalWriter, LiveError> {
        let mut file = File::create(path)?;
        file.write_all(&header.encode())?;
        file.sync_data()?;
        sync_parent_dir(path)?;
        Ok(WalWriter { file, path: path.to_path_buf() })
    }

    /// Reopens an existing WAL for appending, first truncating it to
    /// `valid_len` so a torn batch from a previous crash is discarded.
    pub(crate) fn open_at(path: &Path, valid_len: u64) -> Result<WalWriter, LiveError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { file, path: path.to_path_buf() })
    }

    /// Appends one committed batch: a single `write_all` of all frames
    /// followed by `sync_data`, returning the number of bytes written.
    /// The batch is either fully on disk when this returns, or (after a
    /// crash) a torn tail that replay drops.
    pub(crate) fn append(&mut self, mutations: &[Mutation]) -> Result<u64, LiveError> {
        self.append_raw(&encode_records(mutations))
    }

    /// Appends already-encoded record frames verbatim (one `write_all` +
    /// `sync_data`). Replication ships raw frame bytes so a replica's WAL
    /// is byte-identical to the primary's at every acked offset; the
    /// caller has validated the frames before handing them over.
    pub(crate) fn append_raw(&mut self, frames: &[u8]) -> Result<u64, LiveError> {
        self.file.write_all(frames)?;
        self.file.sync_data()?;
        Ok(frames.len() as u64)
    }

    /// The path this writer appends to (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsyncs the directory containing `path`, making a create/rename/unlink
/// of `path` itself durable.
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> WalHeader {
        WalHeader { directed: true, base_crc: 0xdead_beef, base_nodes: 10, base_edges: 20 }
    }

    fn sample() -> Vec<Mutation> {
        vec![
            Mutation::AddEdge { u: 1, v: 2 },
            Mutation::AddVertex,
            Mutation::RemoveMember { group: 0, node: 3 },
        ]
    }

    fn wal_bytes() -> Vec<u8> {
        let mut bytes = header().encode().to_vec();
        bytes.extend_from_slice(&encode_records(&sample()));
        bytes
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        assert_eq!(WalHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn scan_roundtrip() {
        let scan = scan_wal(&wal_bytes()).unwrap();
        assert_eq!(scan.header, header());
        assert_eq!(scan.records, sample());
        assert_eq!(scan.valid_len, wal_bytes().len() as u64);
    }

    #[test]
    fn every_truncation_point_scans_cleanly() {
        // A prefix cut anywhere in the record region replays a prefix of
        // the records; cuts inside the header are typed errors.
        let bytes = wal_bytes();
        for cut in 0..bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            if cut < WAL_HEADER_LEN {
                assert!(
                    matches!(scan, Err(LiveError::WalTooShort { .. })),
                    "cut {cut} should be too-short"
                );
            } else {
                let scan = scan.unwrap_or_else(|e| panic!("cut {cut}: {e}"));
                assert!(scan.valid_len as usize <= cut);
                assert!(scan.records.len() <= sample().len());
                // The valid prefix must itself rescan to the same records.
                let again = scan_wal(&bytes[..scan.valid_len as usize]).unwrap();
                assert_eq!(again.records, scan.records);
            }
        }
    }

    #[test]
    fn complete_frame_corruption_is_a_typed_error() {
        let mut bytes = wal_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // payload byte of the final (complete) frame
        assert!(matches!(scan_wal(&bytes), Err(LiveError::RecordChecksum { .. })));
    }

    #[test]
    fn header_corruption_is_detected() {
        let mut bytes = wal_bytes();
        bytes[9] ^= 0x01; // base_crc field
        assert!(matches!(scan_wal(&bytes), Err(LiveError::HeaderChecksum { .. })));
        let mut bytes = wal_bytes();
        bytes[0] = b'X';
        assert!(matches!(scan_wal(&bytes), Err(LiveError::BadMagic { .. })));
    }

    #[test]
    fn unknown_opcode_is_a_typed_error() {
        let mut bytes = header().encode().to_vec();
        let payload = [42u8];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(scan_wal(&bytes), Err(LiveError::UnknownOpcode { opcode: 42, .. })));
    }

    #[test]
    fn writer_appends_replayable_batches() {
        let dir = std::env::temp_dir().join("circlekit-live-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("writer-{}.ckw", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut w = WalWriter::create(&path, header()).unwrap();
        w.append(&sample()[..2]).unwrap();
        w.append(&sample()[2..]).unwrap();
        drop(w);

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, sample());

        // Reopen at a shorter valid prefix: the tail is gone for good.
        let first_batch_len =
            WAL_HEADER_LEN as u64 + encode_records(&sample()[..2]).len() as u64;
        let w = WalWriter::open_at(&path, first_batch_len).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, sample()[..2]);
        std::fs::remove_file(&path).unwrap();
    }
}
