//! [`DeltaOverlay`]: graph mutations composed over read-only CSR arrays.

use crate::error::MutationError;
use circlekit_graph::{Graph, GraphBuilder, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A set of edge/vertex deltas layered over an immutable base [`Graph`].
///
/// The overlay never copies the base CSR arrays: queries merge the
/// base adjacency slice (minus removals) with a small sorted delta set,
/// so a snapshot shared read-only across threads (or mmap-backed) keeps
/// serving while mutations accumulate here.
///
/// The overlay does not borrow the base graph; every query takes it as
/// a parameter. Callers must pass the *same* graph the overlay was
/// created over — node counts are checked (`debug_assert`) but edge
/// content is not.
///
/// Invariants maintained by the mutation methods: added edges are
/// disjoint from base edges, removed edges are a subset of base edges
/// (re-adding a removed base edge cancels the removal instead of
/// recording an addition, and vice versa). Neighbor merges therefore
/// never see duplicates, and `materialize` reproduces the exact edge
/// multiset.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    directed: bool,
    base_nodes: usize,
    added_nodes: usize,
    /// Out-adjacency deltas. Undirected overlays store both orientations
    /// here (mirroring the symmetric CSR of an undirected `Graph`) and
    /// leave the `in_*` maps empty.
    out_added: BTreeMap<NodeId, BTreeSet<NodeId>>,
    out_removed: BTreeMap<NodeId, BTreeSet<NodeId>>,
    in_added: BTreeMap<NodeId, BTreeSet<NodeId>>,
    in_removed: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Edges (undirected) / arcs (directed) added on top of the base.
    added_edges: usize,
    /// Base edges / arcs currently removed.
    removed_edges: usize,
}

impl DeltaOverlay {
    /// An empty overlay over `base`.
    pub fn new(base: &Graph) -> DeltaOverlay {
        DeltaOverlay {
            directed: base.is_directed(),
            base_nodes: base.node_count(),
            ..DeltaOverlay::default()
        }
    }

    /// Whether the composed graph is directed (always equal to the base).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether any delta has been recorded.
    pub fn is_empty(&self) -> bool {
        self.added_nodes == 0 && self.added_edges == 0 && self.removed_edges == 0
    }

    /// Nodes in the composed graph.
    pub fn node_count(&self) -> usize {
        self.base_nodes + self.added_nodes
    }

    /// Edges (undirected) / arcs (directed) in the composed graph.
    pub fn edge_count(&self, base: &Graph) -> usize {
        self.check_base(base);
        base.edge_count() + self.added_edges - self.removed_edges
    }

    fn check_base(&self, base: &Graph) {
        debug_assert_eq!(base.node_count(), self.base_nodes, "overlay used with a foreign graph");
        debug_assert_eq!(base.is_directed(), self.directed, "overlay used with a foreign graph");
    }

    fn in_base(&self, base: &Graph, u: NodeId, v: NodeId) -> bool {
        (u as usize) < self.base_nodes && (v as usize) < self.base_nodes && base.has_edge(u, v)
    }

    /// Whether the composed graph contains the arc `u -> v` (undirected:
    /// the edge `{u, v}`). Endpoints outside the composed node range are
    /// simply absent, not an error.
    pub fn has_edge(&self, base: &Graph, u: NodeId, v: NodeId) -> bool {
        self.check_base(base);
        if (u as usize) >= self.node_count() || (v as usize) >= self.node_count() {
            return false;
        }
        if self.in_base(base, u, v) {
            !self.out_removed.get(&u).is_some_and(|r| r.contains(&v))
        } else {
            self.out_added.get(&u).is_some_and(|a| a.contains(&v))
        }
    }

    /// Appends one isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> NodeId {
        let id = self.node_count() as NodeId;
        self.added_nodes += 1;
        id
    }

    /// Inserts the edge `u -> v` (undirected: `{u, v}`).
    ///
    /// # Errors
    ///
    /// [`MutationError::SelfLoop`], [`MutationError::NodeOutOfRange`] or
    /// [`MutationError::EdgeExists`]; nothing is recorded on error.
    pub fn add_edge(&mut self, base: &Graph, u: NodeId, v: NodeId) -> Result<(), MutationError> {
        self.check_base(base);
        self.check_endpoints(u, v)?;
        if self.has_edge(base, u, v) {
            return Err(MutationError::EdgeExists { u, v });
        }
        if self.in_base(base, u, v) {
            // Cancelling an earlier removal, not recording an addition.
            self.unrecord(true, u, v);
            self.removed_edges -= 1;
        } else {
            self.record(false, u, v);
            self.added_edges += 1;
        }
        Ok(())
    }

    /// Deletes the edge `u -> v` (undirected: `{u, v}`).
    ///
    /// # Errors
    ///
    /// [`MutationError::SelfLoop`], [`MutationError::NodeOutOfRange`] or
    /// [`MutationError::EdgeMissing`]; nothing is recorded on error.
    pub fn remove_edge(&mut self, base: &Graph, u: NodeId, v: NodeId) -> Result<(), MutationError> {
        self.check_base(base);
        self.check_endpoints(u, v)?;
        if !self.has_edge(base, u, v) {
            return Err(MutationError::EdgeMissing { u, v });
        }
        if self.in_base(base, u, v) {
            self.record(true, u, v);
            self.removed_edges += 1;
        } else {
            // Cancelling an earlier addition.
            self.unrecord(false, u, v);
            self.added_edges -= 1;
        }
        Ok(())
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), MutationError> {
        if u == v {
            return Err(MutationError::SelfLoop { node: u });
        }
        let n = self.node_count();
        for node in [u, v] {
            if node as usize >= n {
                return Err(MutationError::NodeOutOfRange { node, node_count: n });
            }
        }
        Ok(())
    }

    /// Records `u -> v` in the added (or removed) maps, mirroring into the
    /// in-maps (directed) or the reverse orientation (undirected).
    fn record(&mut self, removed: bool, u: NodeId, v: NodeId) {
        if removed {
            self.out_removed.entry(u).or_default().insert(v);
            if self.directed {
                self.in_removed.entry(v).or_default().insert(u);
            } else {
                self.out_removed.entry(v).or_default().insert(u);
            }
        } else {
            self.out_added.entry(u).or_default().insert(v);
            if self.directed {
                self.in_added.entry(v).or_default().insert(u);
            } else {
                self.out_added.entry(v).or_default().insert(u);
            }
        }
    }

    fn unrecord(&mut self, removed: bool, u: NodeId, v: NodeId) {
        fn take(map: &mut BTreeMap<NodeId, BTreeSet<NodeId>>, k: NodeId, e: NodeId) {
            if let Some(set) = map.get_mut(&k) {
                set.remove(&e);
                if set.is_empty() {
                    map.remove(&k);
                }
            }
        }
        if removed {
            take(&mut self.out_removed, u, v);
            if self.directed {
                take(&mut self.in_removed, v, u);
            } else {
                take(&mut self.out_removed, v, u);
            }
        } else {
            take(&mut self.out_added, u, v);
            if self.directed {
                take(&mut self.in_added, v, u);
            } else {
                take(&mut self.out_added, v, u);
            }
        }
    }

    fn delta_degree(
        added: &BTreeMap<NodeId, BTreeSet<NodeId>>,
        removed: &BTreeMap<NodeId, BTreeSet<NodeId>>,
        v: NodeId,
    ) -> (usize, usize) {
        (
            added.get(&v).map_or(0, BTreeSet::len),
            removed.get(&v).map_or(0, BTreeSet::len),
        )
    }

    /// Out-degree of `v` in the composed graph.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn out_degree(&self, base: &Graph, v: NodeId) -> usize {
        self.check_base(base);
        assert!((v as usize) < self.node_count(), "node {v} out of range");
        let base_deg = if (v as usize) < self.base_nodes { base.out_degree(v) } else { 0 };
        let (add, rem) = Self::delta_degree(&self.out_added, &self.out_removed, v);
        base_deg + add - rem
    }

    /// In-degree of `v` in the composed graph (equals
    /// [`DeltaOverlay::out_degree`] for undirected overlays).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn in_degree(&self, base: &Graph, v: NodeId) -> usize {
        self.check_base(base);
        if !self.directed {
            return self.out_degree(base, v);
        }
        assert!((v as usize) < self.node_count(), "node {v} out of range");
        let base_deg = if (v as usize) < self.base_nodes { base.in_degree(v) } else { 0 };
        let (add, rem) = Self::delta_degree(&self.in_added, &self.in_removed, v);
        base_deg + add - rem
    }

    /// Total degree of `v`: adjacency size for undirected overlays,
    /// out-degree plus in-degree for directed ones (matching
    /// [`Graph::degree`]).
    pub fn degree(&self, base: &Graph, v: NodeId) -> usize {
        if self.directed {
            self.out_degree(base, v) + self.in_degree(base, v)
        } else {
            self.out_degree(base, v)
        }
    }

    fn merged<'a>(
        &'a self,
        base_slice: &'a [NodeId],
        added: Option<&'a BTreeSet<NodeId>>,
        removed: Option<&'a BTreeSet<NodeId>>,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let mut kept = base_slice
            .iter()
            .copied()
            .filter(move |w| !removed.is_some_and(|r| r.contains(w)))
            .peekable();
        let mut extra = added.into_iter().flatten().copied().peekable();
        // Both streams are sorted and disjoint; merge preserves order.
        std::iter::from_fn(move || match (kept.peek(), extra.peek()) {
            (Some(&b), Some(&a)) if b < a => kept.next(),
            (Some(_), Some(_)) => extra.next(),
            (Some(_), None) => kept.next(),
            (None, _) => extra.next(),
        })
    }

    /// Out-neighbours of `v` in the composed graph, sorted ascending
    /// (all neighbours for an undirected overlay).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn out_neighbors<'a>(
        &'a self,
        base: &'a Graph,
        v: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.check_base(base);
        assert!((v as usize) < self.node_count(), "node {v} out of range");
        let base_slice: &[NodeId] =
            if (v as usize) < self.base_nodes { base.out_neighbors(v) } else { &[] };
        self.merged(base_slice, self.out_added.get(&v), self.out_removed.get(&v))
    }

    /// In-neighbours of `v` in the composed graph, sorted ascending
    /// (all neighbours for an undirected overlay).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn in_neighbors<'a>(
        &'a self,
        base: &'a Graph,
        v: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.check_base(base);
        assert!((v as usize) < self.node_count(), "node {v} out of range");
        let (added, removed) = if self.directed {
            (self.in_added.get(&v), self.in_removed.get(&v))
        } else {
            (self.out_added.get(&v), self.out_removed.get(&v))
        };
        let base_slice: &[NodeId] =
            if (v as usize) < self.base_nodes { base.in_neighbors(v) } else { &[] };
        self.merged(base_slice, added, removed)
    }

    /// Builds a standalone [`Graph`] equal to the composed graph.
    /// Isolated added vertices are preserved.
    pub fn materialize(&self, base: &Graph) -> Graph {
        self.check_base(base);
        let mut builder =
            if self.directed { GraphBuilder::directed() } else { GraphBuilder::undirected() };
        builder.reserve_nodes(self.node_count());
        for (u, v) in base.edges() {
            // `edges()` yields undirected edges once with u <= v; the
            // removal maps hold both orientations, so one probe suffices.
            if !self.out_removed.get(&u).is_some_and(|r| r.contains(&v)) {
                builder.add_edge(u, v);
            }
        }
        for (&u, targets) in &self.out_added {
            for &v in targets {
                // Undirected additions are stored symmetrically; emit each
                // edge once (no self-loops, so strict inequality is safe).
                if self.directed || u < v {
                    builder.add_edge(u, v);
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        // 0 - 1 - 2 plus isolated-ish node 3 via edge 2-3.
        Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3)])
    }

    #[test]
    fn empty_overlay_mirrors_base() {
        let g = path3();
        let o = DeltaOverlay::new(&g);
        assert!(o.is_empty());
        assert_eq!(o.node_count(), 4);
        assert_eq!(o.edge_count(&g), 3);
        assert!(o.has_edge(&g, 0, 1) && o.has_edge(&g, 1, 0));
        assert!(!o.has_edge(&g, 0, 2));
        assert_eq!(o.out_neighbors(&g, 1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(o.materialize(&g), g);
    }

    #[test]
    fn add_and_remove_edges_compose() {
        let g = path3();
        let mut o = DeltaOverlay::new(&g);
        o.add_edge(&g, 0, 2).unwrap();
        o.remove_edge(&g, 1, 2).unwrap();
        assert_eq!(o.edge_count(&g), 3);
        assert!(o.has_edge(&g, 2, 0)); // symmetric view of the addition
        assert!(!o.has_edge(&g, 2, 1));
        assert_eq!(o.out_neighbors(&g, 2).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(o.degree(&g, 1), 1);
        let m = o.materialize(&g);
        assert_eq!(m, Graph::from_edges(false, [(0u32, 1u32), (0, 2), (2, 3)]));
    }

    #[test]
    fn add_then_remove_cancels() {
        let g = path3();
        let mut o = DeltaOverlay::new(&g);
        o.add_edge(&g, 0, 3).unwrap();
        o.remove_edge(&g, 0, 3).unwrap();
        o.remove_edge(&g, 0, 1).unwrap();
        o.add_edge(&g, 0, 1).unwrap();
        assert!(o.is_empty());
        assert_eq!(o.materialize(&g), g);
    }

    #[test]
    fn added_vertices_take_edges() {
        let g = path3();
        let mut o = DeltaOverlay::new(&g);
        let v = o.add_vertex();
        assert_eq!(v, 4);
        o.add_edge(&g, v, 0).unwrap();
        assert_eq!(o.degree(&g, v), 1);
        assert_eq!(o.out_neighbors(&g, v).collect::<Vec<_>>(), vec![0]);
        assert_eq!(o.out_neighbors(&g, 0).collect::<Vec<_>>(), vec![1, 4]);
        let m = o.materialize(&g);
        assert_eq!(m.node_count(), 5);
        assert!(m.has_edge(0, 4));
    }

    #[test]
    fn isolated_added_vertex_survives_materialize() {
        let g = path3();
        let mut o = DeltaOverlay::new(&g);
        o.add_vertex();
        let m = o.materialize(&g);
        assert_eq!(m.node_count(), 5);
        assert_eq!(m.degree(4), 0);
    }

    #[test]
    fn validation_rejects_bad_mutations() {
        let g = path3();
        let mut o = DeltaOverlay::new(&g);
        assert_eq!(o.add_edge(&g, 1, 1), Err(MutationError::SelfLoop { node: 1 }));
        assert_eq!(
            o.add_edge(&g, 0, 9),
            Err(MutationError::NodeOutOfRange { node: 9, node_count: 4 })
        );
        assert_eq!(o.add_edge(&g, 1, 0), Err(MutationError::EdgeExists { u: 1, v: 0 }));
        assert_eq!(o.remove_edge(&g, 0, 2), Err(MutationError::EdgeMissing { u: 0, v: 2 }));
        assert!(o.is_empty(), "rejected mutations must not record anything");
    }

    #[test]
    fn directed_overlay_tracks_orientations() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let mut o = DeltaOverlay::new(&g);
        o.add_edge(&g, 2, 0).unwrap();
        assert!(o.has_edge(&g, 2, 0));
        assert!(!o.has_edge(&g, 0, 2));
        assert_eq!(o.out_degree(&g, 2), 1);
        assert_eq!(o.in_degree(&g, 2), 1);
        assert_eq!(o.degree(&g, 2), 2);
        assert_eq!(o.in_neighbors(&g, 0).collect::<Vec<_>>(), vec![2]);
        o.remove_edge(&g, 0, 1).unwrap();
        assert!(!o.has_edge(&g, 0, 1));
        assert_eq!(o.edge_count(&g), 2);
        let m = o.materialize(&g);
        assert_eq!(m, Graph::from_edges(true, [(1u32, 2u32), (2, 0)]));
    }
}
