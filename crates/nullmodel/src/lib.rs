//! Random-graph null models.
//!
//! The paper's Modularity score (eq. 4) compares the observed internal edge
//! count of a circle against its expectation under a **degree-preserving
//! random graph**, generated "using the algorithm proposed by Viger and
//! Latapy" — i.e. realise the degree sequence, then randomise with
//! connectivity-preserving double edge swaps. This crate implements that
//! pipeline plus the surrounding model zoo:
//!
//! * [`havel_hakimi`] — deterministic realisation of a graphical degree
//!   sequence (with [`is_graphical`] / Erdős–Gallai validation),
//! * [`randomize`] / [`randomize_connected`] — double-edge-swap Markov
//!   chains over simple graphs, degree sequence invariant, optionally
//!   confined to connected graphs (the Viger–Latapy variant),
//! * [`configuration_model`] / [`directed_configuration_model`] — erased
//!   stub-matching models,
//! * [`erdos_renyi`] — the G(n, m) baseline,
//! * [`NullModelEnsemble`] — samples `k` null graphs and measures
//!   `E(m_C)` for Modularity scoring.
//!
//! ```
//! use circlekit_graph::Graph;
//! use circlekit_nullmodel::{randomize, NullModelEnsemble};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let shuffled = randomize(&g, 4.0, &mut rng);
//! // Degree sequence is preserved exactly.
//! for v in 0..g.node_count() as u32 {
//!     assert_eq!(g.degree(v), shuffled.degree(v));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic;
mod configuration;
mod ensemble;
mod er;
mod graphical;
mod swaps;

pub use classic::{barabasi_albert, watts_strogatz};
pub use configuration::{configuration_model, directed_configuration_model};
pub use ensemble::NullModelEnsemble;
pub use er::erdos_renyi;
pub use graphical::{havel_hakimi, is_graphical, NonGraphicalError};
pub use swaps::{randomize, randomize_connected};
