//! Double-edge-swap randomisation (degree-preserving Markov chain).

use circlekit_graph::{largest_component, Graph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::HashSet;

fn edge_key(directed: bool, u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if directed || u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Mutable edge-list state for the swap chain.
struct SwapState {
    directed: bool,
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    present: HashSet<(NodeId, NodeId)>,
}

impl SwapState {
    fn from_graph(graph: &Graph) -> SwapState {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let present = edges
            .iter()
            .map(|&(u, v)| edge_key(graph.is_directed(), u, v))
            .collect();
        SwapState {
            directed: graph.is_directed(),
            n: graph.node_count(),
            edges,
            present,
        }
    }

    /// Attempts one double edge swap; returns whether it was applied.
    ///
    /// Undirected: `{a,b}, {c,d}` → `{a,d}, {c,b}` (with random edge
    /// orientation, making the chain ergodic over simple graphs).
    /// Directed: `a→b, c→d` → `a→d, c→b` (preserving in/out degrees).
    fn try_swap<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let m = self.edges.len();
        if m < 2 {
            return false;
        }
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            return false;
        }
        let (a, b) = self.edges[i];
        let (mut c, mut d) = self.edges[j];
        if !self.directed && rng.gen::<bool>() {
            // Undirected edges have no orientation: flip one to explore the
            // full swap neighbourhood.
            std::mem::swap(&mut c, &mut d);
        }
        // Proposed replacements: (a, d) and (c, b).
        if a == d || c == b {
            return false;
        }
        let k1 = edge_key(self.directed, a, d);
        let k2 = edge_key(self.directed, c, b);
        if k1 == k2 || self.present.contains(&k1) || self.present.contains(&k2) {
            return false;
        }
        let old1 = edge_key(self.directed, a, b);
        let old2 = edge_key(self.directed, c, d);
        self.present.remove(&old1);
        self.present.remove(&old2);
        self.present.insert(k1);
        self.present.insert(k2);
        self.edges[i] = (a, d);
        self.edges[j] = (c, b);
        true
    }

    fn to_graph(&self) -> Graph {
        let mut b = if self.directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        b.reserve_nodes(self.n);
        b.add_edges(self.edges.iter().copied());
        b.build()
    }

    fn is_connected_spanning(&self) -> bool {
        let g = self.to_graph();
        // Connected over the non-isolated vertex set: isolated vertices in
        // the input stay isolated under degree-preserving swaps, so we only
        // require the edge-covered part to stay in one piece.
        let covered = (0..g.node_count() as NodeId)
            .filter(|&v| g.degree(v) > 0)
            .count();
        largest_component(&g).len() >= covered.max(1)
            || (covered == 0 && g.node_count() > 0)
            || g.node_count() == 0
    }
}

/// Randomises a graph by `quality * m` accepted double edge swaps,
/// preserving the degree sequence exactly (in/out degrees for directed
/// graphs). `quality` ≈ 4 is the conventional mixing budget.
///
/// The attempt budget is capped at `20 * quality * m`, so the call always
/// terminates even on graphs with few legal swaps (stars, cliques).
pub fn randomize<R: Rng + ?Sized>(graph: &Graph, quality: f64, rng: &mut R) -> Graph {
    let mut state = SwapState::from_graph(graph);
    let target = (quality * graph.edge_count() as f64).ceil() as u64;
    let max_attempts = target.saturating_mul(20).max(64);
    let mut accepted = 0u64;
    let mut attempts = 0u64;
    while accepted < target && attempts < max_attempts {
        if state.try_swap(rng) {
            accepted += 1;
        }
        attempts += 1;
    }
    state.to_graph()
}

/// The Viger–Latapy variant: like [`randomize`], but the result is
/// guaranteed to keep the edge-covered part of the graph connected whenever
/// the input's was. Swaps are applied in batches; a batch that disconnects
/// the graph is rolled back and retried with smaller batches.
pub fn randomize_connected<R: Rng + ?Sized>(graph: &Graph, quality: f64, rng: &mut R) -> Graph {
    let mut state = SwapState::from_graph(graph);
    if !state.is_connected_spanning() {
        // Input already disconnected: fall back to unconstrained swapping.
        drop(state);
        return randomize(graph, quality, rng);
    }
    let m = graph.edge_count();
    let target = (quality * m as f64).ceil() as u64;
    let mut accepted = 0u64;
    let mut attempts = 0u64;
    let max_attempts = target.saturating_mul(40).max(128);
    let mut batch = (m / 10).max(1);
    while accepted < target && attempts < max_attempts {
        // Snapshot, apply up to `batch` accepted swaps, verify, else revert.
        let snapshot = state.edges.clone();
        let snapshot_present = state.present.clone();
        let mut batch_accepted = 0u64;
        let mut batch_attempts = 0u64;
        while batch_accepted < batch as u64 && batch_attempts < 10 * batch as u64 {
            if state.try_swap(rng) {
                batch_accepted += 1;
            }
            batch_attempts += 1;
        }
        attempts += batch_attempts.max(1);
        if state.is_connected_spanning() {
            accepted += batch_accepted;
            // Successful batch: allow the window to grow back.
            batch = (batch * 2).min((m / 10).max(1));
        } else {
            state.edges = snapshot;
            state.present = snapshot_present;
            // Smaller batches localise the disconnecting swap.
            batch = (batch / 2).max(1);
        }
    }
    state.to_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::connected_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn degree_sequence(g: &Graph) -> (Vec<usize>, Vec<usize>) {
        let n = g.node_count() as NodeId;
        (
            (0..n).map(|v| g.out_degree(v)).collect(),
            (0..n).map(|v| g.in_degree(v)).collect(),
        )
    }

    fn ring(n: u32) -> Graph {
        Graph::from_edges(false, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn randomize_preserves_undirected_degrees() {
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)],
        );
        let mut rng = SmallRng::seed_from_u64(42);
        let r = randomize(&g, 4.0, &mut rng);
        assert_eq!(degree_sequence(&g), degree_sequence(&r));
        assert_eq!(g.edge_count(), r.edge_count());
    }

    #[test]
    fn randomize_preserves_directed_in_out_degrees() {
        let g = Graph::from_edges(
            true,
            [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2), (2, 1), (3, 1)],
        );
        let mut rng = SmallRng::seed_from_u64(43);
        let r = randomize(&g, 4.0, &mut rng);
        assert!(r.is_directed());
        assert_eq!(degree_sequence(&g), degree_sequence(&r));
    }

    #[test]
    fn randomize_actually_changes_large_graphs() {
        let g = ring(50);
        let mut rng = SmallRng::seed_from_u64(44);
        let r = randomize(&g, 4.0, &mut rng);
        assert_ne!(g, r, "50-ring should be shuffled");
    }

    #[test]
    fn randomize_terminates_on_swapless_graphs() {
        // A triangle admits no legal double swap; must terminate unchanged.
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0)]);
        let mut rng = SmallRng::seed_from_u64(45);
        let r = randomize(&g, 4.0, &mut rng);
        assert_eq!(g, r);
    }

    #[test]
    fn randomize_connected_keeps_connectivity() {
        let g = ring(40);
        let mut rng = SmallRng::seed_from_u64(46);
        for _ in 0..3 {
            let r = randomize_connected(&g, 3.0, &mut rng);
            assert_eq!(degree_sequence(&g), degree_sequence(&r));
            assert_eq!(connected_components(&r).component_count(), 1);
        }
    }

    #[test]
    fn randomize_plain_may_or_may_not_disconnect_but_connected_never() {
        // Denser test graph: ring + chords.
        let mut edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
        edges.extend((0..15u32).map(|i| (i, i + 15)));
        let g = Graph::from_edges(false, edges);
        let mut rng = SmallRng::seed_from_u64(47);
        let r = randomize_connected(&g, 4.0, &mut rng);
        assert_eq!(connected_components(&r).component_count(), 1);
        assert_ne!(g, r);
    }

    #[test]
    fn randomize_connected_with_isolated_nodes() {
        // Isolated vertices must stay isolated and not break the
        // connectivity accounting.
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.add_edges((0..10u32).map(|i| (i, (i + 1) % 10)));
        b.reserve_nodes(12);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(48);
        let r = randomize_connected(&g, 2.0, &mut rng);
        assert_eq!(r.degree(10), 0);
        assert_eq!(r.degree(11), 0);
        assert_eq!(degree_sequence(&g), degree_sequence(&r));
    }
}
