//! Erased configuration models (stub matching).

use circlekit_graph::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a simple undirected graph whose degree sequence *approximates*
/// `degrees` by random stub matching; self-loops and parallel edges are
/// erased (the "erased configuration model").
///
/// For heavy-tailed sequences the erasure removes `O(⟨d²⟩/n)` edges — the
/// standard trade-off accepted by measurement studies. Use
/// [`havel_hakimi`](crate::havel_hakimi) +
/// [`randomize`](crate::randomize) when the degree sequence must be
/// preserved exactly.
pub fn configuration_model<R: Rng + ?Sized>(degrees: &[usize], rng: &mut R) -> Graph {
    let mut stubs: Vec<NodeId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as NodeId, d));
    }
    stubs.shuffle(rng);
    let mut b = GraphBuilder::undirected();
    b.reserve_nodes(degrees.len());
    for pair in stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]); // builder drops loops and duplicates
    }
    b.build()
}

/// Directed erased configuration model: matches out-stubs to in-stubs at
/// random, erasing self-loops and duplicate arcs.
///
/// # Panics
///
/// Panics if the out- and in-degree sums differ (no directed graph can
/// realise such a pair of sequences).
pub fn directed_configuration_model<R: Rng + ?Sized>(
    out_degrees: &[usize],
    in_degrees: &[usize],
    rng: &mut R,
) -> Graph {
    assert_eq!(
        out_degrees.iter().sum::<usize>(),
        in_degrees.iter().sum::<usize>(),
        "out- and in-degree sums must match"
    );
    assert_eq!(
        out_degrees.len(),
        in_degrees.len(),
        "sequences must cover the same vertex set"
    );
    let mut out_stubs: Vec<NodeId> = Vec::new();
    let mut in_stubs: Vec<NodeId> = Vec::new();
    for (v, (&od, &id)) in out_degrees.iter().zip(in_degrees).enumerate() {
        out_stubs.extend(std::iter::repeat_n(v as NodeId, od));
        in_stubs.extend(std::iter::repeat_n(v as NodeId, id));
    }
    out_stubs.shuffle(rng);
    in_stubs.shuffle(rng);
    let mut b = GraphBuilder::directed();
    b.reserve_nodes(out_degrees.len());
    for (&u, &v) in out_stubs.iter().zip(&in_stubs) {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn undirected_cm_approximates_degrees() {
        let degrees = vec![3usize; 40];
        let mut rng = SmallRng::seed_from_u64(1);
        let g = configuration_model(&degrees, &mut rng);
        assert_eq!(g.node_count(), 40);
        // Erasure removes few edges on a sparse regular sequence.
        let target = 60;
        assert!(g.edge_count() >= target - 6, "edges {} too low", g.edge_count());
        assert!(g.edge_count() <= target);
        for v in 0..40u32 {
            assert!(g.degree(v) <= 3);
        }
    }

    #[test]
    fn undirected_cm_empty() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = configuration_model(&[], &mut rng);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn directed_cm_bounds_degrees() {
        let out = vec![2usize; 30];
        let inn = vec![2usize; 30];
        let mut rng = SmallRng::seed_from_u64(3);
        let g = directed_configuration_model(&out, &inn, &mut rng);
        assert!(g.is_directed());
        for v in 0..30u32 {
            assert!(g.out_degree(v) <= 2);
            assert!(g.in_degree(v) <= 2);
        }
        assert!(g.edge_count() >= 50);
    }

    #[test]
    #[should_panic(expected = "sums must match")]
    fn directed_cm_rejects_mismatched_sums() {
        let mut rng = SmallRng::seed_from_u64(4);
        directed_configuration_model(&[2, 0], &[1, 0], &mut rng);
    }

    #[test]
    fn directed_cm_hub_structure() {
        // One big out-hub, everyone else receives.
        let mut out = vec![0usize; 21];
        out[0] = 20;
        let inn = vec![1usize; 21].into_iter().enumerate()
            .map(|(v, d)| if v == 0 { 0 } else { d })
            .collect::<Vec<_>>();
        let mut rng = SmallRng::seed_from_u64(5);
        let g = directed_configuration_model(&out, &inn, &mut rng);
        assert_eq!(g.out_degree(0), 20);
        assert_eq!(g.in_degree(0), 0);
    }
}
