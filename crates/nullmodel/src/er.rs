//! Erdős–Rényi baseline.

use circlekit_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples a G(n, m) Erdős–Rényi graph: exactly `m` distinct edges chosen
/// uniformly among all possible (non-loop) pairs.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges for the given `n`
/// and directedness.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, m: usize, directed: bool, rng: &mut R) -> Graph {
    let possible = if directed {
        n.saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1)) / 2
    };
    assert!(m <= possible, "requested {m} edges but only {possible} possible");
    let mut b = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.reserve_nodes(n);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = if directed || u < v { (u, v) } else { (v, u) };
        chosen.insert(key);
    }
    b.add_edges(chosen.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn er_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = erdos_renyi(50, 100, false, &mut rng);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 100);
        assert!(!g.is_directed());
    }

    #[test]
    fn er_directed() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = erdos_renyi(20, 80, true, &mut rng);
        assert!(g.is_directed());
        assert_eq!(g.edge_count(), 80);
    }

    #[test]
    fn er_complete_graph() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = erdos_renyi(5, 10, false, &mut rng);
        assert_eq!(g.edge_count(), 10);
        for u in 0..5u32 {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn er_rejects_overfull() {
        let mut rng = SmallRng::seed_from_u64(14);
        erdos_renyi(3, 4, false, &mut rng);
    }

    #[test]
    fn er_empty() {
        let mut rng = SmallRng::seed_from_u64(15);
        let g = erdos_renyi(10, 0, false, &mut rng);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 10);
    }
}
