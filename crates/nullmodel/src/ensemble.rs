//! Sampled null-model ensembles for Modularity expectations.

use crate::{randomize, randomize_connected};
use circlekit_graph::{Graph, VertexSet};
use rand::Rng;

/// An ensemble of degree-preserving random graphs sampled from a base
/// graph, used to estimate the Modularity expectation `E(m_C)` the way the
/// paper does (Viger–Latapy sampling) instead of via the Chung–Lu closed
/// form.
///
/// ```
/// use circlekit_graph::{Graph, VertexSet};
/// use circlekit_nullmodel::NullModelEnsemble;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let g = Graph::from_edges(false, (0..20u32).map(|i| (i, (i + 1) % 20)));
/// let mut rng = SmallRng::seed_from_u64(3);
/// let ensemble = NullModelEnsemble::sample(&g, 5, 3.0, false, &mut rng);
/// let set: VertexSet = (0u32..5).collect();
/// let e = ensemble.expected_internal_edges(&set);
/// assert!(e >= 0.0 && e <= 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct NullModelEnsemble {
    samples: Vec<Graph>,
}

impl NullModelEnsemble {
    /// Samples `count` degree-preserving random graphs by `quality * m`
    /// double edge swaps each. When `connected` is set, the
    /// connectivity-preserving Viger–Latapy chain is used.
    pub fn sample<R: Rng + ?Sized>(
        base: &Graph,
        count: usize,
        quality: f64,
        connected: bool,
        rng: &mut R,
    ) -> NullModelEnsemble {
        let samples = (0..count)
            .map(|_| {
                if connected {
                    randomize_connected(base, quality, rng)
                } else {
                    randomize(base, quality, rng)
                }
            })
            .collect();
        NullModelEnsemble { samples }
    }

    /// Wraps pre-sampled graphs into an ensemble.
    pub fn from_samples(samples: Vec<Graph>) -> NullModelEnsemble {
        NullModelEnsemble { samples }
    }

    /// The sampled graphs.
    pub fn samples(&self) -> &[Graph] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean internal edge count of `set` across the ensemble — the sampled
    /// `E(m_C)` plugged into the paper's eq. (4) via
    /// [`ScoringFunction::modularity_with_expectation`].
    ///
    /// Returns `0.0` for an empty ensemble.
    ///
    /// [`ScoringFunction::modularity_with_expectation`]:
    ///     https://docs.rs/circlekit-scoring
    pub fn expected_internal_edges(&self, set: &VertexSet) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .samples
            .iter()
            .map(|g| internal_edges(g, set))
            .sum();
        total as f64 / self.samples.len() as f64
    }
}

/// Counts edges of `graph` with both endpoints in `set` (arcs for directed
/// graphs).
pub(crate) fn internal_edges(graph: &Graph, set: &VertexSet) -> usize {
    let mut arcs = 0usize;
    for v in set.iter() {
        for &w in graph.out_neighbors(v) {
            if set.contains(w) {
                arcs += 1;
            }
        }
    }
    if graph.is_directed() {
        arcs
    } else {
        arcs / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ring(n: u32) -> Graph {
        Graph::from_edges(false, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn internal_edges_counts_both_conventions() {
        let und = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        let set: VertexSet = (0u32..3).collect();
        assert_eq!(internal_edges(&und, &set), 3);
        let dir = und.to_bidirected();
        assert_eq!(internal_edges(&dir, &set), 6);
    }

    #[test]
    fn ensemble_preserves_sample_count() {
        let g = ring(12);
        let mut rng = SmallRng::seed_from_u64(9);
        let e = NullModelEnsemble::sample(&g, 4, 2.0, false, &mut rng);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        for s in e.samples() {
            assert_eq!(s.edge_count(), g.edge_count());
        }
    }

    #[test]
    fn expectation_of_full_set_is_m() {
        let g = ring(10);
        let mut rng = SmallRng::seed_from_u64(10);
        let e = NullModelEnsemble::sample(&g, 3, 2.0, false, &mut rng);
        let full: VertexSet = (0u32..10).collect();
        assert_eq!(e.expected_internal_edges(&full), g.edge_count() as f64);
    }

    #[test]
    fn empty_ensemble_returns_zero() {
        let e = NullModelEnsemble::from_samples(vec![]);
        assert_eq!(e.expected_internal_edges(&VertexSet::new()), 0.0);
    }

    #[test]
    fn dense_set_expectation_below_observed_for_planted_clique() {
        // A 5-clique dangling off a long path: the null model scatters the
        // clique's edges, so E(m_C) must fall well below the observed 10.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend((4..40u32).map(|i| (i, i + 1)));
        let g = Graph::from_edges(false, edges);
        let clique: VertexSet = (0u32..5).collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let e = NullModelEnsemble::sample(&g, 5, 4.0, false, &mut rng);
        let expectation = e.expected_internal_edges(&clique);
        assert!(
            expectation < 8.0,
            "expected internal edges {expectation} suspiciously close to clique"
        );
    }
}
