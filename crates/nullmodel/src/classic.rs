//! Classic reference generators: Watts–Strogatz small worlds and
//! Barabási–Albert preferential attachment.
//!
//! §IV of the paper leans on both literatures — Milgram's small-world
//! observation for the node-separation analysis, and the power-law
//! claims of Magno et al. for the degree analysis. These models provide
//! controlled graphs with exactly those properties, used in tests and
//! ablation benches to validate the metric and fitting substrates.

use circlekit_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Watts–Strogatz small-world graph: a ring lattice over `n` nodes where
/// each node connects to its `k/2` nearest neighbours on each side, with
/// every edge rewired to a random target with probability `beta`.
///
/// `beta = 0` is the pure lattice (high clustering, long paths);
/// `beta = 1` approaches a random graph (low clustering, short paths);
/// small `beta` gives the small-world regime the paper's §IV-A.3
/// references.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut b = GraphBuilder::undirected();
    b.reserve_nodes(n);
    if n == 0 || k == 0 {
        return b.build();
    }
    for v in 0..n {
        for offset in 1..=(k / 2) {
            let mut u = v as NodeId;
            let mut w = ((v + offset) % n) as NodeId;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniform random target.
                w = rng.gen_range(0..n) as NodeId;
                if w == u {
                    std::mem::swap(&mut u, &mut w);
                    w = rng.gen_range(0..n) as NodeId;
                }
            }
            if u != w {
                b.add_edge(u, w);
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small seed
/// clique of `m + 1` nodes, then attaches each new node to `m` existing
/// nodes chosen proportionally to their current degree. The resulting
/// degree distribution is a power law with exponent ≈ 3.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "m must be positive");
    assert!(n > m, "n must exceed m");
    let mut b = GraphBuilder::undirected();
    b.reserve_nodes(n);
    // Degree-proportional sampling via the repeated-endpoints trick: every
    // edge endpoint appears once in `endpoints`, so a uniform draw from it
    // is a draw proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    // Seed: a clique on m + 1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target != v && !chosen.contains(&target) {
                chosen.push(target);
            }
            guard += 1;
        }
        for &t in &chosen {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::connected_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ws_lattice_at_beta_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 40); // n * k / 2
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(connected_components(&g).component_count(), 1);
    }

    #[test]
    fn ws_rewiring_preserves_edge_budget_roughly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = watts_strogatz(100, 6, 0.3, &mut rng);
        // Rewiring can collide (duplicates dropped), but the budget stays
        // close to n*k/2 = 300.
        assert!(g.edge_count() > 280, "{}", g.edge_count());
        assert!(g.edge_count() <= 300);
    }

    #[test]
    fn ws_small_world_regime() {
        use circlekit_metrics::{average_clustering, average_shortest_path_sampled};
        use circlekit_graph::Direction;
        let mut rng = SmallRng::seed_from_u64(3);
        let lattice = watts_strogatz(300, 10, 0.0, &mut rng);
        let small_world = watts_strogatz(300, 10, 0.1, &mut rng);
        // Rewiring a few edges slashes path lengths...
        let asp_lat =
            average_shortest_path_sampled(&lattice, Direction::Both, 30, &mut rng).average;
        let asp_sw =
            average_shortest_path_sampled(&small_world, Direction::Both, 30, &mut rng).average;
        assert!(asp_sw < 0.6 * asp_lat, "{asp_sw} vs {asp_lat}");
        // ...while clustering stays high.
        let cc_sw = average_clustering(&small_world);
        assert!(cc_sw > 0.3, "clustering {cc_sw}");
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn ws_rejects_odd_k() {
        let mut rng = SmallRng::seed_from_u64(4);
        watts_strogatz(10, 3, 0.1, &mut rng);
    }

    #[test]
    fn ba_node_and_edge_counts() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = barabasi_albert(200, 3, &mut rng);
        assert_eq!(g.node_count(), 200);
        // Seed clique C(4,2)=6 edges + ~3 per additional node.
        let expected = 6 + 3 * (200 - 4);
        assert!(g.edge_count() as i64 >= expected as i64 - 20);
        assert!(g.edge_count() <= expected);
        assert_eq!(connected_components(&g).component_count(), 1);
    }

    #[test]
    fn ba_has_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = barabasi_albert(2_000, 2, &mut rng);
        let max_degree = (0..2_000u32).map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / 2_000.0;
        assert!(
            max_degree as f64 > 8.0 * avg,
            "max {max_degree} vs avg {avg}"
        );
    }

    #[test]
    fn ba_degree_distribution_is_power_law_per_csn() {
        // Cross-validation with the statfit crate: preferential attachment
        // must be judged power-law, not log-normal/exponential.
        use circlekit_statfit::{analyze_tail, ModelKind};
        let mut rng = SmallRng::seed_from_u64(7);
        let g = barabasi_albert(8_000, 2, &mut rng);
        let degrees: Vec<f64> = (0..8_000u32).map(|v| g.degree(v) as f64).collect();
        let report = analyze_tail(&degrees).expect("fit succeeds");
        assert_eq!(report.best, ModelKind::PowerLaw, "ks={:?}", report.ks);
        // BA's theoretical exponent is 3; the scan should land nearby.
        assert!(
            (2.2..4.2).contains(&report.scanned.alpha),
            "alpha {}",
            report.scanned.alpha
        );
    }
}
