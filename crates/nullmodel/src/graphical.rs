//! Graphical degree sequences and their deterministic realisation.

use circlekit_graph::{Graph, GraphBuilder};
use std::error::Error;
use std::fmt;

/// Error: the degree sequence cannot be realised by a simple undirected
/// graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonGraphicalError {
    /// Sum of the sequence (odd sums are never graphical).
    pub degree_sum: u64,
}

impl fmt::Display for NonGraphicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degree sequence with sum {} is not graphical",
            self.degree_sum
        )
    }
}

impl Error for NonGraphicalError {}

/// Erdős–Gallai test: whether `degrees` can be realised by a simple
/// undirected graph.
///
/// ```
/// use circlekit_nullmodel::is_graphical;
/// assert!(is_graphical(&[2, 2, 2]));        // a triangle
/// assert!(!is_graphical(&[3, 1]));          // degree exceeds n - 1
/// assert!(!is_graphical(&[1, 1, 1]));       // odd sum
/// ```
pub fn is_graphical(degrees: &[usize]) -> bool {
    let n = degrees.len();
    let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    if !sum.is_multiple_of(2) {
        return false;
    }
    if degrees.iter().any(|&d| d >= n.max(1)) {
        return n == 0 || degrees.iter().all(|&d| d == 0);
    }
    let mut sorted: Vec<u64> = degrees.iter().map(|&d| d as u64).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Erdős–Gallai: for each k, sum of k largest <= k(k-1) + sum of min(d_i, k).
    let mut prefix = 0u64;
    for k in 1..=n {
        prefix += sorted[k - 1];
        let rhs: u64 = (k as u64) * (k as u64 - 1)
            + sorted[k..].iter().map(|&d| d.min(k as u64)).sum::<u64>();
        if prefix > rhs {
            return false;
        }
    }
    true
}

/// Realises a graphical degree sequence as a simple undirected graph via the
/// Havel–Hakimi construction (highest-degree-first linking).
///
/// The result is deterministic and tends to be highly assortative; pass it
/// through [`randomize`](crate::randomize) or
/// [`randomize_connected`](crate::randomize_connected) to sample the
/// uniform-ish null model the paper uses.
///
/// # Errors
///
/// Returns [`NonGraphicalError`] if the sequence fails the Erdős–Gallai
/// condition.
pub fn havel_hakimi(degrees: &[usize]) -> Result<Graph, NonGraphicalError> {
    if !is_graphical(degrees) {
        return Err(NonGraphicalError {
            degree_sum: degrees.iter().map(|&d| d as u64).sum(),
        });
    }
    let n = degrees.len();
    let mut remaining: Vec<(usize, u32)> = degrees
        .iter()
        .enumerate()
        .map(|(v, &d)| (d, v as u32))
        .collect();
    let mut builder = GraphBuilder::undirected();
    builder.reserve_nodes(n);
    while !remaining.is_empty() {
        remaining.sort_unstable_by(|a, b| b.cmp(a));
        let (d, v) = remaining[0];
        if d == 0 {
            break;
        }
        // Link v to the d next-highest-degree vertices.
        remaining[0].0 = 0;
        for slot in remaining.iter_mut().skip(1).take(d) {
            debug_assert!(slot.0 > 0, "Havel-Hakimi invariant violated");
            slot.0 -= 1;
            builder.add_edge(v, slot.1);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_gallai_basics() {
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2]));
        assert!(is_graphical(&[3, 3, 3, 3]));
        assert!(is_graphical(&[2, 2, 1, 1]));
        assert!(!is_graphical(&[1]));
        assert!(!is_graphical(&[1, 1, 1]));
        assert!(!is_graphical(&[3, 1]));
        // Classic non-graphical even-sum case: {4, 4, 4, 1, 1, 2}? sum=16
        assert!(!is_graphical(&[5, 5, 1, 1, 1, 1])); // EG fails at k=2
    }

    #[test]
    fn havel_hakimi_realises_sequence() {
        let degrees = [3usize, 3, 2, 2, 2, 2];
        let g = havel_hakimi(&degrees).unwrap();
        for (v, &d) in degrees.iter().enumerate() {
            assert_eq!(g.degree(v as u32), d, "node {v}");
        }
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn havel_hakimi_regular_graph() {
        let g = havel_hakimi(&[2; 5]).unwrap();
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn havel_hakimi_rejects_non_graphical() {
        let err = havel_hakimi(&[3, 1]).unwrap_err();
        assert_eq!(err.degree_sum, 4);
        assert!(err.to_string().contains("not graphical"));
    }

    #[test]
    fn havel_hakimi_empty_and_zero() {
        assert_eq!(havel_hakimi(&[]).unwrap().node_count(), 0);
        let g = havel_hakimi(&[0, 0, 0]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn havel_hakimi_star() {
        let g = havel_hakimi(&[4, 1, 1, 1, 1]).unwrap();
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.edge_count(), 4);
    }
}
