//! Property tests for the null-model generators.

use circlekit_graph::{connected_components, Graph, GraphBuilder};
use circlekit_nullmodel::{
    configuration_model, erdos_renyi, havel_hakimi, is_graphical, randomize, randomize_connected,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MAX_NODE: u32 = 24;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 1..120),
        any::<bool>(),
    )
        .prop_map(|(edges, directed)| {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
            b.build()
        })
}

fn degrees(g: &Graph) -> (Vec<usize>, Vec<usize>) {
    let n = g.node_count() as u32;
    (
        (0..n).map(|v| g.out_degree(v)).collect(),
        (0..n).map(|v| g.in_degree(v)).collect(),
    )
}

proptest! {
    #[test]
    fn randomize_preserves_degree_sequences(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let r = randomize(&g, 3.0, &mut rng);
        prop_assert_eq!(g.is_directed(), r.is_directed());
        prop_assert_eq!(degrees(&g), degrees(&r));
        prop_assert_eq!(g.edge_count(), r.edge_count());
    }

    #[test]
    fn randomize_connected_preserves_degrees_and_connectivity(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let before = connected_components(&g).component_count();
        let r = randomize_connected(&g, 2.0, &mut rng);
        prop_assert_eq!(degrees(&g), degrees(&r));
        if before == 1 {
            prop_assert_eq!(connected_components(&r).component_count(), 1);
        }
    }

    #[test]
    fn havel_hakimi_agrees_with_erdos_gallai(mut degs in prop::collection::vec(0usize..10, 0..20)) {
        // Clamp degrees below n to keep the interesting branch exercised.
        let n = degs.len();
        for d in &mut degs {
            *d = (*d).min(n.saturating_sub(1));
        }
        let graphical = is_graphical(&degs);
        let realised = havel_hakimi(&degs);
        prop_assert_eq!(graphical, realised.is_ok());
        if let Ok(g) = realised {
            for (v, &d) in degs.iter().enumerate() {
                prop_assert_eq!(g.degree(v as u32), d);
            }
        }
    }

    #[test]
    fn any_realised_graph_has_graphical_sequence(g in arbitrary_graph()) {
        // The degree sequence of an actual simple graph is always graphical.
        let und = g.to_undirected();
        let seq: Vec<usize> = (0..und.node_count() as u32).map(|v| und.degree(v)).collect();
        prop_assert!(is_graphical(&seq));
    }

    #[test]
    fn configuration_model_never_exceeds_target_degrees(degs in prop::collection::vec(0usize..6, 1..30), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = configuration_model(&degs, &mut rng);
        prop_assert_eq!(g.node_count(), degs.len());
        for (v, &d) in degs.iter().enumerate() {
            prop_assert!(g.degree(v as u32) <= d);
        }
    }

    #[test]
    fn erdos_renyi_hits_exact_edge_count(n in 2usize..30, frac in 0.0f64..1.0, directed in any::<bool>(), seed in any::<u64>()) {
        let possible = if directed { n * (n - 1) } else { n * (n - 1) / 2 };
        let m = (frac * possible as f64) as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, directed, &mut rng);
        prop_assert_eq!(g.edge_count(), m);
        prop_assert_eq!(g.node_count(), n);
    }
}
